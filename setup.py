"""Setuptools shim.

Kept so ``pip install -e .`` works on environments whose pip/setuptools
cannot build PEP 660 editable wheels (no ``wheel`` package available,
e.g. offline boxes): ``pip install -e . --no-use-pep517`` falls back to
this classic path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
