"""Budgeted join state: governor, budgets and eviction policies.

See :mod:`repro.memory.governor` for the mechanism and
``docs/memory.md`` for budget accounting, policy semantics and the
equivalence guarantee.
"""

from repro.memory.budget import (
    DEFAULT_BYTES_PER_TUPLE,
    UNLIMITED,
    GovernorSpec,
    format_budget,
    parse_memory_budget,
)
from repro.memory.governor import MemoryGovernor, SideRegistration
from repro.memory.policies import (
    LARGEST_FIRST,
    LRU,
    POLICIES,
    PUNCTUATION_AWARE,
    EvictionPolicy,
    LargestPartitionFirstPolicy,
    LRUPolicy,
    PunctuationAwarePolicy,
    make_policy,
)

__all__ = [
    "DEFAULT_BYTES_PER_TUPLE",
    "UNLIMITED",
    "GovernorSpec",
    "format_budget",
    "parse_memory_budget",
    "MemoryGovernor",
    "SideRegistration",
    "LRU",
    "LARGEST_FIRST",
    "PUNCTUATION_AWARE",
    "POLICIES",
    "EvictionPolicy",
    "LRUPolicy",
    "LargestPartitionFirstPolicy",
    "PunctuationAwarePolicy",
    "make_policy",
]
