"""The memory governor: budgeted join state with spill and fault-back.

One :class:`MemoryGovernor` polices one operator's memory-resident join
state against a tuple budget.  The join registers each state side's
hash table; the governor then interposes on the two hot-path moments:

* **before a probe** (:meth:`fault_in` / :meth:`fault_in_partition`) —
  if the target bucket was demoted, its cold entries are promoted back
  into the warm memory dict (in original order) and disk-read time is
  charged, so the probe always sees exactly the state an ungoverned run
  would.  The touched bucket is *pinned* for the rest of the in-flight
  item: eviction never demotes a bucket currently being probed.
* **after an insert** (:meth:`after_insert`) — while the warm footprint
  exceeds the budget, the configured eviction policy picks an unpinned
  victim bucket, the bucket is demoted to its cold list and disk-write
  time is charged through the shared :class:`~repro.storage.disk.
  SimulatedDisk` (so governor I/O participates in the resilience
  layer's fault injection and retry accounting).

Demotion never touches ``dts``: cold entries stay logically
memory-resident for the joins' duplicate-prevention intervals, which is
what makes any finite budget reproduce the unlimited run's result
multiset exactly — only virtual timing and counters differ.  With an
unlimited budget every method returns ``0.0`` without touching any
state, making the governed run byte-identical to an ungoverned one.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.memory.budget import DEFAULT_BYTES_PER_TUPLE, format_budget
from repro.memory.policies import EvictionPolicy, make_policy
from repro.obs.trace import get_tracer
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import PartitionedHashTable
from repro.storage.partition import HybridPartition

#: A pinned/recency token: (side key, bucket index).
Token = Tuple[Any, int]


class SideRegistration:
    """One governed state side: its table plus policy inputs."""

    __slots__ = ("key", "order", "table", "covered_by")

    def __init__(
        self,
        key: Any,
        order: int,
        table: PartitionedHashTable,
        covered_by: Optional[Callable[[Any], bool]],
    ) -> None:
        self.key = key
        self.order = order
        self.table = table
        # Probe used by the punctuation-aware policy: does a pending
        # punctuation (of the purging stream) cover this join value?
        self.covered_by = covered_by


class MemoryGovernor:
    """Budgeted residency control over one operator's join state."""

    def __init__(
        self,
        budget_tuples: float,
        policy: str = "lru",
        disk: Optional[SimulatedDisk] = None,
        engine: Any = None,
        name: str = "governor",
        bytes_per_tuple: int = DEFAULT_BYTES_PER_TUPLE,
    ) -> None:
        self.budget_tuples = float(budget_tuples)
        self.policy: EvictionPolicy = make_policy(policy)
        self.policy_name = policy
        self.disk = disk
        self.engine = engine
        self.name = name
        self.bytes_per_tuple = bytes_per_tuple
        self.unlimited = math.isinf(self.budget_tuples)
        # A live FrequencySketch, attached by the join when its skew
        # layer is on; read by the skew-aware eviction policy.
        self.sketch: Optional[Any] = None
        self._sides: List[SideRegistration] = []
        self._by_key: Dict[Any, SideRegistration] = {}
        # Logical clock driving LRU recency; ticked on every touch.
        self._clock = 0
        self.recency: Dict[Token, int] = {}
        # Buckets touched by the in-flight item; never eviction victims.
        self._pins: Set[Token] = set()
        # --- counters -----------------------------------------------------
        self.spills = 0
        self.tuples_spilled = 0
        self.faults = 0
        self.tuples_faulted = 0
        self.spill_time_ms = 0.0
        self.fault_time_ms = 0.0
        # Enforcement passes that found every candidate pinned (the
        # budget is smaller than the working set of one probe).
        self.evictions_denied = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_side(
        self,
        key: Any,
        table: PartitionedHashTable,
        covered_by: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        """Put one state side under governance."""
        if key in self._by_key:
            raise ValueError(f"side {key!r} is already registered")
        registration = SideRegistration(key, len(self._sides), table, covered_by)
        self._sides.append(registration)
        self._by_key[key] = registration

    def usage(self) -> int:
        """Warm (memory-dict) tuples across every governed side."""
        return sum(reg.table.memory_count for reg in self._sides)

    def cold_size(self) -> int:
        """Governor-demoted tuples across every governed side."""
        return sum(reg.table.cold_count for reg in self._sides)

    # ------------------------------------------------------------------
    # Hot-path hooks
    # ------------------------------------------------------------------

    def fault_in(
        self, key: Any, join_value: Any, hash_value: Optional[int] = None
    ) -> float:
        """Make the bucket for *join_value* probe-ready; return I/O cost.

        Call immediately before probing side *key*'s memory portion.
        """
        if self.unlimited:
            return 0.0
        registration = self._by_key[key]
        partition = registration.table.partition_for(join_value, hash_value)
        return self._touch(registration, partition)

    def fault_in_partition(self, key: Any, partition: HybridPartition) -> float:
        """Fault-in for callers that already hold the bucket object."""
        if self.unlimited:
            return 0.0
        return self._touch(self._by_key[key], partition)

    def fault_in_all(self) -> float:
        """Promote every cold bucket (end-of-stream cleanup joins)."""
        if self.unlimited:
            return 0.0
        cost = 0.0
        for registration in self._sides:
            for partition in registration.table.partitions_with_cold():
                cost += self._touch(registration, partition)
        return cost

    def _touch(
        self, registration: SideRegistration, partition: HybridPartition
    ) -> float:
        token = (registration.key, partition.index)
        self._clock += 1
        self.recency[token] = self._clock
        self._pins.add(token)
        if not partition.cold:
            return 0.0
        moved = registration.table.promote_partition(partition)
        self.faults += 1
        self.tuples_faulted += moved
        cost = self.disk.read(moved) if self.disk is not None else 0.0
        self.fault_time_ms += cost
        tracer = get_tracer(self.engine) if self.engine is not None else None
        if tracer is not None:
            tracer.record(
                self.engine.now, self.name, "governor_fault",
                side=registration.key, partition=partition.index,
                moved=moved, cost=cost,
            )
        return cost

    def after_insert(
        self, key: Any, join_value: Any, hash_value: Optional[int] = None
    ) -> float:
        """Account an insert into side *key* and enforce the budget.

        Call after the insert; the in-flight item's pins are released
        once enforcement finishes.
        """
        if self.unlimited:
            return 0.0
        registration = self._by_key[key]
        partition = registration.table.partition_for(join_value, hash_value)
        token = (registration.key, partition.index)
        self._clock += 1
        self.recency[token] = self._clock
        self._pins.add(token)
        cost = self._enforce()
        self._pins.clear()
        return cost

    def _enforce(self) -> float:
        """Demote victims until the warm footprint fits the budget."""
        cost = 0.0
        while self.usage() > self.budget_tuples:
            candidates = [
                (registration, partition)
                for registration in self._sides
                for partition in registration.table.partitions
                if partition.memory_count > 0
                and (registration.key, partition.index) not in self._pins
            ]
            if not candidates:
                # Everything warm is pinned by the in-flight probe; the
                # budget is temporarily exceeded rather than violated.
                self.evictions_denied += 1
                break
            registration, victim = self.policy.select(candidates, self)
            tracer = get_tracer(self.engine) if self.engine is not None else None
            now = self.engine.now if self.engine is not None else 0.0
            if tracer is not None:
                tracer.begin(
                    now, self.name, "governor_spill",
                    side=registration.key, partition=victim.index,
                    policy=self.policy_name,
                )
            moved = registration.table.demote_partition(victim)
            write_cost = self.disk.write(moved) if self.disk is not None else 0.0
            self.spills += 1
            self.tuples_spilled += moved
            self.spill_time_ms += write_cost
            cost += write_cost
            if tracer is not None:
                tracer.end(now, moved=moved, cost=write_cost)
        return cost

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, Any]:
        """The uniform registry form (see :mod:`repro.obs.counters`)."""
        out: Dict[str, Any] = {
            "spills": self.spills,
            "tuples_spilled": self.tuples_spilled,
            "faults": self.faults,
            "tuples_faulted": self.tuples_faulted,
            "spill_time_ms": self.spill_time_ms,
            "fault_time_ms": self.fault_time_ms,
            "evictions_denied": self.evictions_denied,
            "cold_tuples": self.cold_size(),
        }
        # Unlimited budgets stay out of the registry: inf is not a
        # portable JSON number and the zero counters say it all.
        if not self.unlimited:
            out["budget_tuples"] = self.budget_tuples
            out["budget_bytes"] = self.budget_tuples * self.bytes_per_tuple
        return out

    def stats(self) -> Dict[str, Any]:
        out = dict(self.counters())
        out["policy"] = self.policy_name
        out["budget"] = format_budget(self.budget_tuples)
        out["warm_tuples"] = self.usage()
        return out

    def __repr__(self) -> str:
        return (
            f"MemoryGovernor(budget={format_budget(self.budget_tuples)}, "
            f"policy={self.policy_name!r}, warm={self.usage()}, "
            f"cold={self.cold_size()})"
        )
