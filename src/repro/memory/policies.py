"""Pluggable eviction policies for the memory governor.

A policy picks the next partition to demote when the governed join is
over budget.  Candidates are ``(registration, partition)`` pairs — one
entry per hash bucket with a non-empty warm memory portion that is not
pinned by the in-flight probe — and selection must be deterministic
(ties broken by registration order, then bucket index) so seeded runs
stay reproducible.

Three policies ship:

* ``lru`` — demote the bucket whose last touch (probe fault-in or
  insert) is oldest on the governor's logical clock;
* ``largest-partition-first`` — demote the bucket with the most warm
  tuples, XJoin's classic relocation heuristic (biggest write now,
  longest reprieve before the next eviction);
* ``punctuation-aware`` — prefer buckets holding tuples that a pending
  punctuation of the opposite stream already covers: a purge will soon
  discard them, so they are the state least likely to ever fault back.
  Falls back to largest-partition-first when nothing is covered (or
  the operator exploits no punctuations at all).
* ``skew-aware`` — demote the bucket whose warm tuples the frequency
  sketch (:mod:`repro.skew.sketch`) says are coldest: cold keys probe
  rarely, so their entries are the least likely to fault back in.
  Requires a skew layer on the same operator (the join hands the
  governor its live sketch); behaves like largest-partition-first when
  no sketch is attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.governor import MemoryGovernor, SideRegistration
    from repro.storage.partition import HybridPartition

Candidate = Tuple["SideRegistration", "HybridPartition"]

LRU = "lru"
LARGEST_FIRST = "largest-partition-first"
PUNCTUATION_AWARE = "punctuation-aware"
SKEW_AWARE = "skew-aware"


class EvictionPolicy:
    """Base class: deterministic victim selection over candidates."""

    name = "abstract"

    def select(
        self, candidates: List[Candidate], governor: "MemoryGovernor"
    ) -> Candidate:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Least recently touched bucket first."""

    name = LRU

    def select(
        self, candidates: List[Candidate], governor: "MemoryGovernor"
    ) -> Candidate:
        recency = governor.recency
        return min(
            candidates,
            key=lambda c: (recency.get((c[0].key, c[1].index), -1),
                           c[0].order, c[1].index),
        )


class LargestPartitionFirstPolicy(EvictionPolicy):
    """Largest warm memory portion first (XJoin's relocation victim)."""

    name = LARGEST_FIRST

    def select(
        self, candidates: List[Candidate], governor: "MemoryGovernor"
    ) -> Candidate:
        # max() keeps the first of equals, so order the tie-break into
        # the key: prefer lower registration order, then lower index.
        return max(
            candidates,
            key=lambda c: (c[1].memory_count, -c[0].order, -c[1].index),
        )


class PunctuationAwarePolicy(EvictionPolicy):
    """Prefer buckets a pending punctuation will soon purge.

    Scores each candidate by how many of its warm tuples the purging
    punctuation set (the opposite stream's, via the registration's
    ``covered_by`` probe) already covers.  Those tuples are doomed: the
    next purge run reclaims them from the cold list without any fault
    back, so spilling them costs one write and usually zero reads.
    """

    name = PUNCTUATION_AWARE

    def select(
        self, candidates: List[Candidate], governor: "MemoryGovernor"
    ) -> Candidate:
        best = None
        best_key = None
        for registration, partition in candidates:
            covers = registration.covered_by
            if covers is None:
                covered = 0
            else:
                covered = sum(
                    1 for entry in partition.iter_memory()
                    if covers(entry.join_value)
                )
            key = (covered, partition.memory_count,
                   -registration.order, -partition.index)
            if best_key is None or key > best_key:
                best_key = key
                best = (registration, partition)
        assert best is not None  # candidates is never empty here
        return best


class SkewAwarePolicy(EvictionPolicy):
    """Demote the bucket whose warm tuples the sketch says are coldest.

    The join attaches its skew layer's live
    :class:`~repro.skew.sketch.FrequencySketch` to the governor
    (``governor.sketch``); each candidate bucket is scored by the summed
    frequency estimate of its warm tuples' join values — an estimate of
    how soon its state will be probed again.  The coldest bucket is
    demoted.  Without a sketch (governor used stand-alone) this reduces
    to largest-partition-first, keeping the policy safe to configure
    unconditionally.
    """

    name = SKEW_AWARE

    def __init__(self) -> None:
        self._fallback = LargestPartitionFirstPolicy()

    def select(
        self, candidates: List[Candidate], governor: "MemoryGovernor"
    ) -> Candidate:
        sketch = getattr(governor, "sketch", None)
        if sketch is None:
            return self._fallback.select(candidates, governor)
        best = None
        best_key = None
        for registration, partition in candidates:
            heat = sum(
                sketch.estimate(entry.join_value)
                for entry in partition.iter_memory()
            )
            # Coldest first; break heat ties toward the biggest write
            # (more budget reclaimed per spill), then deterministically.
            key = (-heat, partition.memory_count,
                   -registration.order, -partition.index)
            if best_key is None or key > best_key:
                best_key = key
                best = (registration, partition)
        assert best is not None  # candidates is never empty here
        return best


POLICIES: Dict[str, Type[EvictionPolicy]] = {
    LRU: LRUPolicy,
    LARGEST_FIRST: LargestPartitionFirstPolicy,
    PUNCTUATION_AWARE: PunctuationAwarePolicy,
    SKEW_AWARE: SkewAwarePolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by registry name."""
    from repro.errors import ConfigError

    cls = POLICIES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown eviction policy {name!r}; choose from {sorted(POLICIES)}"
        )
    return cls()
