"""Memory budgets: parsing and the picklable governor specification.

A budget is expressed in *tuples* internally (the unit every state
gauge in the repository already uses); the CLI accepts either a plain
tuple count or a byte size with a ``kb``/``mb``/``gb`` suffix, which is
converted through the nominal serialised tuple size the simulated disk
uses for its byte-volume counters.

The :class:`GovernorSpec` is the value that travels: it is a frozen,
picklable dataclass, so it crosses process boundaries (the sharded
multiprocess backend, the parallel sweep runner) and is attached to
operators at build time, where :meth:`GovernorSpec.build` turns it into
a live :class:`~repro.memory.governor.MemoryGovernor`.
"""

from __future__ import annotations

import dataclasses
import math
import re
from typing import List, Optional, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.memory.governor import MemoryGovernor
    from repro.sim.costs import CostModel
    from repro.storage.disk import SimulatedDisk

#: Nominal serialised tuple size; matches ``SimulatedDisk``'s default.
DEFAULT_BYTES_PER_TUPLE = 64

UNLIMITED = math.inf

_BYTE_SUFFIXES = {"b": 1, "kb": 1 << 10, "mb": 1 << 20, "gb": 1 << 30}

_BUDGET_RE = re.compile(r"^(?P<number>\d+(?:\.\d+)?)\s*(?P<suffix>[a-z]*)$")


def parse_memory_budget(
    text: str, bytes_per_tuple: int = DEFAULT_BYTES_PER_TUPLE
) -> float:
    """Parse a budget string into a tuple count (``inf`` = unlimited).

    Accepts ``inf``/``none``/``unlimited``, a plain tuple count
    (``5000``), or a byte size with suffix (``64kb``, ``2mb``) converted
    at *bytes_per_tuple* per tuple.
    """
    cleaned = text.strip().lower().replace(",", "").replace("_", "")
    if cleaned in ("inf", "infinity", "none", "unlimited"):
        return UNLIMITED
    match = _BUDGET_RE.match(cleaned)
    if match is None:
        raise ConfigError(
            f"cannot parse memory budget {text!r}; expected 'inf', a tuple "
            f"count like '5000', or a byte size like '64kb'"
        )
    number = float(match.group("number"))
    suffix = match.group("suffix")
    if suffix in ("", "t", "tuples"):
        budget = number
    elif suffix in _BYTE_SUFFIXES:
        budget = (number * _BYTE_SUFFIXES[suffix]) / bytes_per_tuple
    else:
        raise ConfigError(
            f"unknown memory budget suffix {suffix!r} in {text!r}; "
            f"use a plain tuple count or one of {sorted(_BYTE_SUFFIXES)}"
        )
    budget = float(int(budget))
    if budget < 1:
        raise ConfigError(
            f"memory budget {text!r} is below one tuple "
            f"(at {bytes_per_tuple} bytes/tuple)"
        )
    return budget


def format_budget(budget_tuples: float) -> str:
    """Human-readable budget (``inf`` or the tuple count)."""
    if math.isinf(budget_tuples):
        return "inf"
    return f"{int(budget_tuples)}"


@dataclasses.dataclass(frozen=True)
class GovernorSpec:
    """The serialisable description of one memory governor.

    ``budget_tuples`` is this governor's own budget (for a sharded join
    each shard gets a slice via :meth:`split`, so the per-shard budgets
    sum to the global one).
    """

    budget_tuples: float
    policy: str = "lru"
    bytes_per_tuple: int = DEFAULT_BYTES_PER_TUPLE

    def __post_init__(self) -> None:
        from repro.memory.policies import POLICIES

        if not math.isinf(self.budget_tuples) and self.budget_tuples < 1:
            raise ConfigError(
                f"memory budget must be at least one tuple, "
                f"got {self.budget_tuples}"
            )
        if self.policy not in POLICIES:
            raise ConfigError(
                f"unknown eviction policy {self.policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )
        if self.bytes_per_tuple <= 0:
            raise ConfigError(
                f"bytes_per_tuple must be positive, got {self.bytes_per_tuple}"
            )

    @property
    def unlimited(self) -> bool:
        return math.isinf(self.budget_tuples)

    @property
    def budget_bytes(self) -> float:
        return self.budget_tuples * self.bytes_per_tuple

    def split(self, n_shards: int) -> List["GovernorSpec"]:
        """Per-shard specs whose budgets sum to this (global) budget.

        The floor is distributed evenly and the remainder one tuple at
        a time to the lowest shard indices, so ``sum(split(k)) ==
        budget`` exactly; an unlimited budget splits into unlimited
        shares.
        """
        if n_shards < 1:
            raise ConfigError(f"need at least one shard, got {n_shards}")
        if self.unlimited:
            return [self] * n_shards
        base = int(self.budget_tuples) // n_shards
        remainder = int(self.budget_tuples) % n_shards
        shares = []
        for shard in range(n_shards):
            share = base + (1 if shard < remainder else 0)
            # A shard cannot run on a zero budget; tiny global budgets
            # degrade to one tuple per shard (documented in docs/memory.md).
            shares.append(
                dataclasses.replace(self, budget_tuples=float(max(share, 1)))
            )
        return shares

    def build(
        self,
        cost_model: "CostModel",
        disk: Optional["SimulatedDisk"] = None,
        engine: object = None,
        name: str = "governor",
    ) -> "MemoryGovernor":
        """Instantiate the live governor this spec describes."""
        from repro.memory.governor import MemoryGovernor
        from repro.storage.disk import SimulatedDisk

        if disk is None:
            disk = SimulatedDisk(cost_model, bytes_per_tuple=self.bytes_per_tuple)
        return MemoryGovernor(
            budget_tuples=self.budget_tuples,
            policy=self.policy,
            disk=disk,
            engine=engine,
            name=name,
            bytes_per_tuple=self.bytes_per_tuple,
        )

    def __repr__(self) -> str:
        return (
            f"GovernorSpec(budget={format_budget(self.budget_tuples)}, "
            f"policy={self.policy!r})"
        )
