"""Flame-graph exports of the profiler's per-site self times.

Two interchange formats, both fed from the profiler's
``(source, layer) -> exclusive nanoseconds`` map:

* **collapsed stacks** — one ``frame;frame value`` line per site, the
  input format of Brendan Gregg's ``flamegraph.pl`` and of speedscope's
  importer.  The stack is ``preset-root;<source>;<layer>`` so the
  flame graph groups by operator first, layer second;
* **speedscope JSON** — a ``sampled`` profile (one weighted sample per
  site) conforming to the speedscope file-format schema; open it
  directly at https://speedscope.app.

Self times are exclusive by construction, so the exported weights sum
to the profiled total span — the flame graph's root width is the whole
measurement.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.obs.profile import Profiler

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

ROOT_FRAME = "repro"


def _sites(profiler: Profiler) -> List[Tuple[str, str, int]]:
    """(source, layer, self_ns) rows, hottest first, zero rows dropped."""
    rows = [
        (source, layer, ns)
        for (source, layer), ns in profiler.self_ns.items()
        if ns > 0
    ]
    rows.sort(key=lambda row: (-row[2], row[0], row[1]))
    return rows


def collapsed_stacks(profiler: Profiler) -> str:
    """Collapsed-stack lines (``root;source;layer nanoseconds``)."""
    lines = [
        f"{ROOT_FRAME};{source};{layer} {ns}"
        for source, layer, ns in _sites(profiler)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def save_collapsed(profiler: Profiler, path: Path) -> None:
    Path(path).write_text(collapsed_stacks(profiler))


def to_speedscope(profiler: Profiler, name: str = "repro profile") -> Dict[str, Any]:
    """A speedscope ``sampled`` profile of the per-site self times."""
    frames: List[Dict[str, Any]] = [{"name": ROOT_FRAME}]
    frame_index: Dict[str, int] = {ROOT_FRAME: 0}

    def frame_of(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = len(frames)
            frames.append({"name": label})
            frame_index[label] = index
        return index

    samples: List[List[int]] = []
    weights: List[int] = []
    for source, layer, ns in _sites(profiler):
        samples.append([0, frame_of(source), frame_of(f"[{layer}]")])
        weights.append(ns)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro profile",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": name,
                "unit": "nanoseconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


def save_speedscope(
    profiler: Profiler, path: Path, name: str = "repro profile"
) -> None:
    Path(path).write_text(json.dumps(to_speedscope(profiler, name=name)) + "\n")
