"""Pinned profiling presets (workload + join under measurement).

Each preset mirrors one of the bench suite's cases so the per-layer
numbers line up with the wall-clock trajectory in ``BENCH_<rev>.json``:
a seeded figure-style workload and the join the figure measures.

A preset also declares which feature layers it can toggle.  The obs,
governor and shard layers attach from the outside (tracer on the
engine, ``governed(inf)``, ``sharding(1)``) and work for every preset;
the resilience layer is a *config* choice (fault policy) that only the
PJoin factory exposes, so XJoin/SHJ presets leave it out of their grid
rather than pretending to toggle it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.config import PJoinConfig
from repro.errors import ConfigError
from repro.experiments.harness import (
    JoinFactory,
    pjoin_factory,
    shj_factory,
    xjoin_factory,
)
from repro.workloads.generator import GeneratedWorkload, generate_workload

#: The toggleable feature layers, in grid order.
FEATURES: Tuple[str, ...] = ("obs", "resilience", "governor", "shard")


def _scaled(n: int, scale: float) -> int:
    return max(1, round(n * scale))


@dataclass(frozen=True)
class ProfilePreset:
    """One pinned profiling workload and the join it measures."""

    name: str
    description: str
    algo: str  # "pjoin" | "xjoin" | "shj"
    tuples: int = 10_000
    spacing_a: float = 40.0
    spacing_b: float = 40.0
    seed: int = 5
    purge_threshold: int = 1
    features: Tuple[str, ...] = FEATURES

    def workload(self, scale: float = 1.0) -> GeneratedWorkload:
        """The preset's seeded workload (generation is untimed)."""
        return generate_workload(
            n_tuples_per_stream=_scaled(self.tuples, scale),
            punct_spacing_a=self.spacing_a,
            punct_spacing_b=self.spacing_b,
            seed=self.seed,
        )

    def factory(self, resilience: bool = False) -> JoinFactory:
        """The join factory, with the resilience layer on or off."""
        if self.algo == "pjoin":
            return pjoin_factory(PJoinConfig(
                purge_threshold=self.purge_threshold,
                fault_policy="quarantine" if resilience else "strict",
            ))
        if resilience:
            raise ConfigError(
                f"preset {self.name!r} ({self.algo}) cannot toggle the "
                "resilience layer; its factory has no fault-policy knob"
            )
        if self.algo == "xjoin":
            return xjoin_factory()
        if self.algo == "shj":
            return shj_factory()
        raise ConfigError(f"unknown preset algorithm {self.algo!r}")


PROFILE_PRESETS: Dict[str, ProfilePreset] = {
    preset.name: preset
    for preset in (
        ProfilePreset(
            "fig5_pjoin",
            "Figure 5 workload (40 t/p, seed 5), PJoin with eager purge",
            algo="pjoin",
        ),
        ProfilePreset(
            "fig5_xjoin",
            "Figure 5 workload (40 t/p, seed 5), XJoin comparator",
            algo="xjoin",
            features=("obs", "governor", "shard"),
        ),
        ProfilePreset(
            "fig5_shj",
            "Figure 5 workload (40 t/p, seed 5), symmetric hash join",
            algo="shj",
            features=("obs", "governor", "shard"),
        ),
        ProfilePreset(
            "fig8_pjoin_lazy",
            "Figure 8 workload (10 t/p, seed 9), PJoin with lazy purge (10)",
            algo="pjoin",
            spacing_a=10.0,
            spacing_b=10.0,
            seed=9,
            purge_threshold=10,
        ),
    )
}

#: Short names accepted on the command line.
ALIASES: Dict[str, str] = {
    "fig5": "fig5_pjoin",
    "fig8": "fig8_pjoin_lazy",
}


def resolve_preset(name: str) -> ProfilePreset:
    """Look up a preset by name or alias; raises ConfigError if unknown."""
    resolved = ALIASES.get(name, name)
    preset = PROFILE_PRESETS.get(resolved)
    if preset is None:
        known = sorted(PROFILE_PRESETS) + sorted(ALIASES)
        raise ConfigError(f"unknown profile preset {name!r}; choose from {known}")
    return preset
