"""Run profiling presets and attribute hot-path cost per layer.

Two measurements live here:

* :func:`run_profile` — one preset, one feature set, with the scoped
  timers attached: yields the per-layer exclusive wall times and the
  virtual-time latency histograms (``repro profile``'s default view);
* :func:`layer_cost_matrix` — the on/off feature grid, *unprofiled*:
  each variant (baseline, each feature alone, all together) is timed
  end-to-end, so the matrix reports what a layer costs with no
  measurement shadows in the path.  ``repro bench --layer-matrix``
  embeds this into ``BENCH_<rev>.json`` per commit.

The ``repro profile`` CLI (``cmd_profile``) also hosts the CI
``--check`` gate: profiling must not change the simulation (profiled
and unprofiled runs produce identical manifests), an unprofiled run
must carry *no* instrumentation shadows (the compiled-out no-op
property, checked structurally), and the profiled wall overhead must
stay under a configurable ratio.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import math
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError
from repro.experiments.harness import (
    ExperimentRun,
    governed,
    profiling,
    run_join_experiment,
    sharding,
    tracing,
)
from repro.memory.budget import GovernorSpec
from repro.metrics.report import render_table
from repro.obs.logging import get_logger
from repro.obs.profile import LAYERS, Profiler
from repro.obs.trace import Tracer
from repro.operators import fastpath
from repro.profiling.presets import (
    ALIASES,
    FEATURES,
    PROFILE_PRESETS,
    ProfilePreset,
    resolve_preset,
)

log = get_logger(__name__)

DEFAULT_SCALE = 1.0
DEFAULT_MAX_OVERHEAD = 10.0


@dataclass
class ProfileRun:
    """One measured preset run (profiled or not)."""

    preset: ProfilePreset
    features: Sequence[str]
    run: ExperimentRun
    profiler: Optional[Profiler]
    wall_s: float

    def outcome(self) -> Dict[str, Any]:
        """The deterministic outcome (must not depend on profiling)."""
        engine = self.run.manifest["engine"]
        return {
            "events": engine["events_executed"],
            "results": self.run.results,
            "virtual_ms": engine["virtual_now_ms"],
        }

    @property
    def events_per_s(self) -> float:
        events = int(self.run.manifest["engine"]["events_executed"])
        return events / self.wall_s if self.wall_s else 0.0


def _feature_contexts(
    features: Iterable[str],
) -> List[contextlib.AbstractContextManager[Any]]:
    """The harness contexts that switch each feature layer on."""
    contexts: List[contextlib.AbstractContextManager[Any]] = []
    for feature in features:
        if feature == "obs":
            contexts.append(tracing(Tracer()))
        elif feature == "governor":
            # An infinite budget attaches the governor's hot-path hooks
            # (charge, fault-in probes) without ever spilling, which is
            # exactly the "what does the layer cost when idle" question.
            contexts.append(governed(GovernorSpec(math.inf)))
        elif feature == "shard":
            # K=1 routes every tuple through router and merger while
            # replaying the unsharded execution, isolating routing cost.
            contexts.append(sharding(1))
        elif feature != "resilience":  # resilience is a factory knob
            raise ConfigError(
                f"unknown feature {feature!r}; choose from {FEATURES}"
            )
    return contexts


def normalize_features(
    spec: Optional[str], preset: ProfilePreset
) -> List[str]:
    """Parse a ``--features`` value against what *preset* supports.

    ``all`` means every feature the preset can toggle; ``none`` (or an
    empty value) means the bare core path; otherwise a comma-separated
    subset in grid order.
    """
    if spec is None or spec == "all":
        return list(preset.features)
    if spec == "none" or spec.strip() == "":
        return []
    chosen = [part.strip() for part in spec.split(",") if part.strip()]
    unknown = [f for f in chosen if f not in FEATURES]
    if unknown:
        raise ConfigError(f"unknown features {unknown}; choose from {FEATURES}")
    unsupported = [f for f in chosen if f not in preset.features]
    if unsupported:
        raise ConfigError(
            f"preset {preset.name!r} cannot toggle {unsupported}; "
            f"it supports {list(preset.features)}"
        )
    return [f for f in FEATURES if f in chosen]


def run_profile(
    preset: ProfilePreset,
    scale: float = DEFAULT_SCALE,
    features: Sequence[str] = (),
    profile: bool = True,
    workload: Any = None,
    batch_size: Optional[int] = None,
) -> ProfileRun:
    """Execute *preset* once; workload generation stays untimed.

    *batch_size* admits source tuples in micro-batches of that many per
    scheduler event; the simulation outcome is byte-identical to the
    default item-at-a-time admission, only wall time moves.
    """
    if workload is None:
        workload = preset.workload(scale)
    factory = preset.factory(resilience="resilience" in features)
    profiler = Profiler() if profile else None
    with contextlib.ExitStack() as stack:
        for context in _feature_contexts(features):
            stack.enter_context(context)
        if profiler is not None:
            stack.enter_context(profiling(profiler))
        begin = time.perf_counter()
        run = run_join_experiment(
            factory, workload, label=f"profile:{preset.name}",
            batch_size=batch_size,
        )
        wall = time.perf_counter() - begin
    return ProfileRun(preset, list(features), run, profiler, wall)


# ---------------------------------------------------------------------------
# The on/off layer-cost matrix (unprofiled wall times)
# ---------------------------------------------------------------------------


def layer_cost_matrix(
    preset_name: str = "fig5_pjoin",
    scale: float = DEFAULT_SCALE,
    repeat: int = 1,
    batch_sizes: Sequence[int] = (1,),
) -> Dict[str, Any]:
    """Wall-clock cost of each feature layer, measured by toggling it.

    Variants: the bare baseline, each supported feature alone, and all
    of them together.  Every variant keeps the fastest of *repeat*
    runs; ``overhead_pct`` is relative to the baseline's wall time.
    No profiler shadows are installed — the matrix measures the
    features themselves, not the measurement.

    *batch_sizes* adds a source micro-batching axis: the whole variant
    grid is re-measured at each batch size (every run stays
    byte-identical in outcome; only wall time moves).  The first batch
    size fills the top-level ``variants`` (schema-compatible with the
    single-axis matrix); when more than one size is given, the full
    per-size grids land in ``batch_variants``.
    """
    preset = resolve_preset(preset_name)
    workload = preset.workload(scale)
    variant_features: Dict[str, List[str]] = {"none": []}
    for feature in preset.features:
        variant_features[feature] = [feature]
    if len(preset.features) > 1:
        variant_features["all"] = list(preset.features)

    def measure_grid(batch: int) -> Dict[str, Dict[str, Any]]:
        variants: Dict[str, Dict[str, Any]] = {}
        baseline_wall: Optional[float] = None
        for name, features in variant_features.items():
            best: Optional[ProfileRun] = None
            for _ in range(max(1, repeat)):
                measured = run_profile(
                    preset, scale, features, profile=False,
                    workload=workload, batch_size=batch,
                )
                if best is None or measured.wall_s < best.wall_s:
                    best = measured
            assert best is not None
            entry: Dict[str, Any] = {
                "features": features,
                "wall_s": round(best.wall_s, 4),
                "events_per_s": round(best.events_per_s, 1),
                **best.outcome(),
            }
            if name == "none":
                baseline_wall = best.wall_s
                entry["overhead_pct"] = 0.0
            elif baseline_wall:
                entry["overhead_pct"] = round(
                    (best.wall_s - baseline_wall) / baseline_wall * 100.0, 2
                )
            else:
                entry["overhead_pct"] = None
            variants[name] = entry
        return variants

    sizes = [int(b) for b in batch_sizes] or [1]
    if any(b < 1 for b in sizes):
        raise ConfigError(f"batch sizes must be >= 1: {sizes}")
    grids = {batch: measure_grid(batch) for batch in sizes}
    matrix: Dict[str, Any] = {
        "preset": preset.name,
        "scale": scale,
        "repeat": repeat,
        "variants": grids[sizes[0]],
    }
    if sizes != [1]:
        matrix["batch_sizes"] = sizes
        matrix["batch_variants"] = {str(b): grids[b] for b in sizes}
    return matrix


def render_layer_matrix(
    matrix: Dict[str, Any], diff: Optional[Dict[str, Any]] = None
) -> str:
    """The matrix as a table; *diff* adds a vs-baseline column."""
    headers = ["variant", "wall s", "events/s", "overhead %"]
    if diff is not None:
        headers.append("vs baseline")
    rows: List[List[Any]] = []
    for name, entry in matrix["variants"].items():
        overhead = entry.get("overhead_pct")
        row: List[Any] = [
            name,
            f"{entry['wall_s']:.3f}",
            f"{entry['events_per_s']:.0f}",
            f"{overhead:+.1f}" if overhead is not None else "-",
        ]
        if diff is not None:
            delta = diff.get(name, {}).get("delta_pct")
            row.append(f"{delta:+.1f}pp" if delta is not None else "-")
        rows.append(row)
    title = f"layer-cost matrix ({matrix['preset']} @ scale {matrix['scale']:g})"
    out = title + "\n" + render_table(headers, rows)
    batch_variants = matrix.get("batch_variants")
    if batch_variants:
        batch_rows: List[List[Any]] = []
        for batch, variants in batch_variants.items():
            for name, entry in variants.items():
                overhead = entry.get("overhead_pct")
                batch_rows.append([
                    name,
                    batch,
                    f"{entry['wall_s']:.3f}",
                    f"{entry['events_per_s']:.0f}",
                    f"{overhead:+.1f}" if overhead is not None else "-",
                ])
        out += ("\n\nmicro-batch axis (overhead % vs the same batch "
                "size's bare core)\n")
        out += render_table(
            ["variant", "batch", "wall s", "events/s", "overhead %"],
            batch_rows,
        )
    return out


# ---------------------------------------------------------------------------
# Rendering the profiled view
# ---------------------------------------------------------------------------


def render_layer_table(snapshot: Dict[str, Any]) -> str:
    """The per-layer overhead table of one profiler snapshot."""
    rows = []
    for layer in LAYERS:
        entry = snapshot["layers"][layer]
        rows.append([
            layer,
            f"{entry['self_ms']:.2f}",
            f"{entry['share'] * 100.0:.1f}%",
            entry["calls"],
        ])
    rows.append(["total", f"{snapshot['total_ms']:.2f}", "100.0%", ""])
    return render_table(["layer", "self ms", "share", "calls"], rows)


def render_histograms(snapshot: Dict[str, Any]) -> str:
    """The latency histogram summaries of one profiler snapshot."""
    rows = []
    for name, summary in snapshot.get("histograms", {}).items():
        rows.append([
            name,
            summary["count"],
            summary["p50_ms"],
            summary["p95_ms"],
            summary["p99_ms"],
            summary["max_ms"],
        ])
    if not rows:
        return "no latency histograms recorded"
    return render_table(
        ["histogram (virtual ms)", "count", "p50", "p95", "p99", "max"], rows
    )


# ---------------------------------------------------------------------------
# The --check gate
# ---------------------------------------------------------------------------


def check_profile(
    preset: ProfilePreset,
    scale: float,
    max_overhead: float = DEFAULT_MAX_OVERHEAD,
) -> List[str]:
    """Assert the profiling contract; returns failure messages.

    Three properties: (1) an unprofiled run carries no instrumentation
    shadows — off means the hooks do not exist; (2) a profiled run is
    deterministically identical to an unprofiled one (same manifest);
    (3) the profile snapshot is schema-complete with per-layer times
    summing to at most the total span, and the profiled wall time stays
    under ``max_overhead`` times the unprofiled one.
    """
    failures: List[str] = []
    workload = preset.workload(scale)
    plain = run_profile(preset, scale, (), profile=False, workload=workload)
    profiled = run_profile(preset, scale, (), profile=True, workload=workload)

    # (1) structurally no-op when off: nothing shadowed, no snapshot.
    # A tagged fast-path closure (repro.operators.fastpath) is a
    # deliberate build-time specialization, not a profiler leak.
    def _profiler_shadow(op: Any) -> bool:
        fn = vars(op).get("handle")
        return fn is not None and getattr(fn, "__repro_profiled__", False)

    join = plain.run.join
    if _profiler_shadow(join):
        failures.append("unprofiled join carries a handle shadow")
    if plain.run.profile is not None:
        failures.append("unprofiled run unexpectedly carries a profile")
    if profiled.run.join is not join and _profiler_shadow(profiled.run.join):
        failures.append("profiled join still shadowed after restore()")
    if fastpath.has_fastpath(join) and not fastpath.has_fastpath(
        profiled.run.join
    ):
        failures.append("fast-path handle did not survive profiler restore()")

    # (2) profiling must not change the simulation.
    if profiled.outcome() != plain.outcome():
        failures.append(
            f"profiled outcome {profiled.outcome()} != "
            f"unprofiled {plain.outcome()}"
        )
    if profiled.run.manifest != plain.run.manifest:
        failures.append("profiled manifest differs from unprofiled manifest")

    # (3) snapshot schema and measurement sanity.
    snapshot = profiled.run.profile
    if snapshot is None:
        failures.append("profiled run has no profile snapshot")
    else:
        missing = [layer for layer in LAYERS if layer not in snapshot["layers"]]
        if missing:
            failures.append(f"profile snapshot missing layers {missing}")
        layer_sum = sum(
            entry["self_ms"] for entry in snapshot["layers"].values()
        )
        if layer_sum > snapshot["total_ms"] * 1.001 + 0.001:
            failures.append(
                f"layer self times {layer_sum:.3f}ms exceed total span "
                f"{snapshot['total_ms']:.3f}ms"
            )
        histograms = snapshot.get("histograms", {})
        for name in ("result_latency_ms", "probe_cost_ms"):
            summary = histograms.get(name)
            if summary is None or summary.get("count", 0) <= 0:
                failures.append(f"histogram {name} recorded nothing")
            elif not all(f"p{p:g}_ms" in summary for p in (50, 95, 99)):
                failures.append(f"histogram {name} missing p50/p95/p99")
    if plain.wall_s and profiled.wall_s > max_overhead * plain.wall_s:
        failures.append(
            f"profiled wall {profiled.wall_s:.3f}s exceeds "
            f"{max_overhead:g}x the unprofiled {plain.wall_s:.3f}s"
        )
    return failures


# ---------------------------------------------------------------------------
# CLI entry point (shared by ``repro profile`` and direct invocation)
# ---------------------------------------------------------------------------


def add_profile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "preset", nargs="?", default="fig5_pjoin",
        help="profiling preset "
             f"({', '.join(PROFILE_PRESETS)}; aliases {', '.join(ALIASES)})",
    )
    parser.add_argument(
        "--scale", type=float, default=DEFAULT_SCALE,
        help="workload scale factor (default %(default)s)",
    )
    parser.add_argument(
        "--features", default="all", metavar="SPEC",
        help="feature layers to enable: 'all' (default), 'none', or a "
             f"comma-separated subset of {','.join(FEATURES)}",
    )
    parser.add_argument(
        "--grid", action="store_true",
        help="also run the unprofiled on/off feature grid and print the "
             "layer-cost matrix",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="grid repetitions per variant; fastest wall time kept",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="admit source tuples in micro-batches of N per scheduler "
             "event for the profiled run (outcome is byte-identical to "
             "the default N=1; only wall time moves)",
    )
    parser.add_argument(
        "--batch-sizes", default="1,16,64", metavar="LIST",
        help="comma-separated micro-batch sizes for the --grid matrix; "
             "each size re-measures the whole feature grid "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write the profile report (manifest + profile section) as JSON",
    )
    parser.add_argument(
        "--collapsed", type=Path, default=None, metavar="PATH",
        help="write collapsed-stack lines (FlameGraph / flamegraph.pl input)",
    )
    parser.add_argument(
        "--speedscope", type=Path, default=None, metavar="PATH",
        help="write a speedscope-compatible JSON profile "
             "(open at https://speedscope.app)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the profiling contract checks (no-op when off, "
             "deterministic equivalence, snapshot schema) and exit "
             "non-zero on any failure",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=DEFAULT_MAX_OVERHEAD,
        help="with --check: fail when the profiled wall time exceeds "
             "this multiple of the unprofiled one (default %(default)s)",
    )


def cmd_profile(args: argparse.Namespace) -> int:
    try:
        preset = resolve_preset(args.preset)
        features = normalize_features(args.features, preset)
    except ConfigError as exc:
        log.error(str(exc))
        return 2

    batch_size = getattr(args, "batch_size", None)
    try:
        batch_sizes = [
            int(part) for part in
            getattr(args, "batch_sizes", "1").split(",") if part.strip()
        ]
    except ValueError:
        log.error("--batch-sizes must be a comma-separated int list, "
                  "got %r", args.batch_sizes)
        return 2

    log.info("profiling %s (scale %g, features %s)",
             preset.name, args.scale, ",".join(features) or "none")
    profiled = run_profile(
        preset, args.scale, features, profile=True, batch_size=batch_size
    )
    snapshot = profiled.run.profile
    assert snapshot is not None and profiled.profiler is not None
    batch_note = f" | batch {batch_size}" if batch_size else ""
    print(f"profile: {preset.name} @ scale {args.scale:g} | features "
          f"{','.join(features) or 'none'}{batch_note} "
          f"| wall {profiled.wall_s:.3f}s "
          f"| {profiled.events_per_s:.0f} events/s")
    print()
    print(render_layer_table(snapshot))
    print()
    print(render_histograms(snapshot))

    matrix: Optional[Dict[str, Any]] = None
    if args.grid:
        log.info("running the on/off feature grid (repeat %d, "
                 "batch sizes %s)", args.repeat,
                 ",".join(str(b) for b in batch_sizes))
        try:
            matrix = layer_cost_matrix(
                preset.name, args.scale, repeat=args.repeat,
                batch_sizes=batch_sizes,
            )
        except ConfigError as exc:
            log.error(str(exc))
            return 2
        print()
        print(render_layer_matrix(matrix))

    if args.collapsed is not None or args.speedscope is not None:
        from repro.profiling.stacks import save_collapsed, save_speedscope

        if args.collapsed is not None:
            save_collapsed(profiled.profiler, args.collapsed)
            print(f"\nwrote collapsed stacks: {args.collapsed}")
        if args.speedscope is not None:
            save_speedscope(
                profiled.profiler, args.speedscope,
                name=f"repro profile {preset.name}",
            )
            print(f"wrote speedscope profile: {args.speedscope}")

    if args.out is not None:
        report: Dict[str, Any] = {
            "profile_format": 1,
            "preset": preset.name,
            "scale": args.scale,
            "features": features,
            "wall_s": round(profiled.wall_s, 4),
            "outcome": profiled.outcome(),
            # The run manifest itself stays profile-free (byte identity
            # with unprofiled runs); the profile rides alongside here.
            "manifest": profiled.run.manifest,
            "profile": snapshot,
        }
        if matrix is not None:
            report["layer_matrix"] = matrix
        args.out.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote profile report: {args.out}")

    if args.check:
        failures = check_profile(
            preset, args.scale, max_overhead=args.max_overhead
        )
        if failures:
            for failure in failures:
                log.error("profile check: %s", failure)
            print("profile check FAILED", file=sys.stderr)
            return 1
        print("\nprofile check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs.logging import setup_logging

    parser = argparse.ArgumentParser(
        prog="profile",
        description="Attribute hot-path wall time to feature layers",
    )
    add_profile_args(parser)
    setup_logging()
    return cmd_profile(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
