"""The ``repro profile`` subsystem: per-layer overhead measurement.

Built on the :mod:`repro.obs.profile` scoped timers:

* :mod:`~repro.profiling.presets` — pinned profiling workloads keyed
  to the paper figures (and to the bench suite's cases);
* :mod:`~repro.profiling.runner` — runs a preset with a chosen feature
  set (obs x resilience x governor x shard), renders the per-layer
  overhead table, computes the on/off layer-cost matrix the bench
  report embeds, and hosts the ``repro profile`` CLI;
* :mod:`~repro.profiling.stacks` — collapsed-stack (FlameGraph) and
  speedscope exports of the per-site self times.
"""

from repro.profiling.presets import (
    ALIASES,
    FEATURES,
    PROFILE_PRESETS,
    ProfilePreset,
    resolve_preset,
)
from repro.profiling.runner import (
    ProfileRun,
    check_profile,
    layer_cost_matrix,
    render_layer_table,
    run_profile,
)
from repro.profiling.stacks import (
    collapsed_stacks,
    save_collapsed,
    save_speedscope,
    to_speedscope,
)

__all__ = [
    "ALIASES",
    "FEATURES",
    "PROFILE_PRESETS",
    "ProfilePreset",
    "resolve_preset",
    "ProfileRun",
    "run_profile",
    "check_profile",
    "layer_cost_matrix",
    "render_layer_table",
    "collapsed_stacks",
    "save_collapsed",
    "to_speedscope",
    "save_speedscope",
]
