"""The observability layer: span tracing, counters, exporters, manifests.

Everything the paper's experimental story needs to be *seen* lives
here:

* :class:`~repro.obs.trace.Tracer` — virtual-time instant events and
  hierarchical spans, recorded through the zero-cost-when-off engine
  hook (``engine.tracer = Tracer()``);
* :mod:`~repro.obs.counters` — uniform per-component counter
  snapshots (every instrumented operator, the simulated disk and the
  punctuation stores expose ``counters()``);
* :mod:`~repro.obs.export` — JSONL event logs, Chrome trace-event
  JSON (open in Perfetto) and a human-readable indented timeline;
* :mod:`~repro.obs.manifest` — the run manifest: config + seed +
  counters + final series of one experiment run, written next to the
  figure data and diffable with ``tools/compare_runs.py``;
* :mod:`~repro.obs.profile` — the hot-path profiler: scoped timers
  shadowed onto live operators (zero cost when off) that attribute
  exclusive wall time to feature layers and feed fixed-bucket latency
  histograms (:mod:`~repro.obs.histogram`);
* :mod:`~repro.obs.logging` — the shared stderr diagnostic logger
  behind the CLI's ``--log-level`` / ``--quiet`` / ``--log-json``
  flags (silent by default when used as a library).

The periodic gauge sampler (:class:`~repro.metrics.collector.
MetricsCollector`) is re-exported here; its implementation stays in
:mod:`repro.metrics` alongside the series/report machinery it feeds.
"""

from repro.metrics.collector import MetricsCollector
from repro.obs.counters import counters_of, merge_component, namespaced
from repro.obs.histogram import FixedBucketHistogram
from repro.obs.logging import get_logger, setup_logging
from repro.obs.export import (
    render_timeline,
    save_chrome_trace,
    save_jsonl,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    diff_counters,
    iter_plan_operators,
    operator_counters,
)
from repro.obs.profile import LAYERS, Profiler
from repro.obs.trace import Span, TraceEvent, Tracer, get_tracer, trace_hook

__all__ = [
    # tracing
    "Tracer",
    "TraceEvent",
    "Span",
    "trace_hook",
    "get_tracer",
    # counters
    "counters_of",
    "merge_component",
    "namespaced",
    # exporters
    "to_jsonl",
    "save_jsonl",
    "to_chrome_trace",
    "save_chrome_trace",
    "validate_chrome_trace",
    "render_timeline",
    # manifests
    "MANIFEST_VERSION",
    "build_manifest",
    "diff_counters",
    "iter_plan_operators",
    "operator_counters",
    # profiling
    "Profiler",
    "LAYERS",
    "FixedBucketHistogram",
    # logging
    "get_logger",
    "setup_logging",
    # sampling
    "MetricsCollector",
]
