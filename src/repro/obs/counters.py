"""Uniform access to per-component counters.

Instrumented components (operators, the simulated disk, punctuation
stores) keep their counters as plain attributes — bumping an attribute
is the cheapest thing Python can do on a hot path — and expose them
through a ``counters()`` method returning a flat ``{name: number}``
dict.  This module holds the helpers that compose those snapshots into
one namespaced registry: sub-component counters are merged under
dotted prefixes (``disk.tuples_written``, ``store.left.live``), which
keeps the manifest JSON flat and diffable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

Counters = Dict[str, float]


def namespaced(prefix: str, counters: Mapping[str, Any]) -> Counters:
    """Return *counters* with every key prefixed by ``prefix.``."""
    return {f"{prefix}.{key}": value for key, value in counters.items()}


def merge_component(
    into: Counters, prefix: str, component: Optional[Any]
) -> Counters:
    """Merge a sub-component's ``counters()`` under *prefix* into *into*.

    Components without a ``counters()`` method (or ``None``) are
    skipped, so call sites need no isinstance checks.
    """
    snapshot = getattr(component, "counters", None)
    if snapshot is None:
        return into
    into.update(namespaced(prefix, snapshot()))
    return into


def counters_of(component: Any) -> Counters:
    """A component's counter snapshot, or ``{}`` when uninstrumented."""
    snapshot = getattr(component, "counters", None)
    return dict(snapshot()) if snapshot is not None else {}


def numeric_only(counters: Mapping[str, Any]) -> Counters:
    """Drop non-numeric values (nested dicts, tuples) from a snapshot."""
    return {
        key: float(value)
        for key, value in counters.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
