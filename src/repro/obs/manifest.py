"""Run manifests: the structured record of one experiment run.

A manifest is a plain JSON-serialisable dict capturing everything
needed to compare two runs of the same experiment: the configuration
and workload parameters (with the seed), the virtual duration, the
final value of every sampled series, and a per-operator counter
registry (probes, matches, purges, disk I/O, punctuation flow).  The
experiment harness attaches one to every
:class:`~repro.experiments.harness.ExperimentRun`, the JSON exporter
writes it next to the figure data, and ``tools/compare_runs.py`` diffs
the counters of two archived manifests.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.counters import counters_of, merge_component

MANIFEST_VERSION = 1


def _config_dict(join: Any) -> Dict[str, Any]:
    """The join's config as a plain dict (empty for config-less joins)."""
    config = getattr(join, "config", None)
    if config is None:
        # XJoin/SHJ keep their few knobs as attributes.
        out = {}
        for knob in ("memory_threshold", "disk_join_idle_ms", "window_ms"):
            if hasattr(join, knob):
                out[knob] = getattr(join, knob)
        return out
    if dataclasses.is_dataclass(config):
        return dataclasses.asdict(config)
    return dict(vars(config))


#: WorkloadSpec fields omitted from manifests while at their None
#: default, so pre-skew goldens stay byte-identical.
_OPTIONAL_WORKLOAD_FIELDS = ("zipf_exponent", "hot_set_rotate_every")


def _workload_dict(spec: Any) -> Dict[str, Any]:
    """The workload spec as a plain dict (unset skew knobs omitted)."""
    if spec is None:
        return {}
    out = dataclasses.asdict(spec)
    for field in _OPTIONAL_WORKLOAD_FIELDS:
        if field in out and out[field] is None:
            del out[field]
    return out


def iter_plan_operators(plan: Any) -> Iterator[Any]:
    """Every operator reachable from the plan's sources, in plan order."""
    seen = set()
    for source in getattr(plan, "sources", []):
        op = getattr(source, "_downstream", None)
        while op is not None and id(op) not in seen:
            seen.add(id(op))
            yield op
            op = getattr(op, "_downstream", None)


def operator_counters(op: Any) -> Dict[str, float]:
    """One operator's full counter registry, sub-components included."""
    counters = counters_of(op)
    merge_component(counters, "disk", getattr(op, "disk", None))
    # Quarantine policy only: dead_letters is None under other policies,
    # so default manifests gain no keys.
    merge_component(counters, "dead_letter", getattr(op, "dead_letters", None))
    sides = getattr(op, "sides", None)
    if sides is not None:
        for number, side in enumerate(sides):
            name = getattr(side, "side_name", None) or f"side{number}"
            merge_component(counters, f"store.{name}", getattr(side, "store", None))
    return counters


def build_manifest(
    label: str,
    join: Any,
    sink: Any,
    engine: Any,
    workload: Any = None,
    series: Optional[Dict[str, Any]] = None,
    duration_ms: Optional[float] = None,
    extra_operators: Optional[List[Any]] = None,
) -> Dict[str, Any]:
    """Assemble the run manifest for one finished experiment.

    Parameters
    ----------
    label, join, sink, engine:
        The run's identity and its main components.
    workload:
        A :class:`~repro.workloads.generator.GeneratedWorkload`; its
        spec (including the seed) is embedded when present.
    series:
        The sampled ``{name: TimeSeries}`` dict; only each series'
        final value lands in the manifest (the full series live in the
        figure JSON next to it).
    duration_ms:
        Virtual completion time of the run.
    extra_operators:
        Additional instrumented operators in the plan (n-ary stages,
        downstream group-bys) to include in the counter registry.
    """
    spec = getattr(workload, "spec", None)
    counters: Dict[str, Dict[str, float]] = {}
    operators = [join, sink] + list(extra_operators or [])
    for op in operators:
        name = getattr(op, "name", None) or type(op).__name__
        if name in counters:  # two unnamed operators of the same type
            name = f"{name}#{len(counters)}"
        counters[name] = operator_counters(op)
    manifest: Dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "label": label,
        "join_type": type(join).__name__,
        "config": _config_dict(join),
        "workload": _workload_dict(spec),
        "seed": getattr(spec, "seed", None),
        "duration_ms": duration_ms if duration_ms is not None else engine.now,
        "engine": {
            "virtual_now_ms": engine.now,
            "events_executed": engine.events_executed,
        },
        "counters": counters,
        "series_final": {
            name: (ts.values[-1] if len(ts) else None)
            for name, ts in (series or {}).items()
        },
    }
    return manifest


_SHARD_SUFFIX = re.compile(r"^(?P<base>.+)\.shard\d+$")


def aggregate_shard_counters(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """Fold per-shard counter namespaces into their logical operator.

    Sharded runs record ``pjoin.shard0`` … ``pjoin.shard3`` next to the
    facade's aggregated ``pjoin`` registry (when present).  To diff a
    sharded manifest against an unsharded one the per-shard namespaces
    must collapse first: when the base name already exists its registry
    wins (the facade aggregated with the correct max/sum semantics) and
    the shard entries are dropped; otherwise numeric shard counters are
    summed into a synthesised base registry.  Returns a new manifest
    dict; the input is not modified.
    """
    counters = manifest.get("counters")
    if not counters:
        return manifest
    folded: Dict[str, Dict[str, Any]] = {}
    synthesised: Dict[str, Dict[str, float]] = {}
    for op_name, registry in counters.items():
        match = _SHARD_SUFFIX.match(op_name)
        if match is None:
            folded[op_name] = registry
            continue
        base = match.group("base")
        if base in counters:
            continue  # facade already aggregated this shard's numbers
        target = synthesised.setdefault(base, {})
        for key, value in registry.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            target[key] = target.get(key, 0) + value
    for base, registry in synthesised.items():
        folded[base] = registry
    out = dict(manifest)
    out["counters"] = folded
    return out


def diff_counters(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = 0.0,
) -> List[Tuple[str, str, float, float, float]]:
    """Diff two manifests' counter registries.

    Returns ``(operator, counter, old, new, relative_change)`` rows for
    every counter present in both manifests whose relative change
    exceeds *threshold* (``inf`` when a zero became non-zero).  Rows
    come back sorted by operator then counter name.
    """
    rows: List[Tuple[str, str, float, float, float]] = []
    old_ops = old.get("counters", {})
    new_ops = new.get("counters", {})
    for op_name in sorted(set(old_ops) & set(new_ops)):
        old_counters = old_ops[op_name]
        new_counters = new_ops[op_name]
        for counter in sorted(set(old_counters) & set(new_counters)):
            old_value = old_counters[counter]
            new_value = new_counters[counter]
            if not isinstance(old_value, (int, float)):
                continue
            if not isinstance(new_value, (int, float)):
                continue
            if old_value == new_value:
                continue
            if old_value == 0:
                change = float("inf")
            else:
                change = (new_value - old_value) / abs(old_value)
            if abs(change) > threshold:
                rows.append((op_name, counter, float(old_value),
                             float(new_value), change))
    return rows
