"""Structured logging for the CLI and harness paths.

Diagnostic chatter (bench progress, skipped baselines, gate failures)
used to go through bare ``print(..., file=sys.stderr)`` calls, which
cannot be silenced, levelled or machine-parsed.  Every such path now
logs through a child of the ``repro`` logger; the CLI's global
``--log-level`` / ``--quiet`` / ``--log-json`` flags configure it once
in ``main()``.

Primary *results* (report tables, rendered figures) stay on stdout via
``print`` — they are the program's output, not diagnostics.

As a library, ``repro`` never configures handlers: importing this
module attaches a :class:`logging.NullHandler` to the root ``repro``
logger, so embedding applications keep full control.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Dict, Optional, TextIO

LOGGER_NAME = "repro"

LOG_LEVELS = ("debug", "info", "warning", "error")


class JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, message."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the ``repro`` logger (or the root one when unnamed)."""
    if name is None or name == LOGGER_NAME:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def setup_logging(
    level: str = "info",
    json_lines: bool = False,
    quiet: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Configure the ``repro`` logger for a CLI invocation.

    Replaces any handlers from a previous call (the CLI entry points
    may be invoked repeatedly in-process, e.g. from tests), so the
    configuration is idempotent.  ``quiet`` raises the threshold to
    errors-only regardless of *level*.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger.addHandler(handler)
    logger.setLevel(
        logging.ERROR if quiet else getattr(logging, level.upper())
    )
    logger.propagate = False
    return logger


# Library default: silent unless an application (or setup_logging)
# attaches a real handler.
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())
