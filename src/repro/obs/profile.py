"""Hot-path wall-clock profiling with per-layer attribution.

The simulator's hot path stacks several feature layers on every tuple:
the core probe/insert/purge work, the observability spans, the
resilience contract validation, the memory governor's charge/fault-back
hooks and the shard routing.  ROADMAP item 1 ("make disabled features
free") needs to know which layer costs what — this module measures it.

Design: **zero hooks in the operators**.  Profiling is applied *from
outside*, after the plan is built, by shadowing the hot-path callables
with timing closures on the *instances* (``join.handle``,
``validator.admit``, ``governor.fault_in``, ``router.push``, …).  When
profiling is off nothing is shadowed, so the disabled path is literally
today's code — not a cheap branch, *no* branch — which is what lets
profiled-off builds stay within measurement noise of a build without
the profiler module at all.

Attribution is exclusive (self-time): a stack of open frames tracks
each frame's child time, so when a shard-layer frame (the router's
synchronous ``push``) contains core-layer frames (the shard operator's
``handle``), each layer is charged only its own nanoseconds.  By
construction the per-layer self times sum to exactly the total
profiled span.

Alongside the timers, three :class:`~repro.obs.histogram.
FixedBucketHistogram` latency distributions are recorded in *virtual*
time (hence fully deterministic): per-result latency (arrival of the
probing tuple to result emission), punctuation purge lag (punctuation
arrival to the purge run that exploits it) and per-probe cost.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.histogram import FixedBucketHistogram

PROFILE_VERSION = 1

#: The attribution layers, in reporting order.
LAYERS: Tuple[str, ...] = ("core", "obs", "resilience", "governor", "shard")

#: Histogram names -> resolution (ms per bucket unit).
_HISTOGRAMS: Dict[str, float] = {
    "result_latency_ms": 0.01,
    "purge_lag_ms": 0.01,
    "probe_cost_ms": 0.0001,
}

#: Governor hooks on the operators' hot and purge paths.
_GOVERNOR_HOOKS = ("fault_in", "after_insert", "fault_in_partition", "fault_in_all")


class Profiler:
    """Scoped wall-clock timers with exclusive per-layer attribution.

    One profiler instruments one run: :meth:`instrument_run` shadows
    the hot-path callables, the simulation executes, :meth:`restore`
    removes every shadow (shared objects like a cost model must not
    leak instrumentation into later runs) and :meth:`snapshot` returns
    the JSON-ready measurement.

    ``clock`` is injectable for tests (defaults to
    :func:`time.perf_counter_ns`).
    """

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        self._clock: Callable[[], int] = clock or time.perf_counter_ns
        # (source, layer) -> exclusive nanoseconds / call count.
        self.self_ns: Dict[Tuple[str, str], int] = {}
        self.calls: Dict[Tuple[str, str], int] = {}
        # Total nanoseconds spent inside top-level profiled frames.
        self.total_ns = 0
        # Open frames; each entry is a one-element list [child_ns].
        self._stack: List[List[int]] = []
        self._undo: List[Callable[[], None]] = []
        self.histograms: Dict[str, FixedBucketHistogram] = {
            name: FixedBucketHistogram(resolution_ms=resolution)
            for name, resolution in _HISTOGRAMS.items()
        }

    # ------------------------------------------------------------------
    # Scoped timing
    # ------------------------------------------------------------------

    def wrap(self, fn: Callable[..., Any], source: str, layer: str) -> Callable[..., Any]:
        """A timing closure around *fn*, attributed to (source, layer)."""
        if layer not in LAYERS:
            raise ValueError(f"unknown profiling layer {layer!r}; use one of {LAYERS}")
        key = (source, layer)
        self_ns = self.self_ns
        calls = self.calls
        self_ns.setdefault(key, 0)
        calls.setdefault(key, 0)
        stack = self._stack
        clock = self._clock

        def profiled(*args: Any, **kwargs: Any) -> Any:
            frame = [0]
            stack.append(frame)
            begin = clock()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = clock() - begin
                stack.pop()
                self_ns[key] += elapsed - frame[0]
                calls[key] += 1
                if stack:
                    stack[-1][0] += elapsed
                else:
                    self.total_ns += elapsed

        # Tag the shadow so leak checks can tell a forgotten profiler
        # closure from a deliberate fast-path specialization
        # (see repro.operators.fastpath).
        profiled.__repro_profiled__ = True  # type: ignore[attr-defined]
        return profiled

    # ------------------------------------------------------------------
    # Shadow installation (reversible)
    # ------------------------------------------------------------------

    _ABSENT = object()

    def _install(self, obj: Any, name: str, fn: Callable[..., Any]) -> None:
        """Shadow ``obj.name`` with *fn* on the instance; undoable.

        The undo restores whatever *instance* value the attribute held
        before — fast-path closures live in the instance ``__dict__``
        (see :mod:`repro.operators.fastpath`) and must survive a
        profiled run, so a plain ``delattr`` would wrongly strip them
        back to the layered class method.
        """
        try:
            prior = obj.__dict__.get(name, self._ABSENT)
        except AttributeError:  # __slots__ objects: nothing to preserve
            prior = self._ABSENT
        try:
            setattr(obj, name, fn)
        except AttributeError:
            # Frozen dataclasses (the cost model) veto setattr; the
            # instance __dict__ is still writable underneath.
            object.__setattr__(obj, name, fn)

        def undo(target: Any = obj, attr: str = name, value: Any = prior) -> None:
            if value is self._ABSENT:
                try:
                    delattr(target, attr)
                except AttributeError:
                    object.__delattr__(target, attr)
            else:
                try:
                    setattr(target, attr, value)
                except AttributeError:
                    object.__setattr__(target, attr, value)

        self._undo.append(undo)

    def _shadow(self, obj: Any, name: str, source: str, layer: str) -> None:
        self._install(obj, name, self.wrap(getattr(obj, name), source, layer))

    def restore(self) -> None:
        """Remove every installed shadow (reverse order)."""
        while self._undo:
            self._undo.pop()()

    # ------------------------------------------------------------------
    # Instrumentation of a built plan
    # ------------------------------------------------------------------

    def instrument_run(
        self,
        join: Any,
        sink: Any,
        engine: Any,
        cost_model: Any = None,
    ) -> None:
        """Shadow the hot-path callables of one built plan.

        Handles both plain join operators and the sharded facade
        (router/shards/merger); the tracer (when attached) and the
        plan's cost model are instrumented once for the whole run.
        """
        tracer = getattr(engine, "tracer", None)
        if tracer is not None:
            for name in ("record", "begin", "end"):
                self._shadow(tracer, name, "tracer", "obs")
        if cost_model is not None:
            self._instrument_probe_cost(cost_model)
        shards = getattr(join, "shards", None)
        router = getattr(join, "router", None)
        merger = getattr(join, "merger", None)
        if shards is not None and router is not None and merger is not None:
            name = getattr(join, "name", "join")
            self._shadow(router, "push", f"{name}.router", "shard")
            self._shadow(merger, "handle", f"{name}.merge", "shard")
            if hasattr(merger, "on_finish"):
                self._shadow(merger, "on_finish", f"{name}.merge", "shard")
            for shard in shards:
                self.instrument_operator(shard)
        else:
            self.instrument_operator(join)
        if sink is not None:
            source = getattr(sink, "name", type(sink).__name__)
            self._shadow(sink, "handle", source, "core")
            if hasattr(sink, "accept_batch"):
                self._shadow(sink, "accept_batch", source, "core")

    def instrument_operator(self, op: Any) -> None:
        """Shadow one join operator's hot path and its feature hooks."""
        source = getattr(op, "name", type(op).__name__)
        self._shadow(op, "handle", source, "core")
        if hasattr(op, "on_finish"):
            self._shadow(op, "on_finish", source, "core")
        validator = getattr(op, "validator", None)
        if validator is not None:
            for name in ("admit", "observe_punctuation"):
                if hasattr(validator, name):
                    self._shadow(validator, name, f"{source}.validator", "resilience")
        governor = getattr(op, "governor", None)
        if governor is not None:
            for name in _GOVERNOR_HOOKS:
                if hasattr(governor, name):
                    self._shadow(governor, name, f"{source}.governor", "governor")
        self._instrument_latency(op)
        self._instrument_purge_lag(op)

    # ------------------------------------------------------------------
    # Virtual-time histograms
    # ------------------------------------------------------------------

    def _instrument_probe_cost(self, cost_model: Any) -> None:
        original = getattr(cost_model, "probe_cost", None)
        if original is None:
            return
        hist = self.histograms["probe_cost_ms"]

        def probe_cost(candidates_in_bucket: int, matches: int) -> float:
            cost = original(candidates_in_bucket, matches)
            hist.record(cost)
            return cost

        self._install(cost_model, "probe_cost", probe_cost)

    def _instrument_latency(self, op: Any) -> None:
        """Record result latency: probing tuple's arrival -> emission."""
        engine = getattr(op, "engine", None)
        if engine is None:
            return
        hist = self.histograms["result_latency_ms"]
        emit_joins = getattr(op, "emit_joins", None)
        if emit_joins is not None:

            def profiled_emit_joins(new_tuple: Any, entries: Any, new_side: int) -> Any:
                if entries:
                    hist.record(engine.now - new_tuple.ts, count=len(entries))
                return emit_joins(new_tuple, entries, new_side)

            self._install(op, "emit_joins", profiled_emit_joins)
        emit_pair = getattr(op, "emit_pair", None)
        if emit_pair is not None:

            def profiled_emit_pair(entry_a: Any, entry_b: Any, a_side: int) -> Any:
                hist.record(engine.now - max(entry_a.tup.ts, entry_b.tup.ts))
                return emit_pair(entry_a, entry_b, a_side)

            self._install(op, "emit_pair", profiled_emit_pair)

    def _instrument_purge_lag(self, op: Any) -> None:
        """Record punctuation arrival -> the purge run that exploits it.

        PJoin dispatches its purge component through the bound-method
        table built at construction, so the interceptor replaces the
        table entry, not the attribute.
        """
        engine = getattr(op, "engine", None)
        components = getattr(op, "_components", None)
        handle_punct = getattr(op, "_handle_punctuation", None)
        if engine is None or handle_punct is None or not isinstance(components, dict):
            return
        purge = components.get("state_purge")
        if purge is None:
            return
        hist = self.histograms["purge_lag_ms"]
        pending: List[float] = []

        def profiled_handle_punctuation(punct: Any, side: int) -> Any:
            pending.append(engine.now)
            return handle_punct(punct, side)

        def profiled_state_purge(event: Any) -> Any:
            now = engine.now
            for arrived in pending:
                hist.record(now - arrived)
            pending.clear()
            return purge(event)

        self._install(op, "_handle_punctuation", profiled_handle_punctuation)
        components["state_purge"] = profiled_state_purge

        def undo_component(table: Dict[str, Any] = components, fn: Any = purge) -> None:
            table["state_purge"] = fn

        self._undo.append(undo_component)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def layer_totals(self) -> Dict[str, Dict[str, Any]]:
        """Per-layer exclusive time: ``{layer: {self_ns, calls}}``."""
        totals: Dict[str, Dict[str, Any]] = {
            layer: {"self_ns": 0, "calls": 0} for layer in LAYERS
        }
        for (source, layer), ns in self.self_ns.items():
            totals[layer]["self_ns"] += ns
            totals[layer]["calls"] += self.calls[(source, layer)]
        return totals

    def sites(self) -> List[Dict[str, Any]]:
        """Per-site breakdown, hottest first."""
        rows = [
            {
                "source": source,
                "layer": layer,
                "self_ms": round(ns / 1e6, 4),
                "calls": self.calls[(source, layer)],
            }
            for (source, layer), ns in self.self_ns.items()
        ]
        rows.sort(key=lambda row: (-float(row["self_ms"]), str(row["source"])))
        return rows

    def snapshot(self) -> Dict[str, Any]:
        """The JSON-ready measurement of one profiled run."""
        total_ns = self.total_ns
        layers: Dict[str, Dict[str, Any]] = {}
        for layer, totals in self.layer_totals().items():
            self_ns = int(totals["self_ns"])
            layers[layer] = {
                "self_ms": round(self_ns / 1e6, 4),
                "share": round(self_ns / total_ns, 4) if total_ns else 0.0,
                "calls": totals["calls"],
            }
        return {
            "profile_version": PROFILE_VERSION,
            "total_ms": round(total_ns / 1e6, 4),
            "layers": layers,
            "sites": self.sites(),
            "histograms": {
                name: hist.summary()
                for name, hist in self.histograms.items()
                if hist.count
            },
        }
