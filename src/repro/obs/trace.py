"""Virtual-time event and span tracing.

The :class:`Tracer` is the recording backend of the observability
layer.  Attach one to a :class:`~repro.sim.engine.SimulationEngine`
(``engine.tracer = Tracer()``) and instrumented components record what
they did and when — purge runs, relocations, disk joins, propagation —
as structured :class:`TraceEvent` records.  Tracing is off by default
and costs one attribute check per recording site when off.

Two kinds of record exist:

* **instant events** (:meth:`Tracer.record`) — "this happened now";
* **spans** (:meth:`Tracer.begin` / :meth:`Tracer.end`) — "this
  component ran", with begin/end marks and a parent link to the
  enclosing span.  The simulation is single-threaded, so spans nest
  by bracketing: whatever is recorded between ``begin`` and ``end``
  is a child of that span.

Exporters in :mod:`repro.obs.export` turn the recorded stream into a
JSONL log, a Chrome trace-event file (viewable in Perfetto or
chrome://tracing) or a human-readable indented timeline.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from repro.metrics.report import format_number

#: Phase markers, mirroring the Chrome trace-event phases.
PHASE_INSTANT = "i"
PHASE_BEGIN = "B"
PHASE_END = "E"


class TraceEvent:
    """One recorded action (an instant, or a span begin/end mark)."""

    __slots__ = ("time", "source", "action", "details", "phase",
                 "span_id", "parent_id")

    def __init__(
        self,
        time: float,
        source: str,
        action: str,
        details: Dict[str, Any],
        phase: str = PHASE_INSTANT,
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
    ) -> None:
        self.time = time
        self.source = source
        self.action = action
        self.details = details
        self.phase = phase
        self.span_id = span_id
        self.parent_id = parent_id

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form for the JSONL exporter."""
        out: Dict[str, Any] = {
            "time": self.time,
            "source": self.source,
            "action": self.action,
            "phase": self.phase,
        }
        if self.span_id is not None:
            out["span_id"] = self.span_id
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.details:
            out["details"] = self.details
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={format_number(v) if isinstance(v, (int, float)) else v}"
                          for k, v in self.details.items())
        mark = {PHASE_BEGIN: "▶ ", PHASE_END: "◀ "}.get(self.phase, "")
        return f"[{self.time:10.2f}ms] {self.source}: {mark}{self.action}({inner})"


class Span:
    """One completed (or still-open) span, reassembled from the events."""

    __slots__ = ("span_id", "parent_id", "source", "action", "begin", "end",
                 "details")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        source: str,
        action: str,
        begin: float,
        end: Optional[float],
        details: Dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.source = source
        self.action = action
        self.begin = begin
        self.end = end
        self.details = details

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Recorded virtual duration (0 while still open)."""
        return (self.end - self.begin) if self.end is not None else 0.0

    def __repr__(self) -> str:
        end = f"{self.end:.2f}" if self.end is not None else "open"
        return (
            f"Span({self.action!r}, source={self.source!r}, "
            f"[{self.begin:.2f}..{end}]ms, parent={self.parent_id})"
        )


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered.

    Parameters
    ----------
    actions:
        When given, only these action names are recorded.  Filtering a
        span's action suppresses its begin/end records but keeps the
        nesting intact, so children still link to the right ancestor.
    limit:
        Hard cap on stored events.  The buffer is a ring: when full,
        the **oldest** events are evicted so the newest are kept, and
        :attr:`dropped` counts the evictions (also surfaced by
        :meth:`render`).
    """

    def __init__(
        self,
        actions: Optional[List[str]] = None,
        limit: int = 100_000,
    ) -> None:
        self.actions = set(actions) if actions is not None else None
        self.limit = limit
        self.events: Deque[TraceEvent] = deque(maxlen=limit)
        self.dropped = 0
        self._next_span_id = 0
        # Stack of (span_id, source, action) for currently-open spans.
        self._open: List[Any] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _store(self, event: TraceEvent) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
        self.events.append(event)

    def record(self, time: float, source: str, action: str, **details: Any) -> None:
        """Record an instant event (nested under the open span, if any)."""
        if self.actions is not None and action not in self.actions:
            return
        parent = self._open[-1][0] if self._open else None
        self._store(
            TraceEvent(time, source, action, details, PHASE_INSTANT,
                       span_id=None, parent_id=parent)
        )

    def begin(self, time: float, source: str, action: str, **details: Any) -> int:
        """Open a span; returns its id.  Pair with :meth:`end`."""
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._open[-1][0] if self._open else None
        if self.actions is None or action in self.actions:
            self._store(
                TraceEvent(time, source, action, details, PHASE_BEGIN,
                           span_id=span_id, parent_id=parent)
            )
        self._open.append((span_id, source, action))
        return span_id

    def end(self, time: float, **details: Any) -> None:
        """Close the innermost open span."""
        if not self._open:
            return
        span_id, source, action = self._open.pop()
        parent = self._open[-1][0] if self._open else None
        if self.actions is None or action in self.actions:
            self._store(
                TraceEvent(time, source, action, details, PHASE_END,
                           span_id=span_id, parent_id=parent)
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_action(self, action: str) -> List[TraceEvent]:
        return [e for e in self.events if e.action == action]

    def spans(self) -> List[Span]:
        """Reassemble spans from the recorded begin/end marks.

        Spans whose begin mark was evicted by the ring buffer are
        omitted; spans still open (or whose end mark was never seen)
        come back with ``end=None``.
        """
        by_id: Dict[int, Span] = {}
        order: List[Span] = []
        for event in self.events:
            if event.phase == PHASE_BEGIN:
                span = Span(
                    event.span_id, event.parent_id, event.source,
                    event.action, event.time, None, dict(event.details),
                )
                by_id[event.span_id] = span
                order.append(span)
            elif event.phase == PHASE_END:
                span = by_id.get(event.span_id)
                if span is not None:
                    span.end = event.time
                    span.details.update(event.details)
        return order

    def counts(self) -> Dict[str, int]:
        """``{action: occurrences}``; spans count once (their begin)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.phase == PHASE_END:
                continue
            out[event.action] = out.get(event.action, 0) + 1
        return out

    def render(self, max_events: int = 200) -> str:
        """Human-readable timeline (see :func:`repro.obs.export.render_timeline`)."""
        from repro.obs.export import render_timeline

        return render_timeline(self, max_events=max_events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self.events)


def trace_hook(engine) -> Optional[Callable[..., None]]:
    """The engine's recording function, or ``None`` when tracing is off.

    Components call ``hook = trace_hook(self.engine)`` once per action
    site: ``if hook: hook(engine.now, self.name, "purge", removed=3)``.
    """
    tracer = getattr(engine, "tracer", None)
    if tracer is None:
        return None
    return tracer.record


def get_tracer(engine) -> Optional[Tracer]:
    """The engine's attached tracer, or ``None`` when tracing is off.

    This *is* the zero-cost-when-off discipline: every instrumentation
    site reduces to one ``getattr`` returning ``None``.
    """
    return getattr(engine, "tracer", None)
