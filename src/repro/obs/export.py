"""Exporters for recorded traces.

Three output formats, all fed from one :class:`~repro.obs.trace.Tracer`:

* :func:`to_jsonl` — one JSON object per event, the machine-readable
  archival form;
* :func:`to_chrome_trace` — the Chrome trace-event JSON array (open it
  in Perfetto at https://ui.perfetto.dev or in chrome://tracing);
  virtual milliseconds map to trace microseconds, each source becomes
  a named "thread", and every begin mark is guaranteed a matching end;
* :func:`render_timeline` — a human-readable indented timeline that
  supersedes the old ``Tracer.render()`` flat listing.
"""

from __future__ import annotations

import json
from itertools import islice
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.trace import PHASE_BEGIN, PHASE_END, PHASE_INSTANT, Tracer

#: One virtual millisecond maps to this many trace microseconds.
US_PER_MS = 1000.0


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(tracer: Tracer) -> str:
    """One JSON object per recorded event, newline-separated."""
    return "\n".join(json.dumps(e.to_dict(), default=str) for e in tracer.events)


def save_jsonl(tracer: Tracer, path: Union[str, Path]) -> None:
    """Write the JSONL event log to *path*."""
    text = to_jsonl(tracer)
    Path(path).write_text(text + "\n" if text else "")


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def to_chrome_trace(tracer: Tracer, pid: int = 1) -> List[Dict[str, Any]]:
    """The recorded events as a Chrome trace-event array.

    Every emitted ``B`` has a matching ``E`` on the same ``tid``:
    end marks whose begin was evicted by the ring buffer are skipped,
    and begins that never ended (span still open at export time, or
    end mark evicted) get a synthetic end at the last recorded time.
    Instants are emitted as thread-scoped ``i`` events.
    """
    out: List[Dict[str, Any]] = []
    open_begins: Dict[int, Dict[str, Any]] = {}
    last_time = 0.0
    for event in tracer.events:
        last_time = max(last_time, event.time)
        base: Dict[str, Any] = {
            "name": event.action,
            "ph": event.phase,
            "ts": event.time * US_PER_MS,
            "pid": pid,
            "tid": event.source,
        }
        if event.details:
            base["args"] = dict(event.details)
        if event.phase == PHASE_BEGIN:
            open_begins[event.span_id] = base
            out.append(base)
        elif event.phase == PHASE_END:
            begin = open_begins.pop(event.span_id, None)
            if begin is None:
                continue  # begin was evicted; an unmatched E is invalid
            base["tid"] = begin["tid"]
            out.append(base)
        else:
            base["s"] = "t"  # thread-scoped instant
            out.append(base)
    # Close anything still open so B/E pairs always match.
    for begin in open_begins.values():
        out.append({
            "name": begin["name"],
            "ph": PHASE_END,
            "ts": max(begin["ts"], last_time * US_PER_MS),
            "pid": pid,
            "tid": begin["tid"],
        })
    return out


def save_chrome_trace(tracer: Tracer, path: Union[str, Path], pid: int = 1) -> None:
    """Write the Chrome trace-event JSON array to *path*."""
    Path(path).write_text(json.dumps(to_chrome_trace(tracer, pid=pid), indent=1))


def validate_chrome_trace(events: List[Dict[str, Any]]) -> None:
    """Raise ``ValueError`` unless *events* is a well-formed trace.

    Checks the schema (every event is a dict with ``name``/``ph``/
    ``ts``/``pid``/``tid``) and that begin/end marks pair up per
    ``(pid, tid)`` in proper nesting order.
    """
    stacks: Dict[Any, List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not a dict: {event!r}")
        missing = {"name", "ph", "ts", "pid", "tid"} - set(event)
        if missing:
            raise ValueError(f"event {i} is missing keys {sorted(missing)}")
        key = (event["pid"], event["tid"])
        if event["ph"] == PHASE_BEGIN:
            stacks.setdefault(key, []).append(event["name"])
        elif event["ph"] == PHASE_END:
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"event {i}: E without a matching B on {key}")
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"event {i}: E for {event['name']!r} closes B for {opened!r}"
                )
        elif event["ph"] != PHASE_INSTANT:
            raise ValueError(f"event {i}: unknown phase {event['ph']!r}")
    unclosed = {key: stack for key, stack in stacks.items() if stack}
    if unclosed:
        raise ValueError(f"unclosed B events: {unclosed}")


# ---------------------------------------------------------------------------
# Human-readable timeline
# ---------------------------------------------------------------------------


def render_timeline(tracer: Tracer, max_events: int = 200) -> str:
    """An indented virtual-time timeline of the recorded events.

    Instants print as one line; spans print their begin (``▶``) and end
    (``◀``) marks, with everything recorded in between indented one
    level deeper.  A header reports ring-buffer evictions so truncated
    traces are never mistaken for complete ones.
    """
    lines: List[str] = []
    if tracer.dropped:
        lines.append(f"({tracer.dropped} earlier events dropped by the "
                     f"ring buffer, limit={tracer.limit})")
    depth = 0
    shown = 0
    for event in islice(tracer.events, max_events):
        if event.phase == PHASE_END:
            depth = max(0, depth - 1)
        lines.append("  " * depth + repr(event))
        shown += 1
        if event.phase == PHASE_BEGIN:
            depth += 1
    remaining = len(tracer.events) - shown
    if remaining > 0:
        lines.append(f"... and {remaining} more")
    return "\n".join(lines)
