"""Fixed-bucket (HDR-style) latency histograms.

The profiling layer records three latency distributions per run — the
virtual time from a tuple's arrival to each result it produces, the lag
between a punctuation's arrival and the purge run that exploits it, and
the virtual cost of each probe.  A plain list of samples would be exact
but unbounded; a :class:`FixedBucketHistogram` keeps memory constant
while bounding the *relative* quantization error, exactly like an HDR
histogram:

* values are quantized to integer units of ``resolution_ms``;
* the first ``2^(sub_bucket_bits + 1)`` units get one bucket each
  (exact);
* beyond that, bucket width doubles every octave while each octave
  keeps ``2^sub_bucket_bits`` linear sub-buckets, so the relative error
  of any bucket is at most ``2^-sub_bucket_bits``.

All bucket math is exact integer arithmetic (bit lengths and shifts,
no logarithms), so bucket boundaries are deterministic across
platforms — percentiles computed from a recorded run never flake.

Histograms with identical parameters merge losslessly, which is what
lets sharded or repeated runs fold their distributions into one.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigError

DEFAULT_RESOLUTION_MS = 0.001
DEFAULT_SUB_BUCKET_BITS = 5

#: Percentiles reported by :meth:`FixedBucketHistogram.summary`.
SUMMARY_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


class FixedBucketHistogram:
    """A log-linear bucketed histogram over non-negative millisecond values.

    Parameters
    ----------
    resolution_ms:
        Size of one quantization unit.  Values below one unit land in
        bucket 0; the histogram is exact up to
        ``2^(sub_bucket_bits + 1)`` units.
    sub_bucket_bits:
        Linear sub-buckets per octave (as a power of two).  Higher means
        finer relative resolution and more buckets.
    """

    def __init__(
        self,
        resolution_ms: float = DEFAULT_RESOLUTION_MS,
        sub_bucket_bits: int = DEFAULT_SUB_BUCKET_BITS,
    ) -> None:
        if resolution_ms <= 0:
            raise ConfigError(
                f"histogram resolution must be positive, got {resolution_ms!r}"
            )
        if not 0 < sub_bucket_bits < 20:
            raise ConfigError(
                f"sub_bucket_bits must be in (0, 20), got {sub_bucket_bits!r}"
            )
        self.resolution_ms = resolution_ms
        self.sub_bucket_bits = sub_bucket_bits
        # Buckets 0 .. sub_count-1 are exact (one unit each); every
        # later octave halves into sub_half linear sub-buckets.
        self._sub_count = 1 << (sub_bucket_bits + 1)
        self._sub_half = 1 << sub_bucket_bits
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None

    # ------------------------------------------------------------------
    # Bucket math (exact integers)
    # ------------------------------------------------------------------

    def bucket_index(self, value_ms: float) -> int:
        """The bucket holding *value_ms* (negative values clamp to 0)."""
        units = int(value_ms / self.resolution_ms) if value_ms > 0 else 0
        if units < self._sub_count:
            return units
        # Shift the value down until it fits the linear range; each
        # shift is one octave of sub_half buckets past the exact range.
        octave = units.bit_length() - (self.sub_bucket_bits + 1)
        return (
            self._sub_count
            + (octave - 1) * self._sub_half
            + ((units >> octave) - self._sub_half)
        )

    def bucket_lower_bound(self, index: int) -> float:
        """The smallest value (ms) that maps into bucket *index*."""
        if index < 0:
            raise ConfigError(f"bucket index must be non-negative, got {index}")
        if index < self._sub_count:
            return index * self.resolution_ms
        past = index - self._sub_count
        octave = past // self._sub_half + 1
        offset = past % self._sub_half
        return float((self._sub_half + offset) << octave) * self.resolution_ms

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------

    def record(self, value_ms: float, count: int = 1) -> None:
        """Add *count* observations of *value_ms*."""
        if count <= 0:
            return
        index = self.bucket_index(value_ms)
        self.counts[index] = self.counts.get(index, 0) + count
        self.count += count
        value = max(value_ms, 0.0)
        self.sum_ms += value * count
        if self.min_ms is None or value < self.min_ms:
            self.min_ms = value
        if self.max_ms is None or value > self.max_ms:
            self.max_ms = value

    def record_many(self, values_ms: Iterable[float]) -> None:
        for value in values_ms:
            self.record(value)

    def merge(self, other: "FixedBucketHistogram") -> None:
        """Fold *other* into this histogram (parameters must match)."""
        if (other.resolution_ms != self.resolution_ms
                or other.sub_bucket_bits != self.sub_bucket_bits):
            raise ConfigError(
                "cannot merge histograms with different bucket parameters: "
                f"({self.resolution_ms}, {self.sub_bucket_bits}) vs "
                f"({other.resolution_ms}, {other.sub_bucket_bits})"
            )
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.count += other.count
        self.sum_ms += other.sum_ms
        if other.min_ms is not None:
            self.min_ms = (other.min_ms if self.min_ms is None
                           else min(self.min_ms, other.min_ms))
        if other.max_ms is not None:
            self.max_ms = (other.max_ms if self.max_ms is None
                           else max(self.max_ms, other.max_ms))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def mean(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """The lower bound (ms) of the bucket holding the *pct* percentile.

        Quantized downward to the bucket boundary, so the true
        percentile lies within one bucket width above the returned
        value.  Returns 0.0 on an empty histogram.
        """
        if not 0 <= pct <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {pct!r}")
        if self.count == 0:
            return 0.0
        # Rank of the target observation, 1-based, at least 1.
        target = max(1, int(pct / 100.0 * self.count + 0.5))
        cumulative = 0
        for index in sorted(self.counts):
            cumulative += self.counts[index]
            if cumulative >= target:
                return self.bucket_lower_bound(index)
        return self.bucket_lower_bound(max(self.counts))

    def summary(self) -> Dict[str, Any]:
        """Headline stats for manifests: count, min/mean/max, p50/p95/p99."""
        out: Dict[str, Any] = {
            "count": self.count,
            "min_ms": round(self.min_ms, 6) if self.min_ms is not None else None,
            "mean_ms": round(self.mean(), 6),
            "max_ms": round(self.max_ms, 6) if self.max_ms is not None else None,
        }
        for pct in SUMMARY_PERCENTILES:
            out[f"p{pct:g}_ms"] = round(self.percentile(pct), 6)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "resolution_ms": self.resolution_ms,
            "sub_bucket_bits": self.sub_bucket_bits,
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
            # JSON object keys are strings; parse them back in from_dict.
            "counts": {str(index): count
                       for index, count in sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FixedBucketHistogram":
        hist = cls(
            resolution_ms=payload["resolution_ms"],
            sub_bucket_bits=payload["sub_bucket_bits"],
        )
        hist.count = int(payload.get("count", 0))
        hist.sum_ms = float(payload.get("sum_ms", 0.0))
        hist.min_ms = payload.get("min_ms")
        hist.max_ms = payload.get("max_ms")
        hist.counts = {
            int(index): int(count)
            for index, count in payload.get("counts", {}).items()
        }
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"FixedBucketHistogram(count={self.count}, "
            f"mean={self.mean():.3f}ms, max={self.max_ms})"
        )
