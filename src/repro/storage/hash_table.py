"""The partitioned hash table holding one stream's join state.

Both joins (XJoin and PJoin) maintain one :class:`PartitionedHashTable`
per input stream.  Hashing uses :func:`stable_hash`, which — unlike the
builtin ``hash`` on strings — is stable across Python processes, so a
seeded experiment produces the identical event trace every run.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import StorageError
from repro.storage.partition import HybridPartition, StateEntry
from repro.tuples.tuple import Tuple

# repr+CRC results for non-int join values.  Join domains are small
# (thousands of distinct keys) while tuple counts are large, so almost
# every probe/insert is a cache hit; the cap bounds pathological
# all-distinct workloads.  Process-local, so cross-process stability
# (the property the tests pin down) is untouched.
_HASH_CACHE: Dict[Any, int] = {}
_HASH_CACHE_MAX = 1 << 16


def stable_hash(value: Any) -> int:
    """A process-stable hash for join values.

    Integers hash to themselves; everything else hashes through CRC-32
    of its ``repr`` (memoized).  Python's builtin string hash is salted
    per process (``PYTHONHASHSEED``), which would make bucket assignment
    — and hence every virtual-time measurement — vary between runs.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    try:
        cached = _HASH_CACHE.get(value)
    except TypeError:  # unhashable join value: compute uncached
        return zlib.crc32(repr(value).encode("utf-8"))
    if cached is None:
        cached = zlib.crc32(repr(value).encode("utf-8"))
        if len(_HASH_CACHE) < _HASH_CACHE_MAX:
            _HASH_CACHE[value] = cached
    return cached


class PartitionedHashTable:
    """Hash table over *n_partitions* hybrid buckets.

    Parameters
    ----------
    n_partitions:
        Number of hash buckets.  The paper-scale experiments use a
        moderate count (default 16) so that an unpurged state visibly
        lengthens bucket chains.
    """

    def __init__(self, n_partitions: int = 16) -> None:
        if n_partitions < 1:
            raise StorageError(f"need at least one partition, got {n_partitions}")
        self.n_partitions = n_partitions
        self.partitions = [HybridPartition(i) for i in range(n_partitions)]
        self.memory_count = 0
        self.total_inserted = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def partition_index_for(self, hash_value: int) -> int:
        """Flat index of the bucket a hash value maps to.

        The single placement decision of the table: subclasses (the
        skew layer's :class:`~repro.skew.partitioner.AdaptiveTable`)
        override exactly this, and every placement-sensitive caller —
        insert, probe, purge-buffer grouping, the disk join's pairing —
        routes through it.
        """
        return hash_value % self.n_partitions

    def partition_for(
        self, join_value: Any, hash_value: Optional[int] = None
    ) -> HybridPartition:
        """The bucket a join value hashes to.

        Callers that already know ``stable_hash(join_value)`` — e.g.
        because the same tuple both probes and inserts — pass it as
        *hash_value* to skip rehashing.
        """
        if hash_value is None:
            hash_value = stable_hash(join_value)
        return self.partitions[self.partition_index_for(hash_value)]

    def insert(
        self,
        tup: Tuple,
        join_value: Any,
        ats: float,
        hash_value: Optional[int] = None,
    ) -> StateEntry:
        """Insert a tuple; returns its new :class:`StateEntry`."""
        if hash_value is None:
            hash_value = stable_hash(join_value)
        entry = StateEntry(tup, join_value, ats, hash_value)
        self.partitions[self.partition_index_for(hash_value)].insert(entry)
        self.memory_count += 1
        self.total_inserted += 1
        return entry

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(
        self, join_value: Any, hash_value: Optional[int] = None
    ) -> PyTuple[int, List[StateEntry]]:
        """Probe the memory portion of the matching bucket.

        Returns ``(bucket_occupancy, matching_entries)``.  The occupancy
        (all memory-resident tuples in the bucket, matching or not) is
        what the cost model charges for — it models scanning the bucket
        chain, which is exactly the cost that grows when dead tuples are
        never purged.
        """
        partition = self.partition_for(join_value, hash_value)
        return partition.memory_count, partition.probe_memory(join_value)

    # ------------------------------------------------------------------
    # Removal (purging)
    # ------------------------------------------------------------------

    def remove_value(self, join_value: Any) -> List[StateEntry]:
        """Drop and return all memory entries with this join value."""
        removed = self.partition_for(join_value).remove_memory_value(join_value)
        self.memory_count -= len(removed)
        return removed

    def remove_where(
        self, predicate: Callable[[StateEntry], bool]
    ) -> List[StateEntry]:
        """Drop and return memory entries satisfying *predicate*.

        Governor-demoted cold entries are swept too: they are logically
        memory-resident, so a purge that covers them reclaims them
        without ever faulting them back in.
        """
        removed: List[StateEntry] = []
        for partition in self.partitions:
            from_memory = partition.remove_memory_where(predicate)
            self.memory_count -= len(from_memory)
            removed.extend(from_memory)
            if partition.cold:
                removed.extend(partition.remove_cold_where(predicate))
        return removed

    # ------------------------------------------------------------------
    # Spilling
    # ------------------------------------------------------------------

    def largest_memory_partition(self) -> HybridPartition:
        """The bucket with the largest memory portion (XJoin's victim)."""
        return max(self.partitions, key=lambda p: p.memory_count)

    def spill_partition(self, partition: HybridPartition, now: float) -> int:
        """Flush one bucket's memory portion to disk; returns tuples moved.

        Sweeps governor-demoted cold entries along with the warm ones
        (they are logically memory-resident), so the return value may
        exceed the bucket's warm ``memory_count``.
        """
        warm = partition.memory_count
        moved = partition.spill(now)
        self.memory_count -= warm
        return moved

    # ------------------------------------------------------------------
    # Governor paging (cold tier; ``dts`` untouched)
    # ------------------------------------------------------------------

    def demote_partition(self, partition: HybridPartition) -> int:
        """Page one bucket's memory portion out to its cold list."""
        moved = partition.demote()
        self.memory_count -= moved
        return moved

    def promote_partition(self, partition: HybridPartition) -> int:
        """Fault one bucket's cold list back into its memory portion."""
        moved = partition.promote()
        self.memory_count += moved
        return moved

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def disk_count(self) -> int:
        return sum(p.disk_count for p in self.partitions)

    @property
    def cold_count(self) -> int:
        return sum(p.cold_count for p in self.partitions)

    @property
    def total_count(self) -> int:
        return self.memory_count + self.cold_count + self.disk_count

    def iter_memory(self) -> Iterator[StateEntry]:
        for partition in self.partitions:
            yield from partition.iter_memory()

    def iter_cold(self) -> Iterator[StateEntry]:
        for partition in self.partitions:
            yield from partition.iter_cold()

    def iter_disk(self) -> Iterator[StateEntry]:
        for partition in self.partitions:
            yield from partition.iter_disk()

    def iter_all(self) -> Iterator[StateEntry]:
        yield from self.iter_memory()
        yield from self.iter_cold()
        yield from self.iter_disk()

    def partitions_with_disk(self) -> List[HybridPartition]:
        """Buckets that currently have a non-empty disk portion."""
        return [p for p in self.partitions if p.disk_count > 0]

    def partitions_with_cold(self) -> List[HybridPartition]:
        """Buckets with governor-demoted (cold) entries."""
        return [p for p in self.partitions if p.cold_count > 0]

    def __len__(self) -> int:
        return self.total_count

    def __repr__(self) -> str:
        return (
            f"PartitionedHashTable(n={self.n_partitions}, "
            f"mem={self.memory_count}, disk={self.disk_count})"
        )
