"""The simulated disk: virtual-time I/O accounting.

One :class:`SimulatedDisk` is shared by all operators in a query plan.
It does not hold tuple data itself (the hybrid partitions keep their
disk-resident entries as tagged Python objects); it is the authority on
what an I/O operation *costs* and the ledger of how much I/O an
experiment performed.  The ablation benchmark A5 reads these counters to
compare PJoin's and XJoin's disk traffic under tight memory thresholds.

Transient faults
----------------
By default the disk never fails — the paper's assumption.  Passing a
:class:`~repro.resilience.retry.DiskFaultProfile` arms a seeded fault
injector: each operation may then hit a transient fault and ride it out
with exponential backoff (see :mod:`repro.resilience.retry`), which
shows up as extra virtual cost on that operation — the join above
simply gets slower, never wrong.  Faults, retries and total backoff
time are all counted, so manifests make every outage auditable.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StorageError
from repro.resilience.retry import DiskFaultProfile, maybe_injector
from repro.sim.costs import CostModel


class SimulatedDisk:
    """Virtual disk with seek + per-tuple transfer costs.

    Parameters
    ----------
    cost_model:
        Supplies :meth:`~repro.sim.costs.CostModel.disk_write_cost` and
        :meth:`~repro.sim.costs.CostModel.disk_read_cost`.
    bytes_per_tuple:
        Nominal serialised tuple size, used only for the byte-volume
        counters the observability layer reports (the cost model keeps
        charging per tuple).
    fault_profile:
        Optional :class:`~repro.resilience.retry.DiskFaultProfile`
        describing seeded transient faults; ``None`` (default) keeps the
        disk fault-free.
    """

    def __init__(
        self,
        cost_model: CostModel,
        bytes_per_tuple: int = 64,
        fault_profile: Optional[DiskFaultProfile] = None,
    ) -> None:
        if bytes_per_tuple <= 0:
            raise StorageError(
                f"bytes_per_tuple must be positive, got {bytes_per_tuple}"
            )
        self.cost_model = cost_model
        self.bytes_per_tuple = bytes_per_tuple
        self.fault_injector = maybe_injector(fault_profile)
        self.write_ops = 0
        self.read_ops = 0
        self.tuples_written = 0
        self.tuples_read = 0
        self.total_write_time = 0.0
        self.total_read_time = 0.0

    def _fault_penalty(self, operation: str) -> float:
        """Extra virtual cost from riding out a transient fault, if any."""
        if self.fault_injector is None:
            return 0.0
        penalty, _retries = self.fault_injector.charge(operation)
        return penalty

    def write(self, tuples: int) -> float:
        """Record a flush of *tuples* tuples; return its virtual cost."""
        if tuples < 0:
            raise StorageError(f"cannot write a negative tuple count: {tuples}")
        if tuples == 0:
            return 0.0
        cost = self.cost_model.disk_write_cost(tuples)
        cost += self._fault_penalty("write")
        self.write_ops += 1
        self.tuples_written += tuples
        self.total_write_time += cost
        return cost

    def read(self, tuples: int) -> float:
        """Record a fetch of *tuples* tuples; return its virtual cost."""
        if tuples < 0:
            raise StorageError(f"cannot read a negative tuple count: {tuples}")
        if tuples == 0:
            return 0.0
        cost = self.cost_model.disk_read_cost(tuples)
        cost += self._fault_penalty("read")
        self.read_ops += 1
        self.tuples_read += tuples
        self.total_read_time += cost
        return cost

    @property
    def total_io_time(self) -> float:
        """Total virtual time spent on disk I/O."""
        return self.total_write_time + self.total_read_time

    @property
    def bytes_written(self) -> int:
        """Nominal bytes flushed (``tuples_written * bytes_per_tuple``)."""
        return self.tuples_written * self.bytes_per_tuple

    @property
    def bytes_read(self) -> int:
        """Nominal bytes fetched (``tuples_read * bytes_per_tuple``)."""
        return self.tuples_read * self.bytes_per_tuple

    def stats(self) -> dict:
        """A snapshot of all counters, for metrics and reports."""
        return {
            "write_ops": self.write_ops,
            "read_ops": self.read_ops,
            "tuples_written": self.tuples_written,
            "tuples_read": self.tuples_read,
            "total_write_time": self.total_write_time,
            "total_read_time": self.total_read_time,
            "total_io_time": self.total_io_time,
        }

    def counters(self) -> dict:
        """The uniform registry form (see :mod:`repro.obs.counters`)."""
        out = self.stats()
        out["bytes_written"] = self.bytes_written
        out["bytes_read"] = self.bytes_read
        if self.fault_injector is not None:
            for key, value in self.fault_injector.counters().items():
                out[f"fault.{key}"] = value
        return out

    def __repr__(self) -> str:
        return (
            f"SimulatedDisk(writes={self.write_ops}/{self.tuples_written}t, "
            f"reads={self.read_ops}/{self.tuples_read}t)"
        )
