"""State entries and hybrid hash-bucket partitions.

A :class:`StateEntry` wraps one state-resident tuple together with the
metadata the join algorithms need:

* ``ats`` — arrival timestamp (when the tuple entered the state);
* ``dts`` — departure timestamp (when its partition was flushed to
  disk; ``inf`` while memory-resident).  Together ``[ats, dts)`` is the
  tuple's memory-residency interval, the basis of XJoin's timestamp
  duplicate-prevention;
* ``pid`` — the punctuation-index id assigned by PJoin's index builder
  (``None`` until indexed), mirroring the paper's augmented tuple
  structure (Figure 2 (b)).

A :class:`HybridPartition` is one hash bucket with a memory portion and
a disk portion.  The memory portion is organised as a ``join value →
entries`` dict: real match lookup is O(matches), while the *virtual*
probe cost charged by the cost model is proportional to the bucket's
total occupancy, modelling a bucket-chain scan.

A third, *cold* portion backs the memory governor
(:mod:`repro.memory`): a governor eviction demotes the whole memory
portion into the cold list without stamping ``dts`` — the entries stay
memory-resident as far as the join algorithms' duplicate-prevention
intervals are concerned, they are merely paged out and faulted back
(in original order) before the next probe touches the bucket.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.tuples.tuple import Tuple

INFINITY = math.inf


class StateEntry:
    """One tuple resident in a join state, with join metadata."""

    __slots__ = ("tup", "join_value", "join_hash", "ats", "dts", "pid")

    def __init__(
        self,
        tup: Tuple,
        join_value: Any,
        ats: float,
        join_hash: Optional[int] = None,
    ) -> None:
        self.tup = tup
        self.join_value = join_value
        # stable_hash(join_value), cached once at insert so later bucket
        # lookups (purge cascades, disk-join grouping) never rehash.
        self.join_hash = join_hash
        self.ats = ats
        self.dts: float = INFINITY
        self.pid: Optional[int] = None

    @property
    def in_memory(self) -> bool:
        return self.dts == INFINITY

    def __repr__(self) -> str:
        where = "mem" if self.in_memory else f"disk@{self.dts:g}"
        return f"StateEntry({self.tup!r}, {where}, pid={self.pid})"


class HybridPartition:
    """One hash bucket: a memory portion plus a disk portion.

    The disk portion is a flat list of entries (the algorithms always
    read a disk portion in full), plus the history of virtual times at
    which it was probed against the opposite memory portion — needed by
    XJoin's stage-3 duplicate prevention.
    """

    __slots__ = (
        "index",
        "memory",
        "memory_count",
        "cold",
        "disk",
        "probe_history",
        "last_insert_ts",
        "last_spill_ts",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.memory: Dict[Any, List[StateEntry]] = {}
        self.memory_count = 0
        # Governor-demoted entries: logically memory-resident
        # (``dts`` untouched) but paged out until the next fault-in.
        self.cold: List[StateEntry] = []
        self.disk: List[StateEntry] = []
        # Times at which stage 2 probed this disk portion against the
        # opposite memory portion, in increasing order.
        self.probe_history: List[float] = []
        # Arrival time of the newest memory entry; lets the reactive
        # disk-join stage skip partitions with nothing new to pair.
        self.last_insert_ts = -INFINITY
        # Time of the latest flush; lets a full disk join detect fresh
        # disk-disk work since the previous full run.
        self.last_spill_ts = -INFINITY

    # ------------------------------------------------------------------
    # Memory portion
    # ------------------------------------------------------------------

    def insert(self, entry: StateEntry) -> None:
        """Add *entry* to the memory portion."""
        self.memory.setdefault(entry.join_value, []).append(entry)
        self.memory_count += 1
        if entry.ats > self.last_insert_ts:
            self.last_insert_ts = entry.ats

    def probe_memory(self, join_value: Any) -> List[StateEntry]:
        """Memory-resident entries matching *join_value* (may be empty)."""
        return self.memory.get(join_value, [])

    def iter_memory(self) -> Iterator[StateEntry]:
        for entries in self.memory.values():
            yield from entries

    def remove_memory_value(self, join_value: Any) -> List[StateEntry]:
        """Drop and return all memory entries with the given join value."""
        entries = self.memory.pop(join_value, [])
        self.memory_count -= len(entries)
        return entries

    def remove_memory_where(
        self, predicate: Callable[[StateEntry], bool]
    ) -> List[StateEntry]:
        """Drop and return memory entries satisfying *predicate*."""
        removed: List[StateEntry] = []
        for value in list(self.memory):
            entries = self.memory[value]
            keep = []
            for entry in entries:
                if predicate(entry):
                    removed.append(entry)
                else:
                    keep.append(entry)
            if keep:
                self.memory[value] = keep
            else:
                del self.memory[value]
        self.memory_count -= len(removed)
        return removed

    # ------------------------------------------------------------------
    # Cold portion (governor paging; ``dts`` never touched here)
    # ------------------------------------------------------------------

    def demote(self) -> int:
        """Page the whole memory portion out to the cold list.

        Entries keep ``dts = inf`` (they remain memory-resident for the
        algorithms' duplicate-prevention intervals) and their insertion
        order, so a later :meth:`promote` restores the memory dict
        exactly.  Returns the number of tuples demoted (the governor
        charges disk-write cost for them).
        """
        moved = 0
        for entries in self.memory.values():
            self.cold.extend(entries)
            moved += len(entries)
        self.memory.clear()
        self.memory_count = 0
        return moved

    def promote(self) -> int:
        """Fault every cold entry back into the memory portion.

        Re-inserts in demotion order, which is insertion order, so the
        per-value entry lists come back byte-identical to the
        pre-demotion structure.  Returns the number of tuples promoted
        (the governor charges disk-read cost for them).
        """
        moved = len(self.cold)
        for entry in self.cold:
            self.memory.setdefault(entry.join_value, []).append(entry)
        self.memory_count += moved
        self.cold.clear()
        return moved

    @property
    def cold_count(self) -> int:
        return len(self.cold)

    def iter_cold(self) -> Iterator[StateEntry]:
        return iter(self.cold)

    def remove_cold_where(
        self, predicate: Callable[[StateEntry], bool]
    ) -> List[StateEntry]:
        """Drop and return cold entries satisfying *predicate*."""
        removed = [e for e in self.cold if predicate(e)]
        if removed:
            self.cold = [e for e in self.cold if not predicate(e)]
        return removed

    # ------------------------------------------------------------------
    # Disk portion
    # ------------------------------------------------------------------

    def spill(self, now: float) -> int:
        """Move the whole memory portion to the disk portion.

        Every moved entry gets ``dts = now``.  Cold entries are swept
        along: they are logically memory-resident, so an algorithmic
        flush of this bucket closes their residency interval too.
        Returns the number of tuples moved (the caller charges
        disk-write cost for them).
        """
        moved = 0
        for entries in self.memory.values():
            for entry in entries:
                entry.dts = now
                self.disk.append(entry)
                moved += 1
        self.memory.clear()
        self.memory_count = 0
        for entry in self.cold:
            entry.dts = now
            self.disk.append(entry)
            moved += 1
        self.cold.clear()
        if moved:
            self.last_spill_ts = now
        return moved

    @property
    def disk_count(self) -> int:
        return len(self.disk)

    def iter_disk(self) -> Iterator[StateEntry]:
        return iter(self.disk)

    def remove_disk_where(
        self, predicate: Callable[[StateEntry], bool]
    ) -> List[StateEntry]:
        """Drop and return disk entries satisfying *predicate*."""
        removed = [e for e in self.disk if predicate(e)]
        if removed:
            self.disk = [e for e in self.disk if not predicate(e)]
        return removed

    def record_probe(self, now: float) -> None:
        """Record a stage-2 probe of this disk portion at virtual *now*."""
        self.probe_history.append(now)

    @property
    def total_count(self) -> int:
        return self.memory_count + len(self.cold) + len(self.disk)

    def __repr__(self) -> str:
        return (
            f"HybridPartition(#{self.index}, mem={self.memory_count}, "
            f"cold={len(self.cold)}, disk={len(self.disk)})"
        )
