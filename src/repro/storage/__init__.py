"""Simulated secondary storage and hybrid (memory + disk) join state.

XJoin — and PJoin, which adopts XJoin's memory-overflow resolution —
keeps each hash bucket in two portions: a memory-resident portion and a
disk-resident portion.  When the in-memory state reaches the memory
threshold, the largest partition's memory portion is flushed to disk.

The paper ran on a real disk; here the disk is simulated: tuples moved
to the "disk" stay in Python objects (tagged with their departure time),
but every flush and every fetch charges seek + per-tuple transfer time
to the virtual clock and is tallied by :class:`~repro.storage.disk.SimulatedDisk`.
This preserves the two properties the algorithms care about — which
tuples are memory-resident, and that disk access is orders of magnitude
slower — while keeping experiments deterministic.
"""

from repro.storage.disk import SimulatedDisk
from repro.storage.partition import HybridPartition, StateEntry
from repro.storage.hash_table import PartitionedHashTable, stable_hash

__all__ = [
    "SimulatedDisk",
    "StateEntry",
    "HybridPartition",
    "PartitionedHashTable",
    "stable_hash",
]
