"""The wall-clock benchmark-regression harness (``repro bench``).

Runs a pinned suite of paper-scale workloads, measures wall-clock
seconds, engine events per second and peak RSS, and writes a
``BENCH_<rev>.json`` report with machine metadata.  When a committed
baseline report exists the run is compared against it with a
configurable slowdown tolerance, turning the suite into a CI gate.

Two invariants make the numbers trustworthy:

* every case is a fully seeded, deterministic simulation, so the
  *virtual* results (result tuples, events executed) must match the
  baseline exactly — a mismatch means the code changed behaviour, not
  just speed, and is reported as such;
* workload generation happens outside the timed window, so the clock
  only covers simulation execution (the part the hot-path work targets).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.config import PJoinConfig
from repro.errors import ConfigError
from repro.experiments.harness import (
    active_governor,
    batching,
    governed,
    pjoin_factory,
    run_join_experiment,
    xjoin_factory,
)
from repro.memory.budget import GovernorSpec, parse_memory_budget
from repro.memory.policies import POLICIES
from repro.obs.logging import get_logger, setup_logging
from repro.resilience.chaos import run_chaos
from repro.workloads.generator import generate_workload

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

log = get_logger(__name__)

# Format 2 adds the optional ``layer_matrix`` section (per-layer
# feature-toggle overhead from ``--layer-matrix``); format-1 reports
# remain readable and comparable — the section is simply absent.
BENCH_FORMAT = 2
DEFAULT_BASELINE = Path("benchmarks") / "bench_baseline.json"
QUICK_BASELINE = Path("benchmarks") / "bench_baseline_quick.json"
DEFAULT_SCALE = 1.0
QUICK_SCALE = 0.25
DEFAULT_MAX_SLOWDOWN = 2.0


def _scaled(n: int, scale: float) -> int:
    return max(1, round(n * scale))


@dataclass(frozen=True)
class BenchCase:
    """One pinned benchmark workload.

    ``prepare(scale)`` does all untimed setup (workload generation) and
    returns a thunk; calling the thunk executes the simulation and
    returns its deterministic outcome: ``events`` (engine events
    executed), ``results`` (result tuples) and ``virtual_ms``.
    """

    name: str
    description: str
    prepare: Callable[[float], Callable[[], Dict[str, Any]]]


def _experiment_outcome(run: Any) -> Dict[str, Any]:
    engine = run.manifest["engine"]
    return {
        "events": engine["events_executed"],
        "results": run.results,
        "virtual_ms": engine["virtual_now_ms"],
    }


def _fig5_case(scale: float, factory: Any, label: str) -> Callable[[], Dict[str, Any]]:
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=5,
    )

    def run() -> Dict[str, Any]:
        return _experiment_outcome(
            run_join_experiment(factory, workload, label=label)
        )

    return run


def _prepare_fig5_pjoin(scale: float) -> Callable[[], Dict[str, Any]]:
    return _fig5_case(
        scale, pjoin_factory(PJoinConfig(purge_threshold=1)), "bench:fig5:PJoin-1"
    )


def _prepare_fig5_xjoin(scale: float) -> Callable[[], Dict[str, Any]]:
    return _fig5_case(scale, xjoin_factory(), "bench:fig5:XJoin")


def _prepare_fig5_batched(scale: float) -> Callable[[], Dict[str, Any]]:
    # The fig5_pjoin workload with vectorized source admission (batch
    # 64).  The deterministic outcome is identical to fig5_pjoin by
    # construction (the equivalence suite proves it); only the wall
    # time moves, which is exactly what this case measures.
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=5,
    )
    factory = pjoin_factory(PJoinConfig(purge_threshold=1))

    def run() -> Dict[str, Any]:
        return _experiment_outcome(
            run_join_experiment(
                factory, workload, label="bench:fig5:PJoin-1-b64", batch_size=64
            )
        )

    return run


def _prepare_fig5_xjoin_tight(scale: float) -> Callable[[], Dict[str, Any]]:
    # The governor hot path: XJoin's ever-growing state against a warm
    # budget of 1/16th of one stream, so every probe risks a fault-in
    # and every insert an eviction sweep.
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=5,
    )
    spec = GovernorSpec(
        budget_tuples=float(max(_scaled(10_000, scale) // 16, 64))
    )

    def run() -> Dict[str, Any]:
        with governed(spec):
            return _experiment_outcome(
                run_join_experiment(
                    xjoin_factory(), workload, label="bench:fig5:XJoin-tight"
                )
            )

    return run


def _prepare_fig8_lazy(scale: float) -> Callable[[], Dict[str, Any]]:
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=9,
    )
    factory = pjoin_factory(PJoinConfig(purge_threshold=10))

    def run() -> Dict[str, Any]:
        return _experiment_outcome(
            run_join_experiment(workload=workload, factory=factory,
                                label="bench:fig8:PJoin-10")
        )

    return run


def _prepare_fig5_sharded(scale: float) -> Callable[[], Dict[str, Any]]:
    # The fig5_pjoin workload executed as 4 shard processes (the
    # multiprocess backend).  Worker forking happens here, untimed, so
    # the thunk measures simulation work only — the same window the
    # unsharded case times.
    from repro.shard.backend import ShardPlan, warm_pool

    n_shards = 4
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=5,
    )
    plan = ShardPlan(workload, n_shards)
    config = PJoinConfig(purge_threshold=1)
    # The governed() context does not cross the fork boundary, so the
    # active spec travels explicitly (and keys the pool cache).
    spec = active_governor()
    pool = warm_pool(
        ("fig5_pjoin_sharded", scale, n_shards, spec),
        plan, config=config, governor=spec,
    )

    def run() -> Dict[str, Any]:
        outcome = pool.run()
        return {
            "events": outcome.events,
            "results": outcome.result_count,
            "virtual_ms": outcome.virtual_now,
        }

    return run


def _prepare_nary_adaptive(scale: float) -> Callable[[], Dict[str, Any]]:
    # The adaptive planner's showcase: the nary_drift preset (arrival
    # rates and punctuation cadences invert mid-run) under probe-heavy
    # charging, joined 3-way with runtime re-optimization on.  Times
    # the whole planning stack — per-side stats collection, boundary
    # re-scoring and plan switches — on top of the n-ary hot path.
    from repro.experiments.harness import run_nary_experiment
    from repro.planner import PlannerSpec, get_preset
    from repro.sim.costs import CostModel
    from repro.workloads.nary import generate_nary_workload

    workload = generate_nary_workload(get_preset("nary_drift", scale=scale))
    config = PJoinConfig(purge_threshold=8)
    cost_model = CostModel().with_overrides(probe_per_candidate=0.04)
    planner = PlannerSpec(mode="adaptive", reopt_interval=2)

    def run() -> Dict[str, Any]:
        return _experiment_outcome(
            run_nary_experiment(
                workload, config=config, planner=planner,
                cost_model=cost_model, label="bench:nary:adaptive",
            )
        )

    return run


def _prepare_chaos_disorder(scale: float) -> Callable[[], Dict[str, Any]]:
    # Chaos scenarios are pinned at their preset size; scale is ignored
    # so quick and full reports stay comparable on this case.
    def run() -> Dict[str, Any]:
        chaos = run_chaos("disorder")
        engine = chaos.manifest["engine"]
        return {
            "events": engine["events_executed"],
            "results": chaos.sink.tuple_count,
            "virtual_ms": engine["virtual_now_ms"],
        }

    return run


def _prepare_chaos_crash(scale: float) -> Callable[[], Dict[str, Any]]:
    # Pinned at the preset size like chaos_disorder.  The thunk times
    # the whole recovery drill: the unsharded reference run, the
    # supervised sharded run with a seeded worker death, the checkpoint
    # restore and the in-flight-suffix replay.
    def run() -> Dict[str, Any]:
        chaos = run_chaos("crash")
        engine = chaos.manifest["engine"]
        return {
            "events": engine["events_executed"],
            "results": chaos.sink.tuple_count,
            "virtual_ms": engine["virtual_now_ms"],
        }

    return run


BENCH_CASES: Dict[str, BenchCase] = {
    case.name: case
    for case in (
        BenchCase(
            "fig5_pjoin",
            "Figure 5 workload (40 t/p, seed 5), PJoin with eager purge",
            _prepare_fig5_pjoin,
        ),
        BenchCase(
            "fig5_xjoin",
            "Figure 5 workload (40 t/p, seed 5), XJoin comparator",
            _prepare_fig5_xjoin,
        ),
        BenchCase(
            "fig5_pjoin_batched",
            "Figure 5 workload (40 t/p, seed 5), PJoin with eager purge, "
            "micro-batched sources (batch 64)",
            _prepare_fig5_batched,
        ),
        BenchCase(
            "fig5_pjoin_sharded",
            "Figure 5 workload (40 t/p, seed 5), PJoin sharded K=4 "
            "(multiprocess backend)",
            _prepare_fig5_sharded,
        ),
        BenchCase(
            "fig5_xjoin_tight_memory",
            "Figure 5 workload (40 t/p, seed 5), XJoin under a tight "
            "memory budget (n/16 tuples, LRU governor)",
            _prepare_fig5_xjoin_tight,
        ),
        BenchCase(
            "fig8_pjoin_lazy",
            "Figure 8 workload (10 t/p, seed 9), PJoin with lazy purge (10)",
            _prepare_fig8_lazy,
        ),
        BenchCase(
            "fig_nary_adaptive",
            "nary_drift preset (3-way, rate drift, seed 11), NaryPJoin "
            "with the adaptive probe-order planner (reopt every 2)",
            _prepare_nary_adaptive,
        ),
        BenchCase(
            "chaos_disorder",
            "Chaos 'disorder' preset under quarantine (fixed size)",
            _prepare_chaos_disorder,
        ),
        BenchCase(
            "chaos_crash_recovery",
            "Chaos 'crash' preset: seeded worker death, checkpoint "
            "restore and replay (fixed size)",
            _prepare_chaos_crash,
        ),
    )
}


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _peak_rss_kb() -> Optional[int]:
    """Process-wide peak RSS in KiB, or ``None`` where unsupported.

    ``resource`` is POSIX-only and even there some platforms (or
    sandboxed runtimes) omit ``ru_maxrss`` or refuse ``getrusage``;
    the bench must degrade to a ``None`` column, never crash.
    """
    if resource is None:  # pragma: no cover - non-POSIX platform
        return None
    try:
        usage = resource.getrusage(resource.RUSAGE_SELF)
        peak = getattr(usage, "ru_maxrss", 0)
    except (ValueError, OSError):  # pragma: no cover - exotic runtimes
        return None
    if not peak:  # pragma: no cover - platform reports nothing useful
        return None
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


def git_rev() -> str:
    """Short git revision of the working tree, or ``"local"``."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True, timeout=10,
        )
        return proc.stdout.strip() or "local"
    except Exception:
        return "local"


def run_case(case: BenchCase, scale: float, repeat: int = 1) -> Dict[str, Any]:
    """Measure one case; with ``repeat > 1`` keep the fastest wall time."""
    best: Optional[Dict[str, Any]] = None
    for _ in range(max(1, repeat)):
        run = case.prepare(scale)
        start = time.perf_counter()
        outcome = run()
        wall = time.perf_counter() - start
        if best is None or wall < best["wall_s"]:
            best = dict(outcome)
            best["wall_s"] = wall
    assert best is not None
    best["events_per_s"] = best["events"] / best["wall_s"] if best["wall_s"] else 0.0
    best["peak_rss_kb"] = _peak_rss_kb()
    return best


def run_bench(
    scale: float = DEFAULT_SCALE,
    cases: Optional[List[str]] = None,
    repeat: int = 1,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run the suite and return the report dict (see module docstring)."""
    names = list(BENCH_CASES) if not cases else list(cases)
    unknown = [n for n in names if n not in BENCH_CASES]
    if unknown:
        raise ValueError(
            f"unknown bench cases {unknown}; available: {sorted(BENCH_CASES)}"
        )
    workloads: Dict[str, Any] = {}
    for name in names:
        if progress is not None:
            progress(f"running {name} (scale {scale:g}) ...")
        workloads[name] = run_case(BENCH_CASES[name], scale, repeat=repeat)
    return {
        "bench_format": BENCH_FORMAT,
        "rev": git_rev(),
        "created_unix": int(time.time()),
        "quick": quick,
        "scale": scale,
        "repeat": repeat,
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "workloads": workloads,
    }


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def baseline_payload(report: Dict[str, Any]) -> Dict[str, Any]:
    """The committable subset of a report.

    Baselines are shared via version control, so host-specific metadata
    (``machine``) and the run's own comparison result have no place in
    them: they churn every capture and never feed the gate, which only
    reads scale, wall times and the deterministic outcomes.
    """
    return {
        key: value
        for key, value in report.items()
        if key not in ("machine", "comparison", "layer_matrix")
    }


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_slowdown: float = DEFAULT_MAX_SLOWDOWN,
) -> Dict[str, Any]:
    """Diff *current* against *baseline*; ``ok`` is the regression gate.

    A case fails the gate when its wall time exceeds ``max_slowdown``
    times the baseline's.  Reports at different scales are not
    comparable; that is flagged as a failure rather than guessed around.
    """
    result: Dict[str, Any] = {
        "baseline_rev": baseline.get("rev"),
        "max_slowdown": max_slowdown,
        "workloads": {},
        "ok": True,
    }
    if current.get("repeat") != baseline.get("repeat"):
        # Wall times are best-of-N, so N changes the noise floor: a
        # repeat-1 run compared against a repeat-3 baseline conflates
        # regression with variance.  Warn loudly, but do not gate —
        # the comparison is still directionally useful.
        result["warning"] = (
            f"repeat mismatch: current {current.get('repeat')} vs "
            f"baseline {baseline.get('repeat')} — wall times are "
            "best-of-N, so slowdowns may be noise; re-run with "
            "matching --repeat"
        )
    if current.get("scale") != baseline.get("scale"):
        result["ok"] = False
        result["error"] = (
            f"scale mismatch: current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')} — re-capture the baseline"
        )
        return result
    for name, cur in current.get("workloads", {}).items():
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            result["workloads"][name] = {"ok": True, "note": "no baseline case"}
            continue
        entry: Dict[str, Any] = {
            "wall_s_delta_pct": round(
                (cur["wall_s"] - base["wall_s"]) / base["wall_s"] * 100.0, 2
            ) if base["wall_s"] else None,
            "wall_ratio": round(
                cur["wall_s"] / base["wall_s"], 4
            ) if base["wall_s"] else None,
            "events_per_s_ratio": round(
                cur["events_per_s"] / base["events_per_s"], 4
            ) if base["events_per_s"] else None,
            "events_match": cur["events"] == base["events"],
            "results_match": cur["results"] == base["results"],
        }
        entry["ok"] = bool(
            base["wall_s"] == 0 or cur["wall_s"] <= max_slowdown * base["wall_s"]
        )
        if not entry["events_match"] or not entry["results_match"]:
            entry["note"] = (
                "deterministic outcome drifted vs baseline — behaviour "
                "changed, not just speed"
            )
        result["workloads"][name] = entry
        result["ok"] = result["ok"] and entry["ok"]
    layer_diff = _diff_layer_matrices(current, baseline)
    if layer_diff is not None:
        result["layer_matrix"] = layer_diff
    return result


def _diff_layer_matrices(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Per-variant overhead drift, when BOTH reports carry the matrix.

    Old (format-1) reports have no ``layer_matrix``; the diff simply
    stays absent — never a crash.  The diff is informational (overhead
    percentages move with host noise), so it does not gate ``ok``.
    """
    old = baseline.get("layer_matrix")
    new = current.get("layer_matrix")
    if not isinstance(old, dict) or not isinstance(new, dict):
        return None
    if old.get("preset") != new.get("preset"):
        return None
    diff: Dict[str, Any] = {}
    for name, entry in new.get("variants", {}).items():
        base_entry = old.get("variants", {}).get(name)
        if base_entry is None:
            continue
        overhead = entry.get("overhead_pct")
        base_overhead = base_entry.get("overhead_pct")
        diff[name] = {
            "overhead_pct": overhead,
            "baseline_overhead_pct": base_overhead,
            "delta_pct": (
                round(overhead - base_overhead, 2)
                if overhead is not None and base_overhead is not None
                else None
            ),
        }
    return diff or None


def render_report(report: Dict[str, Any]) -> str:
    """A human-readable table of the report (and comparison, if any)."""
    machine = report.get("machine", {})
    host = (
        f" | {machine['platform']} | python {machine['python']}"
        if machine else ""
    )
    lines = [
        f"bench @ {report['rev']} | scale {report['scale']:g}{host}",
        "",
        f"{'case':<18} {'wall s':>9} {'events':>9} {'events/s':>11} "
        f"{'results':>9} {'peak RSS MB':>12}",
    ]
    for name, w in report["workloads"].items():
        rss = w.get("peak_rss_kb")
        rss_mb = f"{rss / 1024:.1f}" if rss else "-"
        lines.append(
            f"{name:<18} {w['wall_s']:>9.3f} {w['events']:>9} "
            f"{w['events_per_s']:>11.0f} {w['results']:>9} {rss_mb:>12}"
        )
    matrix = report.get("layer_matrix")
    if matrix:
        from repro.profiling.runner import render_layer_matrix

        comparison = report.get("comparison") or {}
        lines.append("")
        lines.append(
            render_layer_matrix(matrix, diff=comparison.get("layer_matrix"))
        )
    comparison = report.get("comparison")
    if comparison:
        lines.append("")
        if comparison.get("warning"):
            lines.append(f"comparison warning: {comparison['warning']}")
        if comparison.get("error"):
            lines.append(f"comparison error: {comparison['error']}")
        else:
            lines.append(
                f"vs baseline @ {comparison['baseline_rev']} "
                f"(max slowdown {comparison['max_slowdown']:g}x):"
            )
            for name, entry in comparison["workloads"].items():
                if "wall_s_delta_pct" not in entry:
                    lines.append(f"  {name:<18} {entry.get('note', '')}")
                    continue
                status = "ok" if entry["ok"] else "REGRESSION"
                drift = "" if entry["events_match"] else "  [outcome drifted]"
                lines.append(
                    f"  {name:<18} wall {entry['wall_s_delta_pct']:+7.1f}%  "
                    f"events/s x{entry['events_per_s_ratio']:.2f}  "
                    f"{status}{drift}"
                )
        lines.append(f"gate: {'PASS' if comparison['ok'] else 'FAIL'}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI entry point (shared by ``repro bench`` and ``tools/bench.py``)
# ---------------------------------------------------------------------------


def add_bench_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small suite (scale {QUICK_SCALE}) for CI smoke runs",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="override the workload scale "
             f"(default {DEFAULT_SCALE}, or {QUICK_SCALE} with --quick)",
    )
    parser.add_argument(
        "--cases", nargs="*", default=None, metavar="NAME",
        help=f"subset of cases to run ({', '.join(BENCH_CASES)})",
    )
    parser.add_argument(
        "--repeat", type=int, default=1,
        help="repetitions per case; the fastest wall time is kept",
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="report path (default BENCH_<rev>.json in the current dir)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help="baseline report to compare against (default "
             f"{DEFAULT_BASELINE}, or {QUICK_BASELINE} with --quick)",
    )
    parser.add_argument(
        "--max-slowdown", type=float, default=DEFAULT_MAX_SLOWDOWN,
        help="fail when a case's wall time exceeds this multiple of the "
             "baseline's (default %(default)s)",
    )
    parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the baseline comparison (measurement only)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="also write this report to the baseline path",
    )
    parser.add_argument(
        "--memory-budget", type=_budget_arg, default=None, metavar="BUDGET",
        help="attach the memory governor to every in-process case "
             "(tuple count, bytes with b/kb/mb/gb suffix, or 'inf'); "
             "wall times will not be comparable to an ungoverned "
             "baseline, so combine with --no-compare",
    )
    parser.add_argument(
        "--eviction-policy", choices=sorted(POLICIES), default="lru",
        help="governor eviction policy (default %(default)s)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="run every in-process case with micro-batched sources "
             "(N tuples admitted per scheduler event; results are "
             "byte-identical to the unbatched run, only wall time moves); "
             "wall times will not be comparable to an unbatched baseline, "
             "so combine with --no-compare",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="run every in-process case with the specialized hot-path "
             "closures disabled (results are byte-identical; only wall "
             "time moves); wall times will not be comparable to a "
             "fastpath baseline, so combine with --no-compare",
    )
    parser.add_argument(
        "--layer-matrix", action="store_true",
        help="also run the feature-toggle grid (obs/resilience/governor/"
             "shard on and off) on the fig5_pjoin preset and record the "
             "per-layer overhead matrix in the report",
    )


def _budget_arg(text: str) -> float:
    try:
        return parse_memory_budget(text)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def cmd_bench(args: argparse.Namespace) -> int:
    scale = args.scale
    if scale is None:
        scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    spec = None
    if getattr(args, "memory_budget", None) is not None:
        spec = GovernorSpec(
            budget_tuples=args.memory_budget, policy=args.eviction_policy
        )
    try:
        with contextlib.ExitStack() as stack:
            if spec is not None:
                stack.enter_context(governed(spec))
            if getattr(args, "batch_size", None) is not None:
                stack.enter_context(batching(args.batch_size))
            if getattr(args, "no_fastpath", False):
                from repro.operators import fastpath

                stack.enter_context(fastpath.disabled())
            report = run_bench(
                scale=scale,
                cases=args.cases,
                repeat=args.repeat,
                quick=args.quick,
                progress=log.info,
            )
    except ValueError as exc:
        log.error(str(exc))
        return 2

    if getattr(args, "layer_matrix", False):
        from repro.profiling.runner import layer_cost_matrix

        log.info("running layer-cost matrix (fig5_pjoin, scale %g) ...", scale)
        report["layer_matrix"] = layer_cost_matrix(
            "fig5_pjoin", scale=scale, repeat=args.repeat
        )

    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = QUICK_BASELINE if args.quick else DEFAULT_BASELINE
    gate_failed = False
    if not args.no_compare and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        report["comparison"] = compare_reports(
            report, baseline, max_slowdown=args.max_slowdown
        )
        report["comparison"]["baseline_path"] = str(baseline_path)
        if report["comparison"].get("warning"):
            log.warning(report["comparison"]["warning"])
        gate_failed = not report["comparison"]["ok"]
    elif not args.no_compare:
        log.warning("no baseline at %s; skipping comparison", baseline_path)

    out = args.out
    if out is None:
        out = Path(f"BENCH_{report['rev']}.json")
    out.write_text(json.dumps(report, indent=1) + "\n")
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json.dumps(baseline_payload(report), indent=1) + "\n"
        )
        log.info("wrote baseline: %s", baseline_path)

    print(render_report(report))
    print(f"\nwrote report: {out}")
    if gate_failed:
        # Name every offender: "gate: FAIL" alone is useless in a CI log.
        comparison = report["comparison"]
        if comparison.get("error"):
            log.error("bench gate FAILED: %s", comparison["error"])
        for name, entry in comparison["workloads"].items():
            if entry.get("ok", True):
                continue
            ratio = entry.get("wall_ratio")
            ratio_text = f"{ratio:.2f}x" if ratio is not None else "?"
            log.error(
                "bench gate FAILED: %s ran %s the baseline wall time "
                "(limit %gx)",
                name, ratio_text, comparison["max_slowdown"],
            )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench",
        description="Run the pinned benchmark suite and write BENCH_<rev>.json",
    )
    add_bench_args(parser)
    setup_logging()
    return cmd_bench(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
