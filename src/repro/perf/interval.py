"""A bisect-based interval index over range punctuation patterns.

The paper's prefix-consistency assumption (Section 2.2) says the
join-attribute patterns of any two punctuations are either *equal* or
*disjoint*.  For :class:`~repro.punctuations.patterns.Range` patterns
that means the live ranges form a set of non-overlapping intervals —
exactly the shape a sorted array answers point queries on in
O(log n) with :mod:`bisect`, instead of the O(n) scan the store's
``_general`` list needs.

:class:`RangeIntervalIndex` keeps the distinct live ranges sorted by
low bound.  Under disjointness, a value can only be covered by the
range whose low bound is the greatest one ≤ the value — or, when the
value *equals* an exclusive low bound, by the range just before that
one — so a point query inspects at most two candidates.

The index is defensive about its own assumptions:

* ranges with non-numeric bounds cannot be ordered against arbitrary
  values, so :meth:`add` refuses them (returns ``False``) and the
  caller keeps them in its linear-scan fallback;
* if an inserted range *overlaps* an existing one (prefix consistency
  violated — possible when the store's optional checker is off, e.g.
  under the ``trust`` fault policy with a faulty source), the index
  flags itself inconsistent and :meth:`query` returns ``None``,
  telling the caller to fall back to a linear scan over
  :meth:`items`.  Correctness never depends on the assumption.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.punctuations.patterns import Range

_NEG_INF = float("-inf")


def _low_key(pattern: Range) -> float:
    """Sort key of a range: its low bound, ``-inf`` when unbounded."""
    return _NEG_INF if pattern.low is None else pattern.low


def _indexable(pattern: Range) -> bool:
    """Can this range participate in a numerically ordered index?"""
    for bound in (pattern.low, pattern.high):
        if bound is not None and not isinstance(bound, (int, float)):
            return False
    return True


def _overlaps(a: Range, b: Range) -> bool:
    """Do two (indexable, non-equal) ranges share any value?"""
    if _low_key(a) > _low_key(b):
        a, b = b, a
    # a starts at or before b; they overlap iff a reaches b's start.
    if b.low is None:
        return True  # both unbounded below
    if a.high is None:
        return True
    if a.high > b.low:
        return True
    if a.high == b.low:
        return a.high_inclusive and b.low_inclusive
    return False


class RangeIntervalIndex:
    """Sorted-interval index mapping a point to the pids covering it.

    Stores ``Range -> [pid, ...]`` (pids in arrival order; equal
    patterns share one entry) plus a parallel pair of arrays sorted by
    low bound for bisection.  All mutation is O(n) worst case (list
    insert/remove) but n is the number of *distinct live ranges*, which
    stays small; queries are O(log n).
    """

    __slots__ = ("_pids", "_low_keys", "_ranges", "consistent")

    def __init__(self) -> None:
        self._pids: Dict[Range, List[int]] = {}
        self._low_keys: List[float] = []
        self._ranges: List[Range] = []
        #: False once an overlapping insert was seen; queries then
        #: return ``None`` and the caller must scan :meth:`items`.
        self.consistent = True

    def __len__(self) -> int:
        return sum(len(ids) for ids in self._pids.values())

    def __bool__(self) -> bool:
        return bool(self._pids)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, pattern: Range, pid: int) -> bool:
        """Index *pattern* under *pid*; ``False`` if not indexable."""
        if not _indexable(pattern):
            return False
        ids = self._pids.get(pattern)
        if ids is not None:
            ids.append(pid)
            return True
        self._pids[pattern] = [pid]
        key = _low_key(pattern)
        pos = bisect_right(self._low_keys, key)
        if self.consistent:
            for neighbour in (pos - 1, pos):
                if 0 <= neighbour < len(self._ranges) and _overlaps(
                    self._ranges[neighbour], pattern
                ):
                    self.consistent = False
                    break
        insort(self._low_keys, key)
        self._ranges.insert(pos, pattern)
        return True

    def remove(self, pattern: Range, pid: int) -> bool:
        """Drop *pid*; ``False`` if the pattern was never indexed."""
        ids = self._pids.get(pattern)
        if ids is None:
            return False
        ids.remove(pid)
        if not ids:
            del self._pids[pattern]
            # Find the exact slot among equal low keys.
            key = _low_key(pattern)
            pos = bisect_right(self._low_keys, key) - 1
            while pos >= 0 and self._low_keys[pos] == key:
                if self._ranges[pos] == pattern:
                    del self._low_keys[pos]
                    del self._ranges[pos]
                    if not self.consistent:
                        self._reprobe_consistency()
                    break
                pos -= 1
        return True

    def _reprobe_consistency(self) -> None:
        """Re-check disjointness after a removal; re-enable if clean.

        Once an overlapping insert flags the index inconsistent, every
        query falls back to a linear scan — but a purge may remove the
        offending range, making the survivors disjoint again.  Sorted by
        low bound, any overlap among disjoint-or-overlapping intervals
        implies an *adjacent* overlap (an interval reaching past its
        successor's start), so one adjacent-pair sweep is sufficient.
        """
        ranges = self._ranges
        for index in range(len(ranges) - 1):
            if _overlaps(ranges[index], ranges[index + 1]):
                return
        self.consistent = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, value: Any) -> Optional[List[int]]:
        """Pids of ranges covering *value* (arrival order, usually ≤1 range).

        Returns ``None`` when the index cannot answer — overlapping
        ranges were inserted, or the value is not comparable with the
        numeric bounds — and the caller must fall back to scanning
        :meth:`items`.
        """
        if not self.consistent:
            return None
        ranges = self._ranges
        if not ranges:
            return []
        if not isinstance(value, (int, float)):
            # Numeric bounds never match non-numeric values
            # (Range.matches turns the TypeError into False).
            return []
        pos = bisect_right(self._low_keys, value)
        # Candidate 1: greatest low bound <= value.  Candidate 2: the
        # range before it, needed when candidate 1's low *equals* the
        # value but is exclusive (e.g. (5, 9] misses 5, [1, 5] takes it).
        for candidate in (pos - 1, pos - 2):
            if candidate < 0:
                continue
            pattern = ranges[candidate]
            if pattern.matches(value):
                return self._pids[pattern]
            if _low_key(pattern) != value:
                break  # further-left ranges end even earlier
        return []

    def has_pattern(self, pattern: Range) -> bool:
        """Is this exact range pattern live in the index?"""
        return pattern in self._pids

    def items(self) -> List[PyTuple[Range, List[int]]]:
        """All live ``(range, pids)`` pairs, for linear fallback scans."""
        return [(pattern, self._pids[pattern]) for pattern in self._ranges]
