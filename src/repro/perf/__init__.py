"""Performance subsystem: parallel sweeps, hot-path indexes, benchmarks.

Three independent tools live here:

* :mod:`repro.perf.parallel` — a :class:`ParallelSweepRunner` that fans
  the points of a figure/ablation sweep out across worker processes and
  deterministically merges the results (``--jobs N`` on the CLI);
* :mod:`repro.perf.interval` — the bisect-based range index used by
  :class:`~repro.punctuations.store.PunctuationStore` to answer
  ``setMatch`` on range punctuations without a linear scan;
* :mod:`repro.perf.bench` — the wall-clock benchmark-regression
  harness behind ``repro bench`` (pinned paper-scale workloads,
  ``BENCH_<rev>.json`` reports, committed baselines).

Simulation *results* never depend on wall-clock speed — virtual time is
fully deterministic — so all three are pure accelerators: same output,
less waiting.

Attribute access is lazy (PEP 562): :mod:`repro.perf.interval` is
imported from hot-path modules (the punctuation store), which must not
pull in the experiment harness that :mod:`repro.perf.bench` depends on.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ParallelSweepRunner", "RangeIntervalIndex", "run_bench"]


def __getattr__(name: str) -> Any:
    if name == "ParallelSweepRunner":
        from repro.perf.parallel import ParallelSweepRunner

        return ParallelSweepRunner
    if name == "RangeIntervalIndex":
        from repro.perf.interval import RangeIntervalIndex

        return RangeIntervalIndex
    if name == "run_bench":
        from repro.perf.bench import run_bench

        return run_bench
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
