"""Parallel sweep execution: one worker process per experiment point.

Every figure/ablation in the study is a *sweep*: a handful of
independent, fully-seeded ``run_join_experiment`` calls followed by
checks over the collected results.  The runner exploits that structure
without modifying any experiment function, in three passes:

1. **plan** — re-drive the experiment function with a placeholder
   interceptor (:func:`repro.experiments.harness.intercepting_runs`)
   to count its runs and record their labels;
2. **execute** — fan the points out across a
   :class:`~concurrent.futures.ProcessPoolExecutor`; each worker
   re-drives the same function, skips every point but its own, and
   ships the finished :class:`ExperimentRun` back (pickled);
3. **merge** — re-drive the function once more, substituting the
   worker results call-by-call, so checks and figure assembly run on
   exactly the objects a serial run would have produced.

Because each point is a deterministic simulation and pickling preserves
its measurements exactly, serial and parallel sweeps yield
byte-identical figure JSON.  The only trace of parallelism is a
``jobs`` key stamped into each run manifest — excluded from
equivalence comparisons by convention.
"""

from __future__ import annotations

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional

from repro.errors import PerfError
from repro.experiments.harness import execute_join_experiment, intercepting_runs


def _experiment_registry() -> Dict[str, Callable[..., Any]]:
    # Imported lazily: figures/ablations import the harness this module
    # hooks into, and the CLI imports both.
    from repro.experiments.ablations import ALL_ABLATIONS
    from repro.experiments.figures import ALL_FIGURES

    return {**ALL_FIGURES, **ALL_ABLATIONS}


class _PlanCaptured(Exception):
    """Internal: the experiment function touched a placeholder result."""


class _PointComplete(Exception):
    """Internal: a worker finished its assigned sweep point."""

    def __init__(self, run: Any) -> None:
        super().__init__("sweep point complete")
        self.run = run


class _RunPlaceholder:
    """Stands in for an :class:`ExperimentRun` during the planning pass.

    Experiment functions issue all of their runs before reading any
    result (the sweep structure this runner relies on); the first
    attribute access therefore marks the end of the sweep's run calls
    and aborts the pass via :class:`_PlanCaptured`.
    """

    __slots__ = ("index", "label")

    def __init__(self, index: int, label: str) -> None:
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "label", label)

    def __getattr__(self, name: str) -> Any:
        raise _PlanCaptured()


def _plan_sweep(fn: Callable[..., Any], scale: float) -> List[str]:
    """Count *fn*'s run calls at *scale*; returns their labels in order."""
    labels: List[str] = []

    def interceptor(factory: Any, workload: Any, **kwargs: Any) -> Any:
        labels.append(kwargs.get("label", ""))
        return _RunPlaceholder(len(labels) - 1, kwargs.get("label", ""))

    try:
        with intercepting_runs(interceptor):
            fn(scale=scale)
    except _PlanCaptured:
        pass
    return labels


def _execute_point(name: str, scale: float, index: int) -> Any:
    """Worker entry: run only sweep point *index* of experiment *name*."""
    fn = _experiment_registry()[name]
    state = {"calls": -1}

    def interceptor(factory: Any, workload: Any, **kwargs: Any) -> Any:
        state["calls"] += 1
        if state["calls"] == index:
            raise _PointComplete(
                execute_join_experiment(factory, workload, **kwargs)
            )
        return _RunPlaceholder(state["calls"], kwargs.get("label", ""))

    try:
        with intercepting_runs(interceptor):
            fn(scale=scale)
    except _PointComplete as done:
        return done.run
    except _PlanCaptured:
        pass
    raise PerfError(
        f"experiment {name!r} never executed sweep point {index} "
        f"(only {state['calls'] + 1} runs at scale {scale})"
    )


def run_chaos_point(name: str, policy: str, seed: Optional[int]) -> Any:
    """Worker entry for chaos scenarios (module-level for pickling)."""
    from repro.resilience.chaos import run_chaos

    return run_chaos(name, policy=policy, seed=seed)


class ParallelSweepRunner:
    """Fan a figure/ablation sweep out over *jobs* worker processes.

    ``jobs=1`` executes the experiment function directly (no pool, no
    interception) — the serial path, plus the ``jobs`` manifest stamp.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise PerfError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    # -- figures / ablations -------------------------------------------

    def run_experiment(self, name: str, scale: float = 1.0) -> Any:
        """Run one experiment preset; returns its ``FigureResult``."""
        registry = _experiment_registry()
        if name not in registry:
            raise PerfError(f"unknown experiment {name!r}")
        fn = registry[name]
        if self.jobs == 1:
            return self._stamp(fn(scale=scale))
        labels = _plan_sweep(fn, scale)
        if not labels:
            return self._stamp(fn(scale=scale))
        results = self._execute_points(name, scale, len(labels))
        return self._stamp(self._merge(fn, scale, labels, results))

    def _execute_points(
        self, name: str, scale: float, count: int
    ) -> Dict[int, Any]:
        results: Dict[int, Any] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, count)) as pool:
            futures = {
                pool.submit(_execute_point, name, scale, index): index
                for index in range(count)
            }
            wait(futures, return_when=FIRST_EXCEPTION)
            for future, index in futures.items():
                results[index] = future.result()  # re-raises worker errors
        return results

    def _merge(
        self,
        fn: Callable[..., Any],
        scale: float,
        labels: List[str],
        results: Dict[int, Any],
    ) -> Any:
        """Re-drive *fn*, substituting worker results call-by-call."""
        state = {"calls": -1}

        def interceptor(factory: Any, workload: Any, **kwargs: Any) -> Any:
            state["calls"] += 1
            index = state["calls"]
            if index >= len(labels) or kwargs.get("label", "") != labels[index]:
                raise PerfError(
                    f"sweep drifted between planning and merge at call "
                    f"{index} (label {kwargs.get('label', '')!r}); the "
                    "experiment function is not deterministic"
                )
            return results[index]

        with intercepting_runs(interceptor):
            return fn(scale=scale)

    def _stamp(self, figure: Any) -> Any:
        for run in figure.runs:
            run.manifest["jobs"] = self.jobs
        return figure

    # -- chaos scenarios -----------------------------------------------

    def run_chaos_scenarios(
        self,
        names: List[str],
        policy: str,
        seed: Optional[int] = None,
    ) -> List[Any]:
        """Run chaos presets (one worker each); order follows *names*."""
        if self.jobs == 1 or len(names) <= 1:
            runs = [run_chaos_point(name, policy, seed) for name in names]
        else:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(names))
            ) as pool:
                futures = [
                    pool.submit(run_chaos_point, name, policy, seed)
                    for name in names
                ]
                runs = [future.result() for future in futures]
        for run in runs:
            run.manifest["jobs"] = self.jobs
        return runs

    def __repr__(self) -> str:
        return f"ParallelSweepRunner(jobs={self.jobs})"
