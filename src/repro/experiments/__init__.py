"""The experiment harness: one preset per paper figure.

:mod:`~repro.experiments.harness` runs a join operator over a generated
workload inside one simulation, sampling the paper's two metrics —
state size and cumulative output — over virtual time.
:mod:`~repro.experiments.figures` parameterises one experiment per
figure of the paper's Section 4 (plus the ablations from DESIGN.md);
the benchmarks under ``benchmarks/`` are thin wrappers that run these
presets and print their tables.
"""

from repro.experiments.harness import (
    ExperimentRun,
    pjoin_factory,
    run_join_experiment,
    shj_factory,
    xjoin_factory,
)
from repro.experiments import ablations, figures

__all__ = [
    "ExperimentRun",
    "run_join_experiment",
    "pjoin_factory",
    "xjoin_factory",
    "shj_factory",
    "figures",
    "ablations",
]
