"""JSON export of experiment results.

Benchmarks archive their measurements so figures can be re-rendered,
diffed across code changes, or plotted elsewhere without re-running the
simulation.  The format is intentionally plain: a dict per run with the
summary numbers and every sampled series.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.experiments.figures import FigureResult
from repro.experiments.harness import ExperimentRun
from repro.metrics.series import TimeSeries

# Version 2 added the per-run "manifest" block (config, seed, counters).
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def series_to_dict(series: TimeSeries) -> Dict[str, Any]:
    return {
        "name": series.name,
        "times": list(series.times),
        "values": list(series.values),
    }


def series_from_dict(data: Dict[str, Any]) -> TimeSeries:
    series = TimeSeries(name=data.get("name", ""))
    for t, v in zip(data["times"], data["values"]):
        series.append(t, v)
    return series


def run_to_dict(run: ExperimentRun) -> Dict[str, Any]:
    return {
        "label": run.label,
        "summary": run.summary(),
        "series": {name: series_to_dict(s) for name, s in run.series.items()},
        "manifest": run.manifest,
    }


def figure_to_dict(result: FigureResult) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "notes": result.notes,
        "checks": [
            {"description": c.description, "passed": c.passed}
            for c in result.checks
        ],
        "runs": [run_to_dict(run) for run in result.runs],
    }


def save_figure_json(result: FigureResult, path: Path) -> None:
    """Write a figure's full measurement record to *path*."""
    path.write_text(json.dumps(figure_to_dict(result), indent=1))


def load_figure_json(path: Path) -> Dict[str, Any]:
    """Load a record written by :func:`save_figure_json`.

    Returns the plain dict (runs are not re-hydrated into live
    :class:`ExperimentRun` objects — they reference operators that no
    longer exist); series can be re-hydrated with
    :func:`series_from_dict` for plotting or diffing.
    """
    data = json.loads(path.read_text())
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path} has format version {version!r}; "
            f"this build reads {SUPPORTED_VERSIONS}"
        )
    return data
