"""One preset per figure of the paper's experimental study (Section 4).

Each ``figure*`` function runs the experiment with the paper's
parameters (tuple inter-arrival 2 ms, many-to-many join, the figure's
punctuation inter-arrivals and purge thresholds), returns a
:class:`FigureResult` holding the runs, and attaches *shape checks* —
the qualitative claims the paper makes about that figure, evaluated
against the measured data.  ``pytest benchmarks/`` prints the tables;
``tests/experiments/`` asserts the checks at reduced scale.

Absolute numbers differ from the paper (its substrate was a Java engine
on a 2003 Pentium-IV; ours is a virtual-time cost model) but every
check below encodes the paper's qualitative conclusion for that figure.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple as PyTuple

from repro.core.config import PJoinConfig
from repro.experiments.harness import (
    ExperimentRun,
    governed,
    pjoin_factory,
    run_join_experiment,
    sharding,
    skewed,
    xjoin_factory,
)
from repro.memory.budget import GovernorSpec, format_budget
from repro.metrics.report import render_ascii_chart, render_table
from repro.workloads.generator import generate_workload


class Check:
    """One qualitative claim of the paper, evaluated against a run."""

    __slots__ = ("description", "passed")

    def __init__(self, description: str, passed: bool) -> None:
        self.description = description
        self.passed = bool(passed)

    def __repr__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.description}"


class FigureResult:
    """All runs and checks of one reproduced figure."""

    def __init__(
        self,
        figure_id: str,
        title: str,
        runs: List[ExperimentRun],
        checks: List[Check],
        notes: str = "",
    ) -> None:
        self.figure_id = figure_id
        self.title = title
        self.runs = runs
        self.checks = checks
        self.notes = notes

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def run(self, label: str) -> ExperimentRun:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(f"{self.figure_id} has no run labelled {label!r}")

    def summary_table(self) -> str:
        headers = [
            "variant",
            "results",
            "state(mean)",
            "state(max)",
            "rate 1st half",
            "rate 2nd half",
            "punct out",
            "finished (ms)",
        ]
        rows = []
        for run in self.runs:
            s = run.summary()
            rows.append(
                [
                    s["label"],
                    s["results"],
                    round(s["mean_state"], 1),
                    s["max_state"],
                    round(s["rate_first_half"], 2),
                    round(s["rate_second_half"], 2),
                    s["punctuations_out"],
                    round(s["duration_ms"], 1),
                ]
            )
        return render_table(headers, rows)

    def render(self, chart_series: str = "state_total") -> str:
        """Full text report: table, chart of one series, check list."""
        parts = [f"{self.figure_id}: {self.title}"]
        if self.notes:
            parts.append(self.notes)
        parts.append(self.summary_table())
        series = {run.label: run.series[chart_series] for run in self.runs}
        parts.append(
            render_ascii_chart(series, title=f"{chart_series} over virtual time")
        )
        parts.append(
            "Shape checks:\n" + "\n".join(f"  {check!r}" for check in self.checks)
        )
        return "\n\n".join(parts)

    def __repr__(self) -> str:
        status = "all-pass" if self.all_passed else "HAS FAILURES"
        return f"FigureResult({self.figure_id}, runs={len(self.runs)}, {status})"


def _scaled(n: int, scale: float) -> int:
    return max(500, int(n * scale))


def _quarter_rates(run: ExperimentRun, n: int = 4) -> List[float]:
    out = run.output_series
    if len(out) < 2:
        return [0.0] * n
    t_last = out.times[-1]
    if t_last <= 0:
        return [0.0] * n
    rates = []
    for i in range(n):
        a, b = t_last * i / n, t_last * (i + 1) / n
        rates.append((out.value_at(b) - out.value_at(a)) / (b - a))
    return rates


# ---------------------------------------------------------------------------
# Section 4.1 — PJoin vs XJoin
# ---------------------------------------------------------------------------


def figure5(scale: float = 1.0, seed: int = 5) -> FigureResult:
    """Fig. 5 — PJoin-1 vs XJoin, join-state size over time (40 t/p).

    XJoin's state needs a few thousand tuples to dwarf PJoin's plateau,
    so the scale is floored at 0.25.
    """
    scale = max(scale, 0.25)
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=seed,
    )
    pjoin = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=1)), workload, label="PJoin-1"
    )
    xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    checks = [
        Check(
            "PJoin's state is insignificant next to XJoin's (mean < 20%)",
            pjoin.mean_state() < 0.2 * xjoin.mean_state(),
        ),
        Check(
            "XJoin's state keeps growing (final well above PJoin's mean)",
            xjoin.state_series.last() > 3 * max(pjoin.mean_state(), 1.0),
        ),
        Check(
            "PJoin's state stays bounded (max < 4x its mean)",
            pjoin.max_state() < 4 * max(pjoin.mean_state(), 1.0),
        ),
    ]
    return FigureResult(
        "Figure 5",
        "PJoin vs XJoin, memory overhead (punct inter-arrival 40 t/p)",
        [pjoin, xjoin],
        checks,
    )


def figure6(scale: float = 1.0, seed: int = 6) -> FigureResult:
    """Fig. 6 — PJoin state size for punctuation inter-arrival 10/20/30."""
    runs = []
    for spacing in (10, 20, 30):
        workload = generate_workload(
            n_tuples_per_stream=_scaled(10_000, scale),
            punct_spacing_a=spacing,
            punct_spacing_b=spacing,
            seed=seed,
        )
        runs.append(
            run_join_experiment(
                pjoin_factory(PJoinConfig(purge_threshold=1)),
                workload,
                label=f"PJoin (punct {spacing} t/p)",
            )
        )
    means = [run.mean_state() for run in runs]
    checks = [
        Check(
            "average state grows with the punctuation inter-arrival "
            f"(means {means[0]:.0f} < {means[1]:.0f} < {means[2]:.0f})",
            means[0] < means[1] < means[2],
        )
    ]
    return FigureResult(
        "Figure 6",
        "PJoin state size vs punctuation inter-arrival (10/20/30 t/p)",
        runs,
        checks,
    )


def figure7(scale: float = 1.0, seed: int = 5) -> FigureResult:
    """Fig. 7 — tuple output rate over time, PJoin vs XJoin (40 t/p).

    This figure is about a *crossover*: XJoin's probing cost must grow
    past PJoin's purge overhead within the run, which takes a minimum
    stream length — so the scale is floored at 0.7.
    """
    scale = max(scale, 0.7)
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=seed,
    )
    pjoin = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=1)), workload, label="PJoin-1"
    )
    xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    p_rates = _quarter_rates(pjoin)
    x_rates = _quarter_rates(xjoin)
    checks = [
        Check(
            "XJoin's output rate drops over time "
            f"(last quarter {x_rates[-1]:.1f} < 80% of its peak {max(x_rates):.1f})",
            x_rates[-1] < 0.8 * max(x_rates),
        ),
        Check(
            "PJoin maintains an almost steady output rate "
            f"(last quarter {p_rates[-1]:.1f} >= 80% of its peak {max(p_rates):.1f})",
            p_rates[-1] >= 0.8 * max(p_rates),
        ),
        Check(
            "PJoin delivers the full output no later than XJoin "
            f"({pjoin.duration_ms:.0f} <= {xjoin.duration_ms:.0f} ms)",
            pjoin.duration_ms <= xjoin.duration_ms,
        ),
    ]
    return FigureResult(
        "Figure 7",
        "Tuple output rate, PJoin vs XJoin (punct inter-arrival 40 t/p)",
        [pjoin, xjoin],
        checks,
    )


# ---------------------------------------------------------------------------
# Section 4.2 — purge strategies
# ---------------------------------------------------------------------------


def figure8(scale: float = 1.0, seed: int = 9) -> FigureResult:
    """Fig. 8 — eager vs lazy purge, memory overhead (10 t/p)."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=seed,
    )
    eager = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=1)), workload, label="PJoin-1"
    )
    lazy = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=10)), workload, label="PJoin-10"
    )
    checks = [
        Check(
            "eager purge minimises the join state "
            f"(mean {eager.mean_state():.0f} < lazy's {lazy.mean_state():.0f})",
            eager.mean_state() < lazy.mean_state(),
        ),
        Check(
            "lazy purge still keeps the state bounded (max < 10x eager's max)",
            lazy.max_state() < 10 * max(eager.max_state(), 1.0),
        ),
    ]
    return FigureResult(
        "Figure 8",
        "Eager vs lazy purge, memory overhead (punct inter-arrival 10 t/p)",
        [eager, lazy],
        checks,
    )


def figure9(scale: float = 1.0, seed: int = 9) -> FigureResult:
    """Fig. 9 — output over time for purge thresholds 1/100/400/800.

    Distinguishing thresholds 400 and 800 needs enough punctuations for
    both to actually fire, so the scale is floored at 0.35.
    """
    scale = max(scale, 0.35)
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=seed,
    )
    thresholds = (1, 100, 400, 800)
    runs = [
        run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=n)),
            workload,
            label=f"PJoin-{n}",
        )
        for n in thresholds
    ]
    d = {n: run.duration_ms for n, run in zip(thresholds, runs)}
    checks = [
        Check(
            "raising the threshold first raises the output rate "
            f"(PJoin-100 finishes in {d[100]:.0f} ms < PJoin-1's {d[1]:.0f} ms)",
            d[100] < d[1],
        ),
        Check(
            "beyond the optimum, probing cost wins: PJoin-400 is slower "
            f"than PJoin-100 ({d[400]:.0f} > {d[100]:.0f} ms)",
            d[400] > d[100],
        ),
        Check(
            f"and PJoin-800 is slower still ({d[800]:.0f} > {d[400]:.0f} ms)",
            d[800] > d[400],
        ),
    ]
    return FigureResult(
        "Figure 9",
        "Eager vs lazy purge, tuple output (punct inter-arrival 10 t/p)",
        runs,
        checks,
    )


# ---------------------------------------------------------------------------
# Section 4.3 — asymmetric punctuation inter-arrival
# ---------------------------------------------------------------------------


def _asymmetric_runs(
    scale: float, seed: int, spacings_b: PyTuple[int, ...]
) -> List[ExperimentRun]:
    runs = []
    for spacing_b in spacings_b:
        workload = generate_workload(
            n_tuples_per_stream=_scaled(8_000, scale),
            punct_spacing_a=10,
            punct_spacing_b=spacing_b,
            seed=seed,
        )
        runs.append(
            run_join_experiment(
                pjoin_factory(PJoinConfig(purge_threshold=1)),
                workload,
                label=f"A=10, B={spacing_b}",
            )
        )
    return runs


def figure10(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """Fig. 10 — asymmetric punctuation rates, state requirement."""
    runs = _asymmetric_runs(scale, seed, (10, 20, 40))
    means = [run.mean_state() for run in runs]
    state_a_40 = runs[2].series["state_a"].time_weighted_mean()
    state_b_40 = runs[2].series["state_b"].time_weighted_mean()
    checks = [
        Check(
            "the larger the rate difference, the larger the state "
            f"({means[0]:.0f} < {means[1]:.0f} < {means[2]:.0f})",
            means[0] < means[1] < means[2],
        ),
        Check(
            "the B state is insignificant compared to the A state "
            f"(B mean {state_b_40:.0f} < 10% of A mean {state_a_40:.0f})",
            state_b_40 < 0.1 * max(state_a_40, 1.0),
        ),
        Check(
            "B tuples are dropped on the fly by A punctuations",
            getattr(runs[2].join, "tuples_dropped_on_fly", 0) > 0,
        ),
    ]
    return FigureResult(
        "Figure 10",
        "Asymmetric punctuation inter-arrival, state (A=10 t/p fixed)",
        runs,
        checks,
    )


def figure11(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """Fig. 11 — asymmetric punctuation rates, output rate."""
    runs = _asymmetric_runs(scale, seed, (10, 20, 40))
    durations = [run.duration_ms for run in runs]
    checks = [
        Check(
            "the slower the punctuations, the greater the output rate — "
            "fewer purges, less overhead (finish times "
            f"{durations[0]:.0f} > {durations[1]:.0f} > {durations[2]:.0f} ms)",
            durations[0] > durations[1] > durations[2],
        )
    ]
    return FigureResult(
        "Figure 11",
        "Asymmetric punctuation inter-arrival, output (A=10 t/p fixed)",
        runs,
        checks,
    )


def figure12(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """Fig. 12 — PJoin-1 vs tuned lazy PJoin vs XJoin, output (A=10, B=20)."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(8_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=20,
        seed=seed,
    )
    eager = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=1)), workload, label="PJoin-1"
    )
    lazy = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=20)), workload, label="PJoin-20"
    )
    xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    checks = [
        Check(
            "PJoin-1's output lags behind XJoin's (cost of purge) — "
            f"finish {eager.duration_ms:.0f} > {xjoin.duration_ms:.0f} ms",
            eager.duration_ms > xjoin.duration_ms,
        ),
        Check(
            "lazy purge with a suitable threshold beats XJoin — "
            f"finish {lazy.duration_ms:.0f} < {xjoin.duration_ms:.0f} ms",
            lazy.duration_ms < xjoin.duration_ms,
        ),
    ]
    return FigureResult(
        "Figure 12",
        "PJoin vs XJoin output under asymmetric punctuations (A=10, B=20)",
        [eager, lazy, xjoin],
        checks,
    )


def figure13(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """Fig. 13 — state requirements for the Figure 12 configuration."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(8_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=20,
        seed=seed,
    )
    eager = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=1)), workload, label="PJoin-1"
    )
    lazy = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=20)), workload, label="PJoin-20"
    )
    xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    checks = [
        Check(
            "every PJoin variant needs far less state than XJoin "
            f"({eager.mean_state():.0f} and {lazy.mean_state():.0f} "
            f"vs {xjoin.mean_state():.0f})",
            eager.mean_state() < 0.5 * xjoin.mean_state()
            and lazy.mean_state() < 0.5 * xjoin.mean_state(),
        ),
        Check(
            "lazy purge costs only an insignificant state increase "
            "(mean within 2x of eager's)",
            lazy.mean_state() < 2.0 * max(eager.mean_state(), 1.0),
        ),
    ]
    return FigureResult(
        "Figure 13",
        "State requirements under asymmetric punctuations (A=10, B=20)",
        [eager, lazy, xjoin],
        checks,
    )


# ---------------------------------------------------------------------------
# Section 4.4 — punctuation propagation
# ---------------------------------------------------------------------------


def figure14(scale: float = 1.0, seed: int = 21) -> FigureResult:
    """Fig. 14 — punctuations output over time (ideal aligned case)."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=40,
        punct_spacing_b=40,
        aligned_punctuations=True,
        seed=seed,
    )
    config = PJoinConfig(
        purge_threshold=1,
        index_building="eager",
        propagation_mode="push_pairs",
        propagate_pairs_threshold=1,
    )
    run = run_join_experiment(pjoin_factory(config), workload, label="PJoin-prop")
    total_in = len(workload.punctuations(0)) + len(workload.punctuations(1))
    series = run.punctuation_output_series
    window_counts: List[float] = []
    if len(series) >= 2:
        t_last = series.times[-1]
        for i in range(5):
            a, b = t_last * i / 5, t_last * (i + 1) / 5
            window_counts.append(series.value_at(b) - series.value_at(a))
    mean_window = sum(window_counts) / len(window_counts) if window_counts else 0.0
    steady = bool(window_counts) and all(
        abs(c - mean_window) <= 0.35 * max(mean_window, 1.0) for c in window_counts
    )
    checks = [
        Check(
            "every received punctuation is eventually propagated "
            f"({run.punctuations_out} of {total_in})",
            run.punctuations_out == total_in,
        ),
        Check(
            "the propagation rate is steady in the ideal case "
            f"(per-fifth counts {[round(c) for c in window_counts]})",
            steady,
        ),
    ]
    return FigureResult(
        "Figure 14",
        "Punctuation propagation over time (aligned 40 t/p, paired trigger)",
        [run],
        checks,
    )


# ---------------------------------------------------------------------------
# Beyond the paper — memory-budget sweep (governor subsystem)
# ---------------------------------------------------------------------------


def fig_memory_sweep(
    scale: float = 1.0, seed: int = 5, eviction_policy: str = "lru"
) -> FigureResult:
    """Memory sweep — PJoin's advantage widens as the state budget shrinks.

    Beyond the paper's study: both joins run under the memory governor
    at a shrinking warm-state budget (unlimited, n/8, n/32 tuples).
    PJoin's punctuation purges keep its warm state small, so it pays few
    spill/fault round-trips; XJoin's ever-growing state thrashes against
    the budget, so shrinking it widens PJoin's finish-time advantage —
    the paper's memory argument made quantitative.  Every budget yields
    the same join result; only timing and governor counters move.
    """
    scale = max(scale, 0.25)
    n = _scaled(8_000, scale)
    workload = generate_workload(
        n_tuples_per_stream=n,
        punct_spacing_a=40,
        punct_spacing_b=40,
        seed=seed,
    )
    budgets = [math.inf, float(max(n // 8, 64)), float(max(n // 32, 32))]
    runs: List[ExperimentRun] = []
    for budget in budgets:
        spec = GovernorSpec(budget_tuples=budget, policy=eviction_policy)
        tag = format_budget(budget)
        with governed(spec):
            runs.append(
                run_join_experiment(
                    pjoin_factory(PJoinConfig(purge_threshold=1)),
                    workload,
                    label=f"PJoin-1 b={tag}",
                )
            )
            runs.append(
                run_join_experiment(
                    xjoin_factory(), workload, label=f"XJoin b={tag}"
                )
            )
    # All run calls precede all result reads (the sweep-runner contract).
    pjoins, xjoins = runs[0::2], runs[1::2]

    def spills(run: ExperimentRun) -> int:
        return run.join.counters().get("governor.spills", 0)

    ratios = [
        x.duration_ms / max(p.duration_ms, 1e-9)
        for p, x in zip(pjoins, xjoins)
    ]
    checks = [
        Check(
            "every budget produces the same join output "
            f"(PJoin {pjoins[0].results}, XJoin {xjoins[0].results} results)",
            len({run.results for run in pjoins}) == 1
            and len({run.results for run in xjoins}) == 1,
        ),
        Check(
            "the unlimited budget never spills (governor.spills == 0)",
            spills(pjoins[0]) == 0 and spills(xjoins[0]) == 0,
        ),
        Check(
            "the tight budget forces XJoin to spill "
            f"({spills(xjoins[-1])} spill runs)",
            spills(xjoins[-1]) > 0,
        ),
        Check(
            "shrinking the budget widens PJoin's finish-time advantage "
            f"(XJoin/PJoin ratios {[round(r, 2) for r in ratios]})",
            ratios[-1] > ratios[0],
        ),
    ]
    return FigureResult(
        "Memory sweep",
        f"PJoin vs XJoin under shrinking state budgets ({eviction_policy})",
        runs,
        checks,
        notes="Not a figure of the paper: exercises the memory governor "
              "(spill/fault-back) added by the budgeted-state subsystem.",
    )


# ---------------------------------------------------------------------------
# Beyond the paper: the cost-based adaptive planner (repro.planner)
# ---------------------------------------------------------------------------


def fig_nary_adaptive(scale: float = 1.0, seed: int = 11) -> FigureResult:
    """Adaptive probe-order planning on a rate-drifting 3-way join.

    Beyond the paper's study: the ``nary_drift`` workload inverts its
    arrival rates and punctuation cadences halfway through the run, so
    the stream that is sparse (cheap to probe, likely to miss and end
    the pipeline early) in the first half is dense in the second — any
    static probe order is wrong for half the run.  The adaptive planner
    re-scores the orders at punctuation-aligned purge boundaries from
    live per-side statistics and swaps plans by exact state handoff, so
    it tracks the drift.  Probe work is charged at a 10x
    ``probe_per_candidate`` so order costs dominate fixed per-tuple
    overhead (a probe-bound operator); every variant must produce the
    identical result multiset — the planner may only move time.
    """
    from repro.experiments.harness import run_nary_experiment
    from repro.planner import PlannerSpec, get_preset
    from repro.sim.costs import CostModel
    from repro.workloads.nary import generate_nary_workload

    scale = max(scale, 0.2)
    workload = generate_nary_workload(
        get_preset("nary_drift", scale=scale).with_overrides(seed=seed)
    )
    config = PJoinConfig(purge_threshold=8)
    cost_model = CostModel().with_overrides(probe_per_candidate=0.04)
    variants = [
        ("static stream-order", PlannerSpec(mode="static")),
        (
            "static adverse",
            PlannerSpec(mode="static", initial_order=(0, 2, 1)),
        ),
        ("adaptive", PlannerSpec(mode="adaptive", reopt_interval=2)),
    ]
    runs = [
        run_nary_experiment(
            workload, config=config, planner=spec,
            cost_model=cost_model, label=label,
        )
        for label, spec in variants
    ]
    default, adverse, adaptive = runs
    planner_counters = {
        key: value
        for key, value in adaptive.join.counters().items()
        if key.startswith("planner.")
    }
    switches = planner_counters.get("planner.switches", 0)
    checks = [
        Check(
            "every probe order produces the identical join output "
            f"({default.results} results)",
            len({run.results for run in runs}) == 1,
        ),
        Check(
            "the adaptive planner beats the adverse static order "
            f"(adaptive {adaptive.duration_ms:.0f} ms vs "
            f"adverse {adverse.duration_ms:.0f} ms)",
            adaptive.duration_ms < adverse.duration_ms,
        ),
        Check(
            f"the planner re-plans and switches at least once "
            f"(switches={switches:.0f}, "
            f"reopts={planner_counters.get('planner.reopt.count', 0):.0f})",
            switches >= 1,
        ),
        Check(
            "the adaptive run stays close to the good static order "
            f"(adaptive {adaptive.duration_ms:.0f} ms vs "
            f"stream-order {default.duration_ms:.0f} ms)",
            adaptive.duration_ms <= default.duration_ms * 1.10,
        ),
    ]
    return FigureResult(
        "N-ary adaptive",
        "Cost-based adaptive probe ordering under rate drift",
        runs,
        checks,
        notes="Not a figure of the paper: exercises the repro.planner "
              "subsystem (statistics, cost model, punctuation-aligned "
              "re-optimization) on the 3-way join of Section 6.",
    )


# ---------------------------------------------------------------------------
# Beyond the paper: skew-adaptive partitioning (repro.skew)
# ---------------------------------------------------------------------------


def fig_skew_sweep(scale: float = 1.0, seed: int = 17) -> FigureResult:
    """Throughput and peak state vs Zipf exponent, static vs adaptive.

    Beyond the paper's study: the generic workload draws its join keys
    Zipf-distributed over the open window (uniform, then exponents
    0.8/1.2/1.6), and five execution variants run each regime — plain
    PJoin on static buckets, PJoin with the skew layer's adaptive
    split/coalesce buckets, XJoin, the 4-shard PJoin stack on hash
    routing, and the 4-shard stack with hot-key replication.  Probe
    cost is charged per scanned bucket entry, so piling the hot keys
    into few buckets (static) costs time that splitting them back out
    (adaptive) recovers; restructures happen only at the
    punctuation-aligned purge boundaries, so every variant must produce
    the identical result multiset — skew handling may only move time.
    """
    from repro.skew.manager import SkewSpec

    scale = max(scale, 0.2)
    exponents: List[object] = [None, 0.8, 1.2, 1.6]
    config = PJoinConfig(n_partitions=8, purge_threshold=1)
    adaptive_spec = SkewSpec()
    hotkey_spec = SkewSpec(hot_keys=True, adaptive=False)
    runs: List[ExperimentRun] = []
    for exponent in exponents:
        workload = generate_workload(
            n_tuples_per_stream=_scaled(6_000, scale),
            punct_spacing_a=40,
            punct_spacing_b=40,
            active_values=48,
            seed=seed,
            zipf_exponent=exponent,
        )
        tag = "uniform" if exponent is None else f"z={exponent}"
        runs.append(
            run_join_experiment(
                pjoin_factory(config), workload, label=f"PJoin static {tag}"
            )
        )
        with skewed(adaptive_spec):
            runs.append(
                run_join_experiment(
                    pjoin_factory(config), workload,
                    label=f"PJoin adaptive {tag}",
                )
            )
        runs.append(
            run_join_experiment(xjoin_factory(), workload, label=f"XJoin {tag}")
        )
        with sharding(4):
            runs.append(
                run_join_experiment(
                    pjoin_factory(config), workload,
                    label=f"sharded static {tag}",
                )
            )
            with skewed(hotkey_spec):
                runs.append(
                    run_join_experiment(
                        pjoin_factory(config), workload,
                        label=f"sharded hot-key {tag}",
                    )
                )
    # All run calls precede all result reads (the sweep-runner contract).
    per_exponent = [runs[i : i + 5] for i in range(0, len(runs), 5)]
    statics = [group[0] for group in per_exponent]
    adaptives = [group[1] for group in per_exponent]

    def splits(run: ExperimentRun) -> int:
        return int(run.join.counters().get("skew.splits", 0))

    gains = [
        s.duration_ms / max(a.duration_ms, 1e-9)
        for s, a in zip(statics, adaptives)
    ]
    counts_equal = all(
        len({run.results for run in group}) == 1 for group in per_exponent
    )
    checks = [
        Check(
            "every variant produces the identical join output at every "
            f"exponent ({[group[0].results for group in per_exponent]})",
            counts_equal,
        ),
        Check(
            "adaptive partitioning beats the static layout at Zipf "
            f"exponent >= 1.2 (static/adaptive duration ratios "
            f"{[round(g, 3) for g in gains]})",
            gains[2] > 1.0 and gains[3] > 1.0,
        ),
        Check(
            "the adaptive layout actually splits hot buckets under skew "
            f"(splits {[splits(a) for a in adaptives]})",
            splits(adaptives[2]) > 0 and splits(adaptives[3]) > 0,
        ),
        Check(
            "uniform keys trigger far fewer splits than heavy skew "
            f"(uniform {splits(adaptives[0])} vs z=1.6 "
            f"{splits(adaptives[3])})",
            splits(adaptives[0]) * 4 <= splits(adaptives[3]),
        ),
    ]
    return FigureResult(
        "Skew sweep",
        "Throughput and peak state vs Zipf exponent, static vs adaptive",
        runs,
        checks,
        notes="Not a figure of the paper: exercises the repro.skew "
              "subsystem (frequency sketch, split/coalesce partitioner, "
              "hot-key sharding) on Zipf-keyed workloads.",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

FigureFn = Callable[..., FigureResult]

ALL_FIGURES: Dict[str, FigureFn] = {
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "fig_memory_sweep": fig_memory_sweep,
    "fig_nary_adaptive": fig_nary_adaptive,
    "fig_skew_sweep": fig_skew_sweep,
}


def run_all(scale: float = 1.0, jobs: int = 1) -> Dict[str, FigureResult]:
    """Run every figure preset (used by the EXPERIMENTS.md generator).

    ``jobs > 1`` fans each figure's sweep points out over worker
    processes via :class:`~repro.perf.parallel.ParallelSweepRunner`;
    results are byte-identical to a serial run (up to the ``jobs``
    manifest stamp).
    """
    if jobs > 1:
        from repro.perf.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(jobs)
        return {name: runner.run_experiment(name, scale) for name in ALL_FIGURES}
    return {name: fn(scale=scale) for name, fn in ALL_FIGURES.items()}
