"""Ablation experiments for PJoin's design choices (DESIGN.md A1–A5).

These go beyond the paper's figures and probe the alternatives its
Sections 3.4–3.5 discuss qualitatively: eager vs lazy index building,
the three propagation modes, the purge-threshold optimum, the
on-the-fly drop, and the memory-threshold/disk trade-off.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.experiments.figures import Check, FigureResult
from repro.experiments.harness import (
    ExperimentRun,
    pjoin_factory,
    run_join_experiment,
    xjoin_factory,
)
from repro.workloads.generator import generate_workload


def _scaled(n: int, scale: float) -> int:
    return max(500, int(n * scale))


def ablation_index_building(scale: float = 1.0, seed: int = 21) -> FigureResult:
    """A1 — eager vs lazy index building.

    Both configurations propagate on a count threshold; eager building
    pays a state scan per punctuation but keeps the index current, so
    punctuations are detected propagable at the earliest propagation
    run.  We compare punctuation output progress and total run time.
    """
    workload = generate_workload(
        n_tuples_per_stream=_scaled(8_000, scale),
        punct_spacing_a=20,
        punct_spacing_b=20,
        aligned_punctuations=True,
        seed=seed,
    )
    runs = []
    for mode in ("eager", "lazy"):
        config = PJoinConfig(
            purge_threshold=1,
            index_building=mode,
            propagation_mode="push_count",
            propagate_count_threshold=20,
        )
        runs.append(
            run_join_experiment(
                pjoin_factory(config), workload, label=f"index-{mode}"
            )
        )
    eager, lazy = runs
    checks = [
        Check(
            "both strategies propagate the same punctuations in the end "
            f"({eager.punctuations_out} vs {lazy.punctuations_out})",
            eager.punctuations_out == lazy.punctuations_out,
        ),
        Check(
            "lazy building batches the scans: fewer index-build runs "
            f"({lazy.join.sides[0].index.build_runs} vs "
            f"{eager.join.sides[0].index.build_runs})",
            lazy.join.sides[0].index.build_runs
            < eager.join.sides[0].index.build_runs,
        ),
        Check(
            "lazy building finishes no later than eager "
            f"({lazy.duration_ms:.0f} <= {eager.duration_ms:.0f} ms)",
            lazy.duration_ms <= eager.duration_ms,
        ),
    ]
    return FigureResult(
        "Ablation A1",
        "Eager vs lazy punctuation index building",
        runs,
        checks,
    )


def ablation_propagation_mode(scale: float = 1.0, seed: int = 23) -> FigureResult:
    """A2 — push(count) vs push(time) vs pull propagation cadence."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(8_000, scale),
        punct_spacing_a=20,
        punct_spacing_b=20,
        aligned_punctuations=True,
        seed=seed,
    )
    runs: List[ExperimentRun] = []
    count_cfg = PJoinConfig(
        purge_threshold=1,
        propagation_mode="push_count",
        propagate_count_threshold=25,
    )
    runs.append(
        run_join_experiment(pjoin_factory(count_cfg), workload, label="push-count")
    )
    time_cfg = PJoinConfig(
        purge_threshold=1,
        propagation_mode="push_time",
        propagate_time_threshold_ms=1_000.0,
    )
    runs.append(
        run_join_experiment(pjoin_factory(time_cfg), workload, label="push-time")
    )

    # Pull mode: a simulated downstream operator requests punctuations
    # every 2000 virtual ms.
    def pull_factory(plan, wl):
        config = PJoinConfig(purge_threshold=1, propagation_mode="pull")
        join = PJoin(
            plan.engine,
            plan.cost_model,
            wl.schemas[0],
            wl.schemas[1],
            wl.join_fields[0],
            wl.join_fields[1],
            config=config,
        )

        def request() -> None:
            if not join.finished:
                join.request_propagation(requester="downstream-groupby")
                plan.engine.schedule(2_000.0, request)

        plan.engine.schedule(2_000.0, request)
        return join

    runs.append(run_join_experiment(pull_factory, workload, label="pull-2000ms"))
    outs = [run.punctuations_out for run in runs]
    checks = [
        Check(
            f"every mode eventually propagates all punctuations {outs}",
            len(set(outs)) == 1 and outs[0] > 0,
        ),
        Check(
            "push-count reacts most often (most propagation runs): "
            f"{runs[0].join.propagation_runs} vs "
            f"{runs[1].join.propagation_runs} (time), "
            f"{runs[2].join.propagation_runs} (pull)",
            runs[0].join.propagation_runs >= runs[1].join.propagation_runs
            and runs[0].join.propagation_runs >= runs[2].join.propagation_runs,
        ),
    ]
    return FigureResult(
        "Ablation A2",
        "Propagation modes: push by count, push by time, pull",
        runs,
        checks,
    )


def ablation_purge_sweep(scale: float = 1.0, seed: int = 9) -> FigureResult:
    """A3 — fine-grained purge-threshold sweep around the optimum."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=seed,
    )
    thresholds = (1, 5, 20, 50, 100, 200, 400, 800)
    runs = [
        run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=n)),
            workload,
            label=f"PJoin-{n}",
        )
        for n in thresholds
    ]
    durations: Dict[int, float] = {
        n: run.duration_ms for n, run in zip(thresholds, runs)
    }
    best = min(durations, key=durations.get)
    checks = [
        Check(
            f"the optimum threshold is interior (best = {best}, "
            f"finish {durations[best]:.0f} ms)",
            best not in (thresholds[0], thresholds[-1]),
        ),
        Check(
            "memory grows monotonically with the threshold",
            all(
                runs[i].mean_state() <= runs[i + 1].mean_state() * 1.05
                for i in range(len(runs) - 1)
            ),
        ),
    ]
    return FigureResult(
        "Ablation A3",
        "Purge-threshold sweep (output-rate optimum location)",
        runs,
        checks,
    )


def ablation_on_the_fly_drop(scale: float = 1.0, seed: int = 13) -> FigureResult:
    """A4 — on-the-fly drop on/off under asymmetric punctuations."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(8_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=40,
        seed=seed,
    )
    # Lazy purge makes the contrast visible: without on-the-fly drop,
    # already-dead B tuples sit in the state until the next purge run.
    on = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=50, on_the_fly_drop=True)),
        workload,
        label="drop-on",
    )
    off = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=50, on_the_fly_drop=False)),
        workload,
        label="drop-off",
    )
    b_on = on.series["state_b"].time_weighted_mean()
    b_off = off.series["state_b"].time_weighted_mean()
    checks = [
        Check(
            "both settings produce the same number of results "
            f"({on.results} vs {off.results})",
            on.results == off.results,
        ),
        Check(
            "dropping keeps the B state much smaller "
            f"(mean {b_on:.0f} vs {b_off:.0f} without dropping)",
            b_on < 0.5 * max(b_off, 1.0),
        ),
        Check(
            f"drops actually happened ({on.join.tuples_dropped_on_fly})",
            on.join.tuples_dropped_on_fly > 0,
        ),
    ]
    return FigureResult(
        "Ablation A4",
        "On-the-fly drop on/off (A=10, B=40 t/p)",
        [on, off],
        checks,
    )


def ablation_memory_threshold(scale: float = 1.0, seed: int = 5) -> FigureResult:
    """A5 — disk traffic under a tight memory threshold, PJoin vs XJoin."""
    workload = generate_workload(
        n_tuples_per_stream=_scaled(6_000, scale),
        punct_spacing_a=20,
        punct_spacing_b=20,
        seed=seed,
    )
    threshold = max(200, _scaled(6_000, scale) // 6)
    pjoin = run_join_experiment(
        pjoin_factory(
            PJoinConfig(purge_threshold=1, memory_threshold=threshold)
        ),
        workload,
        label=f"PJoin-1 (mem {threshold})",
    )
    xjoin = run_join_experiment(
        xjoin_factory(memory_threshold=threshold),
        workload,
        label=f"XJoin (mem {threshold})",
    )
    checks = [
        Check(
            "both produce the same result count "
            f"({pjoin.results} vs {xjoin.results})",
            pjoin.results == xjoin.results,
        ),
        Check(
            "purging keeps PJoin under the threshold: far fewer tuples "
            f"spilled ({pjoin.join.disk.tuples_written} vs "
            f"{xjoin.join.disk.tuples_written})",
            pjoin.join.disk.tuples_written < 0.5 * max(
                xjoin.join.disk.tuples_written, 1
            ),
        ),
    ]
    return FigureResult(
        "Ablation A5",
        "Disk traffic under a tight memory threshold",
        [pjoin, xjoin],
        checks,
    )


def ablation_adaptive_purge(scale: float = 1.0, seed: int = 9) -> FigureResult:
    """A6 — adaptive purge-threshold control vs fixed thresholds.

    The paper's Section 6 names "designing a correlated purge
    threshold" as future work; :class:`~repro.core.adaptive.
    AdaptivePurgeController` closes that loop.  Starting from the two
    worst fixed settings (eager, and effectively-never), the controller
    should finish close to the tuned fixed threshold.
    """
    from repro.core.adaptive import AdaptivePurgeController

    workload = generate_workload(
        n_tuples_per_stream=_scaled(10_000, scale),
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=seed,
    )

    def adaptive_factory(start_threshold):
        def build(plan, wl):
            join = PJoin(
                plan.engine,
                plan.cost_model,
                wl.schemas[0],
                wl.schemas[1],
                wl.join_fields[0],
                wl.join_fields[1],
                config=PJoinConfig(purge_threshold=start_threshold),
            )
            AdaptivePurgeController(join).start()
            return join

        return build

    runs = [
        run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=1)), workload,
            label="fixed-1",
        ),
        run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=100)), workload,
            label="fixed-100 (tuned)",
        ),
        run_join_experiment(
            adaptive_factory(1), workload, label="adaptive (from 1)"
        ),
        run_join_experiment(
            adaptive_factory(1024), workload, label="adaptive (from 1024)"
        ),
    ]
    fixed_eager, fixed_tuned, adapt_lo, adapt_hi = runs
    checks = [
        Check(
            "adaptive control beats the worst fixed setting it started from "
            f"({adapt_lo.duration_ms:.0f} < {fixed_eager.duration_ms:.0f} ms)",
            adapt_lo.duration_ms < fixed_eager.duration_ms,
        ),
        Check(
            "and lands within 1.5x of the tuned fixed threshold "
            f"({adapt_lo.duration_ms:.0f} and {adapt_hi.duration_ms:.0f} "
            f"vs {fixed_tuned.duration_ms:.0f} ms)",
            adapt_lo.duration_ms < 1.5 * fixed_tuned.duration_ms
            and adapt_hi.duration_ms < 1.5 * fixed_tuned.duration_ms,
        ),
        Check(
            "all variants produce identical results",
            len({run.results for run in runs}) == 1,
        ),
    ]
    return FigureResult(
        "Ablation A6",
        "Adaptive purge-threshold control vs fixed thresholds",
        runs,
        checks,
    )


def ablation_reactive_disk_join(scale: float = 1.0, seed: int = 5) -> FigureResult:
    """A7 — the reactive disk join's benefit on bursty streams.

    XJoin's second stage exists to exploit lulls: with a tight memory
    threshold and a bursty arrival pattern, a join that probes its disk
    portions during silences delivers left-over results long before
    end-of-stream, while one that waits for the clean-up stage delays
    them all to the very end.
    """
    from repro.sim.costs import CostModel
    from repro.workloads.bursty import make_bursty

    smooth = generate_workload(
        n_tuples_per_stream=_scaled(4_000, scale),
        punct_spacing_a=None,
        punct_spacing_b=None,
        active_values=40,
        seed=seed,
    )
    workload = make_bursty(smooth, burst_ms=150.0, silence_ms=450.0, compress=0.25)
    threshold = max(100, _scaled(4_000, scale) // 8)
    # A light cost model: the join keeps up with each burst, so the
    # silences are genuine lulls in which the reactive stage can work.
    cost_model = CostModel().scaled(0.05)
    reactive = run_join_experiment(
        xjoin_factory(memory_threshold=threshold),
        workload,
        label="XJoin reactive",
        cost_model=cost_model,
    )
    # An activation threshold longer than any silence disables stage 2.
    def lazy_factory(plan, wl):
        from repro.operators.xjoin import XJoin

        return XJoin(
            plan.engine, plan.cost_model,
            wl.schemas[0], wl.schemas[1], "key", "key",
            memory_threshold=threshold, disk_join_idle_ms=10_000_000.0,
        )

    lazy = run_join_experiment(
        lazy_factory, workload, label="XJoin no stage 2", cost_model=cost_model
    )
    arrivals_end = workload.end_time
    reactive_early = reactive.output_series.value_at(arrivals_end)
    lazy_early = lazy.output_series.value_at(arrivals_end)
    checks = [
        Check(
            "lulls actually trigger the reactive stage "
            f"({reactive.join.stage2_runs} stage-2 runs)",
            reactive.join.stage2_runs > 0,
        ),
        Check(
            "both variants produce the same results "
            f"({reactive.results} vs {lazy.results})",
            reactive.results == lazy.results,
        ),
        Check(
            "the reactive join delivers more results before the streams end "
            f"({reactive_early:.0f} vs {lazy_early:.0f} of {reactive.results})",
            reactive_early > lazy_early,
        ),
    ]
    return FigureResult(
        "Ablation A7",
        "Reactive disk join during stream lulls (bursty arrivals)",
        [reactive, lazy],
        checks,
    )


ALL_ABLATIONS = {
    "ablation_index_building": ablation_index_building,
    "ablation_propagation_mode": ablation_propagation_mode,
    "ablation_purge_sweep": ablation_purge_sweep,
    "ablation_on_the_fly_drop": ablation_on_the_fly_drop,
    "ablation_memory_threshold": ablation_memory_threshold,
    "ablation_adaptive_purge": ablation_adaptive_purge,
    "ablation_reactive_disk_join": ablation_reactive_disk_join,
}


def run_all(scale: float = 1.0, jobs: int = 1) -> Dict[str, FigureResult]:
    """Run every ablation preset.

    ``jobs > 1`` fans each ablation's sweep points out over worker
    processes via :class:`~repro.perf.parallel.ParallelSweepRunner`;
    results are byte-identical to a serial run (up to the ``jobs``
    manifest stamp).
    """
    if jobs > 1:
        from repro.perf.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(jobs)
        return {
            name: runner.run_experiment(name, scale) for name in ALL_ABLATIONS
        }
    return {name: fn(scale=scale) for name, fn in ALL_ABLATIONS.items()}
