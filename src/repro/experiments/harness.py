"""Run one join over one workload and collect the paper's metrics.

The harness assembles the plan ``sources → join → sink``, samples state
sizes and cumulative output over virtual time, runs the simulation to
completion and returns an :class:`ExperimentRun` with everything the
figures need: time series, final counters and derived statistics.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, Optional

from repro.core.config import PJoinConfig
from repro.core.nary import NaryPJoin
from repro.core.pjoin import PJoin
from repro.core.registry import EventListenerRegistry
from repro.memory.budget import GovernorSpec
from repro.planner.spec import PlannerSpec
from repro.metrics.collector import MetricsCollector
from repro.metrics.series import TimeSeries
from repro.obs.manifest import build_manifest
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer
from repro.operators.base import Operator
from repro.operators.shj import SymmetricHashJoin
from repro.operators.sink import Sink
from repro.operators.xjoin import XJoin
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.generator import GeneratedWorkload

# A factory builds the join under test inside the experiment's plan.
JoinFactory = Callable[[QueryPlan, GeneratedWorkload], Operator]

# Tracer installed by the tracing() context manager; every
# run_join_experiment call inside the block attaches it to its engine.
_ACTIVE_TRACER: Optional[Tracer] = None

# Interceptor installed by intercepting_runs(); when set, every
# run_join_experiment call is routed through it instead of executing.
_RUN_INTERCEPTOR: Optional[Callable[..., Any]] = None

# Shard count installed by the sharding() context manager; when set, the
# stock join factories build the sharded stack instead of a plain join.
_ACTIVE_SHARDS: Optional[int] = None

# Governor spec installed by the governed() context manager; when set,
# the stock join factories attach a memory governor to every join they
# build (split across shards under an active sharding() block).
_ACTIVE_GOVERNOR: Optional[GovernorSpec] = None

# Profiler installed by the profiling() context manager; when set,
# every run is instrumented (hot-path callables shadowed) just before
# execution and restored right after, and the run carries the
# profiler's snapshot.  When unset, nothing is shadowed: the unprofiled
# path is byte-for-byte today's code.
_ACTIVE_PROFILER: Optional[Profiler] = None

# Source batch size installed by the batching() context manager; when
# set, every experiment's sources prefetch their schedules in vectors
# of this size (byte-identical results for every value).
_ACTIVE_BATCH_SIZE: Optional[int] = None

# Planner spec installed by the planning() context manager; when set,
# the n-ary stock factory builds its joins with this spec (the CLI's
# --planner flag).  When unset, joins are unplanned: stream order,
# byte-identical to pre-planner builds.
_ACTIVE_PLANNER: Optional[PlannerSpec] = None

# Skew spec installed by the skewed() context manager; when set, the
# stock PJoin factory attaches the skew layer (sketch + adaptive
# tables, and the hot-key router under sharding).  When unset, joins
# build stock tables on the byte-identical default path.
_ACTIVE_SKEW: Optional[Any] = None


@contextlib.contextmanager
def skewed(spec: Optional[Any]) -> Iterator[None]:
    """Attach the skew layer to every stock PJoin built in this block.

    The CLI's ``repro skew`` and the skew-sweep figure use this to
    re-run unmodified experiment presets skew-adaptively: *spec* is a
    :class:`~repro.skew.manager.SkewSpec`; :func:`pjoin_factory`
    consults it when building (plain or sharded).  ``skewed(None)``
    restores stock builds.
    """
    global _ACTIVE_SKEW
    previous = _ACTIVE_SKEW
    _ACTIVE_SKEW = spec
    try:
        yield
    finally:
        _ACTIVE_SKEW = previous


def active_skew() -> Optional[Any]:
    """The skew spec installed by :func:`skewed`, if any."""
    return _ACTIVE_SKEW


@contextlib.contextmanager
def planning(spec: Optional[PlannerSpec]) -> Iterator[None]:
    """Build every stock n-ary join in this block with a planner spec.

    The CLI's ``--planner {static,adaptive}`` uses this to re-run
    unmodified experiment presets under the cost-based planner:
    :func:`nary_pjoin_factory` consults the active spec when its own
    ``planner`` argument is ``None``.  ``planning(None)`` restores
    unplanned builds (the byte-identical default path).
    """
    global _ACTIVE_PLANNER
    previous = _ACTIVE_PLANNER
    _ACTIVE_PLANNER = spec
    try:
        yield
    finally:
        _ACTIVE_PLANNER = previous


def active_planner() -> Optional[PlannerSpec]:
    """The planner spec installed by :func:`planning`, if any."""
    return _ACTIVE_PLANNER


@contextlib.contextmanager
def batching(batch_size: Optional[int]) -> Iterator[None]:
    """Run every experiment in this block with micro-batched sources.

    The CLI's ``--batch-size`` uses this to re-run unmodified experiment
    presets with vectorized source admission:
    :func:`run_join_experiment` consults the active batch size when its
    own ``batch_size`` argument is ``None``.  Micro-batching amortizes
    per-item event scheduling; delivery times, order, counters and all
    figure output stay byte-identical for every batch size (the
    equivalence suite proves it).  ``batching(None)`` restores the
    default item-at-a-time admission.
    """
    global _ACTIVE_BATCH_SIZE
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    previous = _ACTIVE_BATCH_SIZE
    _ACTIVE_BATCH_SIZE = batch_size
    try:
        yield
    finally:
        _ACTIVE_BATCH_SIZE = previous


def active_batch_size() -> Optional[int]:
    """The source batch size installed by :func:`batching`, if any."""
    return _ACTIVE_BATCH_SIZE


@contextlib.contextmanager
def governed(spec: Optional[GovernorSpec]) -> Iterator[None]:
    """Attach a memory governor to every stock-factory join built here.

    The CLI's ``--memory-budget``/``--eviction-policy`` use this to
    re-run unmodified experiment presets under a state budget.  Under an
    active :func:`sharding` block the spec is split so the per-shard
    budgets sum to the global one.  ``governed(None)`` restores
    ungoverned builds.
    """
    global _ACTIVE_GOVERNOR
    previous = _ACTIVE_GOVERNOR
    _ACTIVE_GOVERNOR = spec
    try:
        yield
    finally:
        _ACTIVE_GOVERNOR = previous


def active_governor() -> Optional[GovernorSpec]:
    """The governor spec installed by :func:`governed`, if any."""
    return _ACTIVE_GOVERNOR


@contextlib.contextmanager
def sharding(n_shards: Optional[int]) -> Iterator[None]:
    """Build every stock-factory join as a K-shard stack in this block.

    The CLI's ``--shards K`` uses this to re-run unmodified experiment
    presets sharded: :func:`pjoin_factory`, :func:`xjoin_factory` and
    :func:`shj_factory` consult the active shard count when they build.
    ``sharding(1)`` still builds the sharded stack (router, one shard,
    merger) — it replays the unsharded execution byte-for-byte, which is
    the subsystem's equivalence anchor.  ``sharding(None)`` restores the
    plain operators.
    """
    global _ACTIVE_SHARDS
    if n_shards is not None and n_shards < 1:
        raise ValueError(f"need at least one shard, got {n_shards}")
    previous = _ACTIVE_SHARDS
    _ACTIVE_SHARDS = n_shards
    try:
        yield
    finally:
        _ACTIVE_SHARDS = previous


def active_shards() -> Optional[int]:
    """The shard count installed by :func:`sharding`, if any."""
    return _ACTIVE_SHARDS


@contextlib.contextmanager
def profiling(profiler: Optional[Profiler] = None) -> Iterator[Profiler]:
    """Profile every experiment run inside the ``with`` block.

    The CLI's ``repro profile`` uses this to measure unmodified
    experiment presets: :func:`execute_join_experiment` instruments the
    built plan with the active profiler before running it and restores
    the instrumentation afterwards, so shared objects (cost models,
    tracers) never leak timing shadows into later runs.  Yields the
    profiler so callers can read its snapshot and histograms.
    """
    global _ACTIVE_PROFILER
    if profiler is None:
        profiler = Profiler()
    previous = _ACTIVE_PROFILER
    _ACTIVE_PROFILER = profiler
    try:
        yield profiler
    finally:
        _ACTIVE_PROFILER = previous


def active_profiler() -> Optional[Profiler]:
    """The profiler installed by :func:`profiling`, if any."""
    return _ACTIVE_PROFILER


@contextlib.contextmanager
def intercepting_runs(interceptor: Callable[..., Any]) -> Iterator[None]:
    """Route every ``run_join_experiment`` call to *interceptor*.

    The parallel sweep runner (:mod:`repro.perf.parallel`) uses this to
    re-drive an unmodified experiment function while substituting each
    of its runs: the interceptor receives exactly the arguments of
    :func:`run_join_experiment` and its return value is returned to the
    experiment function.  Call :func:`execute_join_experiment` from
    inside an interceptor to really execute a run.
    """
    global _RUN_INTERCEPTOR
    previous = _RUN_INTERCEPTOR
    _RUN_INTERCEPTOR = interceptor
    try:
        yield
    finally:
        _RUN_INTERCEPTOR = previous


@contextlib.contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Trace every experiment run inside the ``with`` block.

    The CLI's ``repro trace fig08`` uses this to instrument experiment
    presets without threading a tracer through every preset function:
    ``run_join_experiment`` consults the active tracer when its own
    ``tracer`` argument is ``None``.  Yields the tracer so callers can
    export its events afterwards.
    """
    global _ACTIVE_TRACER
    if tracer is None:
        tracer = Tracer()
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = previous


class ExperimentRun:
    """Everything measured in one experiment run."""

    def __init__(
        self,
        label: str,
        join: Operator,
        sink: Sink,
        series: Dict[str, TimeSeries],
        duration_ms: float,
        manifest: Optional[Dict[str, Any]] = None,
        tracer: Optional[Tracer] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.label = label
        self.join = join
        self.sink = sink
        self.series = series
        self.duration_ms = duration_ms
        self.manifest = manifest or {}
        self.tracer = tracer
        # Profiler snapshot (repro profile); kept OFF the manifest so
        # profiled runs stay byte-identical to unprofiled ones.
        self.profile = profile

    # -- metric accessors ----------------------------------------------------

    @property
    def state_series(self) -> TimeSeries:
        """Total join-state size over time (Figures 5/6/8/10/13)."""
        return self.series["state_total"]

    @property
    def output_series(self) -> TimeSeries:
        """Cumulative result tuples over time (Figures 7/9/11/12)."""
        return self.series["output"]

    @property
    def punctuation_output_series(self) -> TimeSeries:
        """Cumulative propagated punctuations over time (Figure 14)."""
        return self.series["punct_output"]

    @property
    def results(self) -> int:
        return self.sink.tuple_count

    @property
    def punctuations_out(self) -> int:
        return self.sink.punctuation_count

    def mean_state(self) -> float:
        return self.state_series.time_weighted_mean()

    def max_state(self) -> float:
        return self.state_series.maximum()

    def output_rate_first_half(self) -> float:
        """Mean output rate (tuples/ms) over the first half of the run."""
        return self._window_rate(0.0, 0.5)

    def output_rate_second_half(self) -> float:
        """Mean output rate (tuples/ms) over the second half of the run."""
        return self._window_rate(0.5, 1.0)

    def _window_rate(self, frac_start: float, frac_end: float) -> float:
        series = self.output_series
        if len(series) < 2:
            return 0.0
        t0 = series.times[0]
        span = series.times[-1] - t0
        if span <= 0:
            return 0.0
        start, end = t0 + frac_start * span, t0 + frac_end * span
        produced = series.value_at(end) - series.value_at(start)
        return produced / (end - start)

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for report tables."""
        return {
            "label": self.label,
            "results": self.results,
            "mean_state": self.mean_state(),
            "max_state": self.max_state(),
            "rate_first_half": self.output_rate_first_half(),
            "rate_second_half": self.output_rate_second_half(),
            "punctuations_out": self.punctuations_out,
            "duration_ms": self.duration_ms,
        }

    def __repr__(self) -> str:
        return (
            f"ExperimentRun({self.label!r}, results={self.results}, "
            f"mean_state={self.mean_state():.1f})"
        )


def run_join_experiment(
    factory: JoinFactory,
    workload: GeneratedWorkload,
    label: str = "",
    sample_interval_ms: float = 200.0,
    cost_model: Optional[CostModel] = None,
    keep_items: bool = False,
    horizon_factor: float = 4.0,
    tracer: Optional[Tracer] = None,
    batch_size: Optional[int] = None,
) -> ExperimentRun:
    """Execute one join over one workload and return its measurements.

    Parameters
    ----------
    factory:
        Builds the join under test (see :func:`pjoin_factory` etc.).
    workload:
        A :class:`~repro.workloads.generator.GeneratedWorkload`.
    sample_interval_ms:
        Virtual-time distance between metric samples.
    keep_items:
        Retain every result tuple in the sink (tests need this; large
        benchmark runs do not).
    horizon_factor:
        Metrics are pre-scheduled until ``end_time * horizon_factor`` so
        a saturated join that lags behind its inputs is still sampled;
        trailing samples after completion are trimmed.
    tracer:
        Attach this :class:`~repro.obs.trace.Tracer` to the simulation
        engine for the run.  Defaults to the tracer installed by the
        :func:`tracing` context manager, if any; otherwise the run is
        untraced (the zero-cost-when-off path).
    batch_size:
        Source schedule prefetch vector (see :func:`batching`).
        Defaults to the active :func:`batching` context, else 1.
        Results are byte-identical for every value.
    """
    if _RUN_INTERCEPTOR is not None:
        return _RUN_INTERCEPTOR(
            factory,
            workload,
            label=label,
            sample_interval_ms=sample_interval_ms,
            cost_model=cost_model,
            keep_items=keep_items,
            horizon_factor=horizon_factor,
            tracer=tracer,
            batch_size=batch_size,
        )
    return execute_join_experiment(
        factory,
        workload,
        label=label,
        sample_interval_ms=sample_interval_ms,
        cost_model=cost_model,
        keep_items=keep_items,
        horizon_factor=horizon_factor,
        tracer=tracer,
        batch_size=batch_size,
    )


def execute_join_experiment(
    factory: JoinFactory,
    workload: GeneratedWorkload,
    label: str = "",
    sample_interval_ms: float = 200.0,
    cost_model: Optional[CostModel] = None,
    keep_items: bool = False,
    horizon_factor: float = 4.0,
    tracer: Optional[Tracer] = None,
    batch_size: Optional[int] = None,
) -> ExperimentRun:
    """The un-interceptable body of :func:`run_join_experiment`."""
    if tracer is None:
        tracer = _ACTIVE_TRACER
    if batch_size is None:
        batch_size = _ACTIVE_BATCH_SIZE if _ACTIVE_BATCH_SIZE is not None else 1
    plan = QueryPlan(cost_model=cost_model)
    if tracer is not None:
        plan.engine.tracer = tracer
    join = factory(plan, workload)
    sink = Sink(plan.engine, plan.cost_model, keep_items=keep_items)
    join.connect(sink)
    # One source per stream: binary workloads expose ("A", "B"), n-ary
    # workloads ("S0", "S1", ...) — the wiring is shape-agnostic.
    schedules = workload.schedules
    names = getattr(workload, "stream_names", None) or tuple(
        chr(ord("A") + i) for i in range(len(schedules))
    )
    for port, (schedule, source_name) in enumerate(zip(schedules, names)):
        plan.add_source(
            schedule, join, port=port, name=source_name, batch_size=batch_size
        )
    collector = MetricsCollector(plan.engine, interval_ms=sample_interval_ms)
    collector.register_gauge("state_total", join.total_state_size)
    for port, source_name in enumerate(names):
        collector.register_gauge(
            f"state_{source_name.lower()}",
            (lambda p: lambda: join.state_size(p))(port),
        )
    collector.register_gauge("output", lambda: sink.tuple_count)
    collector.register_gauge("punct_output", lambda: sink.punctuation_count)
    collector.start(horizon_ms=workload.end_time * horizon_factor + 1000.0)
    profiler = _ACTIVE_PROFILER
    if profiler is not None:
        profiler.instrument_run(join, sink, plan.engine, plan.cost_model)
    try:
        plan.run()
    finally:
        if profiler is not None:
            # Shared objects (the cost model, a tracer reused across
            # runs) must not carry timing shadows into later runs.
            profiler.restore()
    series = {
        name: _trim(ts, sink.eos_time) for name, ts in collector.series.items()
    }
    run_label = label or type(join).__name__
    duration = sink.eos_time if sink.eos_time >= 0 else plan.engine.now
    # Composite joins (the sharded stack) expose their instrumented
    # sub-operators for the manifest's counter registry.
    sub_operators = getattr(join, "manifest_operators", None)
    manifest = build_manifest(
        run_label,
        join,
        sink,
        plan.engine,
        workload=workload,
        series=series,
        duration_ms=duration,
        extra_operators=sub_operators() if sub_operators is not None else None,
    )
    return ExperimentRun(
        run_label,
        join,
        sink,
        series,
        duration_ms=duration,
        manifest=manifest,
        tracer=tracer,
        profile=profiler.snapshot() if profiler is not None else None,
    )


def _trim(series: TimeSeries, eos_time: float) -> TimeSeries:
    """Drop samples after the join delivered end-of-stream."""
    if eos_time < 0 or not series:
        return series
    trimmed = TimeSeries(name=series.name)
    for time, value in series.points():
        if time > eos_time:
            break
        trimmed.append(time, value)
    return trimmed


# ---------------------------------------------------------------------------
# Join factories
# ---------------------------------------------------------------------------


def pjoin_factory(
    config: Optional[PJoinConfig] = None,
    registry: Optional[EventListenerRegistry] = None,
) -> JoinFactory:
    """A factory producing a PJoin with the given configuration.

    Under an active :func:`sharding` block the factory builds the
    K-shard PJoin stack instead (each shard gets the same config).
    """

    def build(plan: QueryPlan, workload: GeneratedWorkload) -> Operator:
        if _ACTIVE_SHARDS is not None:
            from repro.shard.operator import sharded_pjoin

            return sharded_pjoin(
                plan.engine,
                plan.cost_model,
                workload.schemas[0],
                workload.schemas[1],
                workload.join_fields[0],
                workload.join_fields[1],
                _ACTIVE_SHARDS,
                config=config,
                registry=registry,
                governor=_ACTIVE_GOVERNOR,
                skew=_ACTIVE_SKEW,
            )
        return PJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            config=config,
            registry=registry,
            governor=_ACTIVE_GOVERNOR,
            skew=_ACTIVE_SKEW,
        )

    return build


def xjoin_factory(memory_threshold: Optional[int] = None) -> JoinFactory:
    """A factory producing the XJoin comparator (sharded when active)."""

    def build(plan: QueryPlan, workload: GeneratedWorkload) -> Operator:
        if _ACTIVE_SHARDS is not None:
            from repro.shard.operator import sharded_xjoin

            return sharded_xjoin(
                plan.engine,
                plan.cost_model,
                workload.schemas[0],
                workload.schemas[1],
                workload.join_fields[0],
                workload.join_fields[1],
                _ACTIVE_SHARDS,
                memory_threshold=memory_threshold,
                governor=_ACTIVE_GOVERNOR,
            )
        return XJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            memory_threshold=memory_threshold,
            governor=_ACTIVE_GOVERNOR,
        )

    return build


def shj_factory() -> JoinFactory:
    """A factory producing the symmetric hash join (sharded when active)."""

    def build(plan: QueryPlan, workload: GeneratedWorkload) -> Operator:
        if _ACTIVE_SHARDS is not None:
            from repro.shard.operator import sharded_shj

            return sharded_shj(
                plan.engine,
                plan.cost_model,
                workload.schemas[0],
                workload.schemas[1],
                workload.join_fields[0],
                workload.join_fields[1],
                _ACTIVE_SHARDS,
                governor=_ACTIVE_GOVERNOR,
            )
        return SymmetricHashJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            governor=_ACTIVE_GOVERNOR,
        )

    return build


def nary_pjoin_factory(
    config: Optional[PJoinConfig] = None,
    planner: Optional[PlannerSpec] = None,
) -> JoinFactory:
    """A factory producing an n-ary PJoin over all workload streams.

    ``planner`` defaults to the spec installed by the :func:`planning`
    context manager (the CLI's ``--planner`` flag); both unset builds
    the unplanned operator.
    """

    def build(plan: QueryPlan, workload: GeneratedWorkload) -> Operator:
        spec = planner if planner is not None else _ACTIVE_PLANNER
        return NaryPJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas,
            workload.join_fields,
            config=config,
            governor=_ACTIVE_GOVERNOR,
            planner=spec,
        )

    return build


def run_nary_experiment(
    workload: Any,
    config: Optional[PJoinConfig] = None,
    planner: Optional[PlannerSpec] = None,
    **kwargs: Any,
) -> ExperimentRun:
    """Run an n-ary PJoin over an n-stream workload.

    A thin veneer over :func:`run_join_experiment` — interception
    (parallel sweeps), batching, profiling and tracing all compose
    exactly as for binary experiments.
    """
    return run_join_experiment(
        nary_pjoin_factory(config=config, planner=planner), workload, **kwargs
    )
