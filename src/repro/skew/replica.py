"""The hot-key replica queue item.

When the hot-key shard router activates a key, the key's *replicated*
side (the build side, input port 1) must appear in every shard's state
— including the tuples that arrived before activation and were routed
only to the key's home shard.  The router wraps each such tuple in a
:class:`HotKeyReplica` and pushes it to every non-home shard.

A replica is **insert-only**: the receiving join adds it to its state
without probing, without contract validation and without monitor
events.  Probing would double-produce results the home shard already
emitted; validation would misfire on shards that have already seen a
narrowed promise for an unrelated key of the same pattern family.  The
wrapper is deliberately import-light (no operator/core imports) so
:mod:`repro.core.pjoin` can type-check against it without a cycle.
"""

from __future__ import annotations

from repro.tuples.tuple import Tuple


class HotKeyReplica:
    """An insert-only state copy of one build-side tuple."""

    __slots__ = ("tup",)

    def __init__(self, tup: Tuple) -> None:
        self.tup = tup

    def __repr__(self) -> str:
        return f"HotKeyReplica({self.tup!r})"
