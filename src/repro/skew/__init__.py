"""Skew-adaptive partitioning and hot-key handling (ROADMAP item 3).

Every partitioning decision in the repro — the joins' hash buckets, the
shard router, the governor's eviction victims — assumes roughly uniform
join keys.  This package makes those decisions *frequency-aware*, in
the direction of PanJoin (arxiv 1811.05065): partition granularity
tracks observed key frequency so probe cost stays flat under Zipf
traffic.

* :mod:`~repro.skew.sketch` — a space-bounded frequency sketch
  (SpaceSaving top-K over a count-min backing) observing join-key
  arrivals;
* :mod:`~repro.skew.partitioner` — :class:`AdaptiveTable`, a
  partitioned hash table whose hot base buckets split into finer
  sub-partitions and whose cold ones coalesce back, only ever at
  punctuation-aligned purge boundaries;
* :mod:`~repro.skew.manager` — :class:`SkewSpec` (the attachment
  config) and :class:`SkewManager` (one per operator: the sketch, both
  sides' tables, and the split/coalesce decisions);
* :mod:`~repro.skew.router` — :class:`HotKeySharding` state +
  :class:`HotKeyShardRouter`: replicate the build side of a hot key to
  every shard and spread its probe side, keeping the merged result
  multiset exactly equal to the unsharded run;
* :mod:`~repro.skew.replica` — the :class:`HotKeyReplica` queue item
  carrying an insert-only state copy to a non-home shard.

The layer is strictly opt-in: a join built without a
:class:`~repro.skew.manager.SkewSpec` takes the exact code path it took
before this package existed (the fast-path build declines only when a
spec is attached), so default manifests stay byte-identical.
"""

from typing import Any

from repro.skew.manager import SkewManager, SkewSpec
from repro.skew.partitioner import AdaptiveTable
from repro.skew.replica import HotKeyReplica
from repro.skew.sketch import FrequencySketch

__all__ = [
    "AdaptiveTable",
    "FrequencySketch",
    "HotKeyReplica",
    "HotKeyShardRouter",
    "SkewManager",
    "SkewSpec",
]


def __getattr__(name: str) -> Any:
    # The router sits on top of repro.shard, which imports the joins —
    # and the joins import repro.skew.replica.  Resolving the router
    # lazily keeps this package importable from inside repro.core.
    if name == "HotKeyShardRouter":
        from repro.skew.router import HotKeyShardRouter

        return HotKeyShardRouter
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
