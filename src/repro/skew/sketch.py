"""A space-bounded frequency sketch over join-key arrivals.

Two classic structures compose into one deterministic estimator:

* **SpaceSaving top-K** (Metwally et al.): at most ``top_k`` monitored
  keys, each with a count and a max-overestimation error.  On streams
  with at most ``top_k`` distinct keys the counts are *exact* (no
  monitor is ever evicted — the hypothesis property pins this down).
* **count-min** (Cormode & Muthukrishnan): ``depth`` rows of ``width``
  counters addressed by pairwise-independent mixes of
  :func:`~repro.storage.hash_table.stable_hash`, answering frequency
  estimates for keys outside the monitored set.

Everything is integer arithmetic over :func:`stable_hash`, so a seeded
run produces the identical sketch state on every platform and process —
the property all downstream decisions (splits, hot-key activation,
eviction scoring) inherit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ConfigError
from repro.storage.hash_table import stable_hash

# Fixed odd multipliers/offsets deriving the count-min row hashes from
# one stable_hash value (64-bit mixing constants; any fixed odd values
# work, these are splitmix64's).
_ROW_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xD6E8FEB86659FD93,
    0xA5A5A5A5A5A5A5A5,
    0xC2B2AE3D27D4EB4F,
)
_MASK64 = (1 << 64) - 1


class FrequencySketch:
    """Deterministic SpaceSaving top-K over a count-min backing.

    Parameters
    ----------
    top_k:
        Maximum number of exactly-monitored keys (the hot set).
    width, depth:
        Count-min geometry; ``depth`` is capped by the number of fixed
        row-mixing constants (6).
    """

    def __init__(self, top_k: int = 32, width: int = 1024, depth: int = 4) -> None:
        if top_k < 1:
            raise ConfigError(f"top_k must be >= 1, got {top_k}")
        if width < 1:
            raise ConfigError(f"width must be >= 1, got {width}")
        if not 1 <= depth <= len(_ROW_MULTIPLIERS):
            raise ConfigError(
                f"depth must be in [1, {len(_ROW_MULTIPLIERS)}], got {depth}"
            )
        self.top_k = top_k
        self.width = width
        self.depth = depth
        self.total = 0
        # Monitored keys: value -> (count, error).  ``error`` bounds how
        # much of ``count`` may belong to earlier evicted keys.
        self._monitored: Dict[Any, Tuple[int, int]] = {}
        self._rows = [[0] * width for _ in range(depth)]
        self.evictions = 0

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def observe(self, value: Any, hash_value: int | None = None, count: int = 1) -> None:
        """Record *count* arrivals of *value*."""
        if hash_value is None:
            hash_value = stable_hash(value)
        self.total += count
        h = hash_value & _MASK64
        for row in range(self.depth):
            mixed = (h * _ROW_MULTIPLIERS[row] + row) & _MASK64
            self._rows[row][mixed % self.width] += count
        monitored = self._monitored
        entry = monitored.get(value)
        if entry is not None:
            monitored[value] = (entry[0] + count, entry[1])
            return
        if len(monitored) < self.top_k:
            monitored[value] = (count, 0)
            return
        # SpaceSaving eviction: replace the minimum-count monitor.  The
        # tie-break on repr keeps the choice order-independent of dict
        # insertion history only up to equal counts — counts and reprs
        # together are deterministic for a seeded stream.
        victim = min(monitored, key=lambda v: (monitored[v][0], repr(v)))
        floor = monitored.pop(victim)[0]
        monitored[value] = (floor + count, floor)
        self.evictions += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def estimate(self, value: Any, hash_value: int | None = None) -> int:
        """Estimated arrival count of *value* (never an underestimate
        for monitored keys; count-min overestimates only)."""
        entry = self._monitored.get(value)
        if entry is not None:
            return entry[0]
        if hash_value is None:
            hash_value = stable_hash(value)
        h = hash_value & _MASK64
        best = None
        for row in range(self.depth):
            mixed = (h * _ROW_MULTIPLIERS[row] + row) & _MASK64
            cell = self._rows[row][mixed % self.width]
            if best is None or cell < best:
                best = cell
        return best if best is not None else 0

    def topk(self) -> List[Tuple[Any, int, int]]:
        """Monitored keys as ``(value, count, error)``, hottest first.

        Ordering is deterministic: count descending, then ``repr``.
        """
        return sorted(
            ((value, count, error) for value, (count, error) in self._monitored.items()),
            key=lambda item: (-item[1], repr(item[0])),
        )

    def share(self, value: Any, hash_value: int | None = None) -> float:
        """Estimated fraction of all arrivals carrying *value*."""
        if self.total == 0:
            return 0.0
        return self.estimate(value, hash_value) / self.total

    def is_exact(self) -> bool:
        """True while no monitor has been evicted (counts are exact)."""
        return self.evictions == 0

    def counters(self) -> Dict[str, int]:
        return {
            "observed": self.total,
            "monitored": len(self._monitored),
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"FrequencySketch(top_k={self.top_k}, observed={self.total}, "
            f"monitored={len(self._monitored)})"
        )
