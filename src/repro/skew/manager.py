"""SkewSpec and SkewManager: the skew layer's attachment point.

A :class:`SkewSpec` is the frozen configuration a join (or the sharded
stack) is built with; a :class:`SkewManager` is the per-operator live
object: one :class:`~repro.skew.sketch.FrequencySketch` observing both
streams' join-key arrivals, the two sides'
:class:`~repro.skew.partitioner.AdaptiveTable` instances, and the
split/coalesce decision loop that runs at punctuation-aligned purge
boundaries.

Decision rule (PanJoin's direction, reduced to the repro's cost
model): the manager tracks a decayed arrival mass per *base* bucket;
at each purge boundary a bucket whose mass exceeds
``split_factor ×`` the mean splits one level deeper (up to
``max_depth``, and only if it holds enough memory entries to be worth
it), while a bucket below ``coalesce_factor ×`` the mean gives one
level back.  Splits move entries between leaves of one base bucket
only — never across base buckets and never off the memory tier — so
probe/purge/propagation *verdicts* are untouched; only bucket
occupancy (and hence charged probe time) changes.  The entries moved
are charged at the purge-scan rate through the purge component's cost.

Sketch observation itself is charged zero virtual time, like the shard
router's hashing: it models an O(1) counter bump riding the existing
per-tuple hash computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError
from repro.skew.partitioner import AdaptiveTable
from repro.skew.sketch import FrequencySketch


@dataclass(frozen=True)
class SkewSpec:
    """Configuration of the skew layer.

    Parameters
    ----------
    top_k, sketch_width, sketch_depth:
        Geometry of the frequency sketch.
    adaptive:
        Split/coalesce hash buckets at purge boundaries.  ``False``
        keeps the layout static (the sketch still observes — the
        skew-aware eviction policy and hot-key router only need that).
    split_factor, coalesce_factor:
        Split a base bucket whose decayed arrival mass exceeds
        ``split_factor × mean``; coalesce below ``coalesce_factor ×
        mean``.  The gap between them is the hysteresis that prevents
        thrash.
    max_depth:
        Maximum split depth per base bucket (``2^depth`` leaves).
    min_split_occupancy:
        Don't split a bucket holding fewer memory entries than this
        (both sides combined) — there is nothing to isolate.
    decay:
        Multiplier applied to every bucket's arrival mass after each
        decision round; makes the masses track the recent regime so a
        rotated hot set releases its old splits.
    hot_keys:
        Enable hot-key replication in the shard router (see
        :class:`~repro.skew.router.HotKeyShardRouter`).
    hot_key_share:
        Activate a key once its estimated share of all arrivals
        reaches this fraction.
    hot_key_check_every:
        Router activation cadence, in routed tuples.
    hot_key_min_total:
        Minimum observed arrivals before any activation.
    """

    top_k: int = 32
    sketch_width: int = 1024
    sketch_depth: int = 4
    adaptive: bool = True
    split_factor: float = 2.0
    coalesce_factor: float = 0.5
    max_depth: int = 3
    min_split_occupancy: int = 16
    decay: float = 0.5
    hot_keys: bool = False
    hot_key_share: float = 0.10
    hot_key_check_every: int = 64
    hot_key_min_total: int = 256

    def __post_init__(self) -> None:
        if self.split_factor <= self.coalesce_factor:
            raise ConfigError(
                "split_factor must exceed coalesce_factor "
                f"(got {self.split_factor} <= {self.coalesce_factor})"
            )
        if self.max_depth < 0:
            raise ConfigError(f"max_depth must be >= 0, got {self.max_depth}")
        if not 0.0 < self.decay <= 1.0:
            raise ConfigError(f"decay must be in (0, 1], got {self.decay}")
        if not 0.0 < self.hot_key_share < 1.0:
            raise ConfigError(
                f"hot_key_share must be in (0, 1), got {self.hot_key_share}"
            )
        if self.hot_key_check_every < 1:
            raise ConfigError(
                f"hot_key_check_every must be >= 1, got {self.hot_key_check_every}"
            )

    def make_sketch(self) -> FrequencySketch:
        return FrequencySketch(self.top_k, self.sketch_width, self.sketch_depth)


class SkewManager:
    """One operator's live skew state: sketch, tables, decisions."""

    def __init__(self, spec: SkewSpec, n_partitions: int) -> None:
        self.spec = spec
        self.n_base = n_partitions
        self.sketch = spec.make_sketch()
        self.tables: List[AdaptiveTable] = []
        # Decayed per-base-bucket arrival mass (tuples of both streams).
        self.bucket_mass = [0.0] * n_partitions
        # --- counters -----------------------------------------------------
        self.splits = 0
        self.coalesces = 0
        self.entries_moved = 0
        self.restructure_runs = 0

    def make_table(self) -> AdaptiveTable:
        """Build (and register) one side's adaptive table."""
        table = AdaptiveTable(self.n_base)
        self.tables.append(table)
        return table

    # ------------------------------------------------------------------
    # Hot path (zero virtual cost; see module docstring)
    # ------------------------------------------------------------------

    def observe(self, value: object, hash_value: int) -> None:
        """Record one join-key arrival (either stream)."""
        self.sketch.observe(value, hash_value)
        self.bucket_mass[hash_value % self.n_base] += 1.0

    # ------------------------------------------------------------------
    # Purge-boundary restructuring
    # ------------------------------------------------------------------

    def maybe_restructure(self, now: float) -> int:
        """Apply due splits/coalesces; returns entries moved (cost basis).

        Called by the join's state-purge component, i.e. only at the
        punctuation-aligned boundaries where purging itself runs — the
        same cover cuts checkpointing and the reoptimizer use.
        """
        spec = self.spec
        self.restructure_runs += 1
        if not spec.adaptive or len(self.tables) < 2:
            return 0
        mass = self.bucket_mass
        total = sum(mass)
        moved = 0
        if total > 0.0:
            mean = total / self.n_base
            primary = self.tables[0]
            for base in range(self.n_base):
                depth = primary.depths[base]
                desired = depth
                if (
                    mass[base] > spec.split_factor * mean
                    and depth < spec.max_depth
                ):
                    occupancy = sum(
                        leaf.memory_count
                        for table in self.tables
                        for leaf in table.leaves(base)
                    )
                    if occupancy >= spec.min_split_occupancy:
                        desired = depth + 1
                elif depth > 0 and mass[base] < spec.coalesce_factor * mean:
                    desired = depth - 1
                if desired == depth:
                    continue
                if not all(t.can_restructure(base) for t in self.tables):
                    continue
                for table in self.tables:
                    moved += table.set_depth(base, desired)
                if desired > depth:
                    self.splits += 1
                else:
                    self.coalesces += 1
        if spec.decay < 1.0:
            for base in range(self.n_base):
                mass[base] *= spec.decay
        self.entries_moved += moved
        return moved

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "splits": self.splits,
            "coalesces": self.coalesces,
            "entries_moved": self.entries_moved,
            "restructure_runs": self.restructure_runs,
            "leaf_partitions": (
                self.tables[0].leaf_count if self.tables else self.n_base
            ),
        }
        for key, value in self.sketch.counters().items():
            out[f"sketch_{key}"] = value
        return out

    def __repr__(self) -> str:
        return (
            f"SkewManager(base={self.n_base}, splits={self.splits}, "
            f"coalesces={self.coalesces}, observed={self.sketch.total})"
        )
