"""AdaptiveTable: a partitioned hash table with splittable buckets.

The stock :class:`~repro.storage.hash_table.PartitionedHashTable` maps
``stable_hash(key) % n`` onto a fixed bucket list, so one hot key's
bucket chain grows without bound under skew and *every* co-resident
key pays its occupancy on probe (the cost model charges the full
bucket scan).  The adaptive table keeps the same ``n`` *base* buckets
but lets each split into ``2^depth`` finer leaves keyed by the next
hash bits — separating a hot key from its co-residents so cold probes
stop paying hot occupancy — and coalesce back when the heat moves on.

Invariants the rest of the system relies on:

* ``n_partitions`` stays the *base* bucket count forever;
  ``len(table.partitions)`` is the current leaf count.  All flat-list
  iteration (purge sweeps, spill victim scans, governor candidate
  enumeration) works unchanged over leaves.
* The disk join pairs the two sides' partitions by flat index, so a
  join must apply every restructure to **both** sides' tables
  symmetrically (the :class:`~repro.skew.manager.SkewManager` does) —
  equal ``(n_base, depths)`` means equal flat layouts.
* Restructuring only touches buckets whose leaves hold no disk and no
  governor-demoted (cold) entries; moved entries keep their ``ats``
  (and ``dts = inf``), so every duplicate-prevention interval and
  purge verdict is exactly what it was — the result multiset cannot
  change (the equivalence suite pins this).
* ``partition.index`` values are reassigned to the new flat positions
  after a restructure; they stay unique and deterministic.
"""

from __future__ import annotations

from typing import List

from repro.errors import StorageError
from repro.storage.hash_table import PartitionedHashTable, stable_hash
from repro.storage.partition import HybridPartition


class AdaptiveTable(PartitionedHashTable):
    """A partitioned hash table whose base buckets split and coalesce."""

    def __init__(self, n_partitions: int = 16) -> None:
        super().__init__(n_partitions)
        self.n_base = n_partitions
        self.depths = [0] * n_partitions
        self._offsets = list(range(n_partitions))
        self.splits = 0
        self.coalesces = 0
        self.entries_moved = 0

    # ------------------------------------------------------------------
    # Placement (overrides)
    # ------------------------------------------------------------------

    def partition_index_for(self, hash_value: int) -> int:
        """Flat leaf index: base bucket, then the next hash bits."""
        base = hash_value % self.n_base
        depth = self.depths[base]
        if depth == 0:
            return self._offsets[base]
        return self._offsets[base] + ((hash_value // self.n_base) % (1 << depth))

    # ------------------------------------------------------------------
    # Restructuring (punctuation-aligned purge boundaries only)
    # ------------------------------------------------------------------

    def leaves(self, base: int) -> List[HybridPartition]:
        """The current leaf partitions of one base bucket."""
        lo = self._offsets[base]
        return self.partitions[lo : lo + (1 << self.depths[base])]

    def can_restructure(self, base: int) -> bool:
        """Restructuring moves memory entries only: every leaf of the
        base bucket must be free of disk and cold portions."""
        return all(
            p.disk_count == 0 and p.cold_count == 0 for p in self.leaves(base)
        )

    def set_depth(self, base: int, new_depth: int) -> int:
        """Rebuild one base bucket at *new_depth*; returns entries moved.

        The caller charges virtual time for the move (the manager uses
        ``purge_scan_per_tuple`` per entry, the same rate a purge scan
        pays) and must apply the identical call to the opposite side's
        table to keep the flat layouts paired.
        """
        if not 0 <= base < self.n_base:
            raise StorageError(f"no base bucket {base}")
        if new_depth < 0:
            raise StorageError(f"negative split depth {new_depth}")
        old_depth = self.depths[base]
        if new_depth == old_depth:
            return 0
        if not self.can_restructure(base):
            raise StorageError(
                f"base bucket {base} has disk/cold entries; restructure "
                "is only legal on memory-resident buckets"
            )
        old_leaves = self.leaves(base)
        new_leaves = [HybridPartition(0) for _ in range(1 << new_depth)]
        self.depths[base] = new_depth
        moved = 0
        for leaf in old_leaves:
            for entry in leaf.iter_memory():
                h = entry.join_hash
                if h is None:
                    h = stable_hash(entry.join_value)
                    entry.join_hash = h
                new_leaves[(h // self.n_base) % (1 << new_depth)].insert(entry)
                moved += 1
        lo = self._offsets[base]
        self.partitions[lo : lo + (1 << old_depth)] = new_leaves
        self._rebuild_offsets()
        if new_depth > old_depth:
            self.splits += 1
        else:
            self.coalesces += 1
        self.entries_moved += moved
        return moved

    def _rebuild_offsets(self) -> None:
        offset = 0
        for base in range(self.n_base):
            self._offsets[base] = offset
            offset += 1 << self.depths[base]
        for index, partition in enumerate(self.partitions):
            partition.index = index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        return len(self.partitions)

    def __repr__(self) -> str:
        return (
            f"AdaptiveTable(base={self.n_base}, leaves={self.leaf_count}, "
            f"mem={self.memory_count}, splits={self.splits})"
        )
