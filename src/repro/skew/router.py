"""HotKeyShardRouter: split/replicate hot keys across shards.

The stock :class:`~repro.shard.router.ShardRouter` sends every tuple of
a join value to one owning shard, so a hot key serialises on its home
shard no matter how many shards exist.  This router watches arrivals
through its own :class:`~repro.skew.sketch.FrequencySketch` and, once a
key's estimated share crosses the spec's threshold, *activates* it:

* the key's **build side** (input port 1) is replicated — its buffered
  pre-activation history is pushed to every non-home shard as
  insert-only :class:`~repro.skew.replica.HotKeyReplica` items, and
  every later build tuple is broadcast to all shards (probing each
  shard's disjoint probe-side state, inserting everywhere);
* the key's **probe side** (input port 0) is spread round-robin — each
  probe tuple lands on one shard, finds the complete replicated build
  state there, and inserts only there;
* punctuations covering a hot key broadcast un-narrowed to every
  shard, with a full-cover alignment subscription so the merger still
  re-emits the logical promise exactly once.

Why the merged result multiset stays exactly equal to the unsharded
run: every probe-side entry lives on exactly one shard, and every
build-side tuple (replica or broadcast) probes either nothing
(replicas) or each shard's disjoint probe-side state exactly once — so
each qualifying pair is produced at exactly one shard.  A key is never
activated after either stream has punctuated it (its state is already
condemned), and its replica buffer is dropped on punctuation, so no
replica can resurrect purged state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Set

from repro.punctuations.patterns import Constant, EnumerationList, Pattern
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.shard.merger import AlignmentLedger
from repro.shard.router import ShardRouter
from repro.shard.routing import shard_of
from repro.skew.manager import SkewSpec
from repro.skew.replica import HotKeyReplica
from repro.storage.hash_table import stable_hash
from repro.tuples.tuple import Tuple as ReproTuple

#: The replicated (build) input port; port 0 is spread instead.
BUILD_PORT = 1


class HotKeyShardRouter(ShardRouter):
    """A shard router that learns and replicates hot keys."""

    def __init__(
        self,
        shards: Sequence[Any],
        join_indices: Sequence[int],
        join_fields: Sequence[str],
        ledger: AlignmentLedger,
        spec: SkewSpec,
        name: str = "shard_router",
    ) -> None:
        super().__init__(shards, join_indices, join_fields, ledger, name=name)
        self.spec = spec
        self.sketch = spec.make_sketch()
        self.hot_keys: Set[Any] = set()
        # Build-side history per still-cold, still-open key — exactly
        # the state the home shard retains in memory for that key.
        self._replica_buffer: Dict[Any, List[ReproTuple]] = {}
        # Keys each port has promised away (constant/enumeration
        # patterns); non-enumerable exploitable patterns are kept whole.
        self._punctuated: List[Set[Any]] = [set(), set()]
        self._wide_patterns: List[List[Pattern]] = [[], []]
        self._round_robin: Dict[Any, int] = {}
        self._since_check = 0
        # --- counters -----------------------------------------------------
        self.hot_activations = 0
        self.hot_deactivations = 0
        self.replica_copies = 0
        self.hot_spread_tuples = 0
        self.hot_broadcast_tuples = 0
        self.hot_broadcast_punctuations = 0

    # ------------------------------------------------------------------
    # Push protocol
    # ------------------------------------------------------------------

    def push(self, item: Any, port: int = 0) -> None:
        if not isinstance(item, ReproTuple):
            # Punctuations go through the overridden _route_punctuation;
            # end-of-stream and control items take the stock path.
            super().push(item, port)
            return
        value = item.values[self.join_indices[port]]
        hash_value = stable_hash(value)
        self.sketch.observe(value, hash_value)
        self._since_check += 1
        if self._since_check >= self.spec.hot_key_check_every:
            self._since_check = 0
            self._maybe_activate()
        self.tuples_routed += 1
        if value in self.hot_keys:
            if port == BUILD_PORT:
                # Replicated side: probe + insert at every shard (each
                # shard's probe-side state is disjoint, so each pair is
                # produced exactly once globally).
                self.hot_broadcast_tuples += 1
                for target, shard in enumerate(self.shards):
                    self.per_shard_tuples[target] += 1
                    shard.push(item, port)
            else:
                self.hot_spread_tuples += 1
                target = self._next_spread_target(value, hash_value)
                self.per_shard_tuples[target] += 1
                self.shards[target].push(item, port)
            return
        if port == BUILD_PORT and not self._is_punctuated(value):
            self._replica_buffer.setdefault(value, []).append(item)
        target = hash_value % self.n_shards
        self.per_shard_tuples[target] += 1
        self.shards[target].push(item, port)

    def _next_spread_target(self, value: Any, hash_value: int) -> int:
        # Start the rotation at the home shard so a key that activates
        # and sees exactly one more probe tuple behaves like before.
        turn = self._round_robin.get(value, 0)
        self._round_robin[value] = turn + 1
        return (hash_value + turn) % self.n_shards

    # ------------------------------------------------------------------
    # Activation
    # ------------------------------------------------------------------

    def _maybe_activate(self) -> None:
        sketch = self.sketch
        if sketch.total < self.spec.hot_key_min_total:
            return
        threshold = self.spec.hot_key_share * sketch.total
        for value, count, _error in sketch.topk():
            if count < threshold:
                break  # hottest-first ordering: nothing below qualifies
            if value in self.hot_keys or self._is_punctuated(value):
                continue
            self._activate(value)

    def _activate(self, value: Any) -> None:
        self.hot_keys.add(value)
        self.hot_activations += 1
        home = shard_of(value, self.n_shards)
        buffered = self._replica_buffer.pop(value, [])
        for tup in buffered:
            for target, shard in enumerate(self.shards):
                if target == home:
                    continue  # the home shard already holds the original
                self.replica_copies += 1
                shard.push(HotKeyReplica(tup), BUILD_PORT)

    def _is_punctuated(self, value: Any) -> bool:
        for port in (0, 1):
            if value in self._punctuated[port]:
                return True
            for pattern in self._wide_patterns[port]:
                if pattern.matches(value):
                    return True
        return False

    # ------------------------------------------------------------------
    # Punctuations
    # ------------------------------------------------------------------

    def _route_punctuation(self, punct: Punctuation, port: int) -> None:
        join_index = self.join_indices[port]
        pattern = punct.patterns[join_index]
        self._note_punctuated(pattern, port)
        covered_hot = [v for v in self.hot_keys if pattern.matches(v)]
        if not covered_hot:
            super()._route_punctuation(punct, port)
            return
        # A promise about a hot key concerns every shard: the key's
        # state is replicated/spread across all of them.  Broadcast the
        # pattern un-narrowed and register a full-cover subscription so
        # the merger re-emits the logical promise exactly once.
        self.punctuations_routed += 1
        self.hot_broadcast_punctuations += 1
        if is_join_exploitable(punct, self.join_fields[port]):
            self.ledger.register(
                pattern, [(shard, pattern) for shard in range(self.n_shards)]
            )
        for shard in self.shards:
            self.punctuation_copies += 1
            shard.push(punct, port)
        self._retire_dead_hot_keys(covered_hot)

    def _note_punctuated(self, pattern: Pattern, port: int) -> None:
        if isinstance(pattern, Constant):
            self._punctuated[port].add(pattern.value)
            self._replica_buffer.pop(pattern.value, None)
            return
        if isinstance(pattern, EnumerationList):
            for member in pattern.values:
                self._punctuated[port].add(member)
                self._replica_buffer.pop(member, None)
            return
        if pattern.is_empty:
            return
        # Range/wildcard promises: keep the whole pattern for the
        # activation guard and drop every buffered key it covers.
        self._wide_patterns[port].append(pattern)
        for value in [v for v in self._replica_buffer if pattern.matches(v)]:
            del self._replica_buffer[value]

    def _retire_dead_hot_keys(self, candidates: List[Any]) -> None:
        """Forget hot keys both streams have now promised away."""
        for value in candidates:
            if all(
                value in self._punctuated[port]
                or any(p.matches(value) for p in self._wide_patterns[port])
                for port in (0, 1)
            ):
                self.hot_keys.discard(value)
                self._round_robin.pop(value, None)
                self.hot_deactivations += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        out = super().counters()
        out.update(
            hot_activations=self.hot_activations,
            hot_deactivations=self.hot_deactivations,
            replica_copies=self.replica_copies,
            hot_spread_tuples=self.hot_spread_tuples,
            hot_broadcast_tuples=self.hot_broadcast_tuples,
            hot_broadcast_punctuations=self.hot_broadcast_punctuations,
        )
        for key, value in self.sketch.counters().items():
            out[f"sketch_{key}"] = value
        return out

    def __repr__(self) -> str:
        return (
            f"HotKeyShardRouter(shards={self.n_shards}, "
            f"hot={len(self.hot_keys)}, activations={self.hot_activations})"
        )
