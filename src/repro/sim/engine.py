"""The discrete-event simulation engine.

A minimal, fast event loop: callbacks are scheduled at virtual times and
executed in time order (FIFO among equal times).  All components of a
query plan — stream sources, operators, the metrics sampler — share one
engine, so a whole experiment is a single deterministic event trace.

Virtual time is measured in **milliseconds** as a float; the paper's
tuple inter-arrival mean of 2 ms and its per-operation CPU costs (sub-
millisecond) both fit naturally.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class SimulationEngine:
    """A virtual-time event loop.

    Events are ``(time, seq, callback)`` triples in a binary heap; *seq*
    is a monotonically increasing tie-breaker so events scheduled first
    run first at equal times — this makes traces fully deterministic.

    Examples
    --------
    >>> engine = SimulationEngine()
    >>> fired = []
    >>> engine.schedule(5.0, lambda: fired.append(engine.now))
    >>> engine.schedule(2.0, lambda: fired.append(engine.now))
    >>> engine.run()
    >>> fired
    [2.0, 5.0]
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callback) -> None:
        """Run *callback* after *delay* virtual milliseconds.

        Inlines :meth:`schedule_at` — this is the hottest scheduling
        call (every operator completion goes through it), and a
        non-negative delay from ``now`` can never land in the past.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run *callback* at absolute virtual time *time*."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_many(self, events: Iterable[Tuple[float, Callback]]) -> int:
        """Schedule many ``(time, callback)`` pairs in one batch.

        Equivalent to calling :meth:`schedule_at` for each pair in
        iteration order — tie-breaking sequence numbers are assigned in
        that order, so the execution order is *identical* — but a large
        batch rebuilds the heap once (O(n + k)) instead of sifting k
        pushes through it (O(k log n)).  Bursty producers (a metrics
        sampler pre-scheduling its whole horizon, a disorder buffer
        flushing at end-of-stream) use this to avoid heap churn.

        Atomic: if any event is in the past, nothing is scheduled.
        Returns the number of events scheduled.
        """
        now = self.now
        seq = self._seq
        added: List[Tuple[float, int, Callback]] = []
        for time, callback in events:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at {time} before current time {now}"
                )
            added.append((time, seq, callback))
            seq += 1
        if not added:
            return 0
        self._seq = seq
        heap = self._heap
        if len(added) * 8 < len(heap):
            # Small batch into a big heap: individual pushes are cheaper
            # than re-heapifying everything.  Pop order is the same.
            push = heapq.heappush
            for item in added:
                push(heap, item)
        else:
            heap.extend(added)
            heapq.heapify(heap)
        return len(added)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return ``False`` when none remain."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self.now = time
        self.events_executed += 1
        callback()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once the next event would be later than this virtual
            time (the clock is advanced to ``until``).  ``None`` runs to
            exhaustion.
        max_events:
            Safety valve for tests: raise :class:`SimulationError` if
            more than this many events execute.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Hot path: run to exhaustion with no per-event bound
                # checks.  The executed counter is folded into
                # events_executed in the finally block; nothing reads it
                # mid-run.
                while heap:
                    time, _seq, callback = pop(heap)
                    self.now = time
                    executed += 1
                    callback()
                return
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return
                time, _seq, callback = pop(heap)
                self.now = time
                executed += 1
                callback()
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a scheduling loop"
                    )
            if until is not None and until > self.now:
                self.now = until
        finally:
            self.events_executed += executed
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"SimulationEngine(now={self.now:g}, pending={self.pending_events}, "
            f"executed={self.events_executed})"
        )
