"""Arrival processes for synthetic streams.

The paper's benchmark system controls "the arrival patterns and rates of
the data and punctuations"; all its experiments use a Poisson
inter-arrival time with a mean of 2 ms for tuples, and Poisson spacing
(measured in tuples) for punctuations.  These classes provide seeded,
reproducible versions of both.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import WorkloadError


class ArrivalProcess:
    """Base class: a generator of successive inter-arrival gaps."""

    def next_gap(self) -> float:
        """Return the gap (virtual milliseconds) to the next arrival."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Exponentially distributed inter-arrival gaps (a Poisson process).

    Parameters
    ----------
    mean:
        Mean inter-arrival gap in virtual milliseconds (the paper uses
        2.0 for tuples).
    rng:
        A seeded :class:`random.Random`; pass one shared instance per
        stream for reproducibility.
    """

    def __init__(self, mean: float, rng: Optional[random.Random] = None) -> None:
        if mean <= 0:
            raise WorkloadError(f"Poisson mean must be positive, got {mean!r}")
        self.mean = mean
        self.rng = rng if rng is not None else random.Random(0)

    def next_gap(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"PoissonProcess(mean={self.mean:g})"


class FixedIntervalProcess(ArrivalProcess):
    """Deterministic, constant inter-arrival gaps (useful in tests)."""

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise WorkloadError(f"interval must be positive, got {interval!r}")
        self.interval = interval

    def next_gap(self) -> float:
        return self.interval

    def __repr__(self) -> str:
        return f"FixedIntervalProcess(interval={self.interval:g})"


def poisson_tuple_spacing(mean_tuples: float, rng: random.Random) -> int:
    """Draw a punctuation spacing measured in tuples.

    The paper describes punctuations with "a Poisson inter-arrival with a
    mean of *k* tuples/punctuation": the number of tuples between two
    consecutive punctuations is exponentially distributed with mean *k*.
    We round to an integer count and clamp to at least one tuple.
    """
    if mean_tuples <= 0:
        raise WorkloadError(
            f"punctuation spacing mean must be positive, got {mean_tuples!r}"
        )
    return max(1, round(rng.expovariate(1.0 / mean_tuples)))
