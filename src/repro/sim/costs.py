"""The virtual CPU / I-O cost model.

Operators charge their work to the simulation clock through a
:class:`CostModel`.  The defaults are calibrated so that the paper's
experimental regime is reproduced faithfully *in shape*:

* tuples arrive every ~2 ms per stream (≈1 ms combined), so an operator
  whose per-tuple cost approaches 1 ms saturates and its output rate
  (per virtual time) drops — exactly the feedback that makes XJoin decay
  in Figure 7;
* probing charges per **candidate tuple resident in the probed hash
  bucket**, modelling a bucket-chain scan.  A join that purges state
  keeps buckets small and probing cheap; one that does not (XJoin)
  accretes dead tuples and slows down;
* a state-purge run charges a fixed activation cost plus a per-tuple
  scan of the whole state, modelling the paper's implementation ("the
  state purge causes the extra overhead for scanning the join state").
  This is what creates the eager/lazy purge trade-off of Figure 9;
* index building charges a state scan plus one pattern evaluation per
  (unindexed tuple × fresh punctuation) pair, the cost structure of the
  paper's Index-Build algorithm (Figure 3);
* disk operations are two orders of magnitude more expensive than
  memory operations, with a per-operation seek charge.

All costs are in virtual **milliseconds**.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual-time charges (milliseconds)."""

    # The defaults put a tuple's fixed handling cost at ~0.9 ms against
    # the paper's ~1 ms combined inter-arrival, i.e. the operator runs
    # close to saturation — the regime of the paper's testbed, and the
    # one in which state growth and purge overhead visibly move the
    # output rate (Figures 7, 9, 11, 12).

    # -- per-tuple join work ------------------------------------------------
    tuple_overhead: float = 0.9      # dequeue, hash, bookkeeping per input tuple
    probe_per_candidate: float = 0.004   # scan one resident tuple in a bucket chain
    insert: float = 0.05             # insert a tuple into the state
    drop_check: float = 0.01         # on-the-fly test against opposite punctuations
    emit_result: float = 0.002       # hand one result tuple downstream

    # -- punctuation handling -----------------------------------------------
    punct_overhead: float = 0.05     # ingest one punctuation into the store

    # -- state purge ----------------------------------------------------------
    # The fixed charge models activating the purge thread and fencing it
    # against the memory join on the shared state (the paper's second
    # thread); it dominates the per-tuple scan, which is why purging
    # *frequently* (eager, or fast punctuations) costs output rate.
    purge_fixed: float = 10.0        # activation cost of one purge run
    purge_scan_per_tuple: float = 0.0005  # test one state tuple against punctuations

    # -- punctuation index / propagation --------------------------------------
    index_fixed: float = 0.5         # activation cost of one index-build run
    index_scan_per_tuple: float = 0.002  # find tuples whose pid is null
    index_eval: float = 0.002        # evaluate one (tuple, punctuation) pair
    propagate_fixed: float = 0.2     # activation cost of one propagation run
    propagate_per_punct: float = 0.01    # check one punctuation's count field

    # -- simulated secondary storage -------------------------------------------
    disk_seek: float = 10.0          # per disk operation
    disk_write_per_tuple: float = 0.05
    disk_read_per_tuple: float = 0.05

    # -- generic downstream operators -------------------------------------------
    groupby_per_tuple: float = 0.005
    groupby_per_emit: float = 0.01
    select_per_item: float = 0.002
    project_per_item: float = 0.002

    def __post_init__(self) -> None:
        for name, value in self.as_dict().items():
            if value < 0:
                raise ConfigError(f"cost {name} must be non-negative, got {value!r}")

    # ------------------------------------------------------------------
    # Composite cost formulas
    # ------------------------------------------------------------------

    def probe_cost(self, candidates_in_bucket: int, matches: int) -> float:
        """Cost of probing a bucket holding *candidates_in_bucket* tuples."""
        return (
            self.probe_per_candidate * candidates_in_bucket
            + self.emit_result * matches
        )

    def purge_cost(self, state_tuples_scanned: int) -> float:
        """Cost of one purge run scanning the given number of tuples."""
        return self.purge_fixed + self.purge_scan_per_tuple * state_tuples_scanned

    def index_build_cost(
        self, state_tuples_scanned: int, unindexed: int, fresh_punctuations: int
    ) -> float:
        """Cost of one incremental index-build run (paper Figure 3).

        The run scans the whole state looking for ``pid == null`` tuples
        and evaluates each of the *unindexed* ones against every fresh
        punctuation until one matches; we charge the worst case.
        """
        return (
            self.index_fixed
            + self.index_scan_per_tuple * state_tuples_scanned
            + self.index_eval * unindexed * fresh_punctuations
        )

    def propagation_cost(self, punctuations_checked: int) -> float:
        """Cost of one propagation run over the punctuation set."""
        return self.propagate_fixed + self.propagate_per_punct * punctuations_checked

    def disk_write_cost(self, tuples: int) -> float:
        """Cost of flushing *tuples* to the simulated disk."""
        if tuples == 0:
            return 0.0
        return self.disk_seek + self.disk_write_per_tuple * tuples

    def disk_read_cost(self, tuples: int) -> float:
        """Cost of reading *tuples* back from the simulated disk."""
        if tuples == 0:
            return 0.0
        return self.disk_seek + self.disk_read_per_tuple * tuples

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """All cost parameters as a plain dict."""
        return {
            f.name: getattr(self, f.name) for f in self.__dataclass_fields__.values()
        }

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every cost multiplied by *factor*."""
        if factor < 0:
            raise ConfigError(f"scale factor must be non-negative, got {factor!r}")
        return CostModel(**{k: v * factor for k, v in self.as_dict().items()})

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with selected costs replaced."""
        return replace(self, **overrides)
