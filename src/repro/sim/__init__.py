"""Discrete-event simulation substrate.

The paper evaluates PJoin on wall-clock time in a Java engine.  This
reproduction instead drives every operator from a deterministic
discrete-event :class:`~repro.sim.engine.SimulationEngine` with a
virtual clock (milliseconds), and charges operator work through an
explicit :class:`~repro.sim.costs.CostModel`.  That preserves the
feedback loop the paper's results depend on — state size drives probe
cost drives output rate — while making every experiment deterministic
and independent of Python interpreter speed.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.arrivals import PoissonProcess, FixedIntervalProcess, ArrivalProcess
from repro.sim.costs import CostModel
from repro.sim.trace import Tracer, TraceEvent

__all__ = [
    "SimulationEngine",
    "ArrivalProcess",
    "PoissonProcess",
    "FixedIntervalProcess",
    "CostModel",
    "Tracer",
    "TraceEvent",
]
