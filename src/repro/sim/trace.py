"""Backwards-compatibility shim for the execution tracer.

The tracer grew into the full observability layer and moved to
:mod:`repro.obs.trace` (spans, ring buffering, exporters); this module
keeps the original import path working.  New code should import from
:mod:`repro.obs`.
"""

from repro.obs.trace import Span, TraceEvent, Tracer, get_tracer, trace_hook

__all__ = ["Tracer", "TraceEvent", "Span", "trace_hook", "get_tracer"]
