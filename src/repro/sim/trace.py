"""Optional execution tracing.

Attach a :class:`Tracer` to a :class:`~repro.sim.engine.SimulationEngine`
(``engine.tracer = Tracer()``) and instrumented components record what
they did and when — purge runs, relocations, disk joins, propagation —
as structured :class:`TraceEvent` records.  Tracing is off by default
and costs one attribute check per recording site when off.

This is a debugging and teaching aid: ``tracer.render()`` prints a
timeline of PJoin's component activity that reads like the paper's
Figure 4 in motion.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.metrics.report import format_number


class TraceEvent:
    """One recorded action."""

    __slots__ = ("time", "source", "action", "details")

    def __init__(self, time: float, source: str, action: str,
                 details: Dict[str, Any]) -> None:
        self.time = time
        self.source = source
        self.action = action
        self.details = details

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={format_number(v) if isinstance(v, (int, float)) else v}"
                          for k, v in self.details.items())
        return f"[{self.time:10.2f}ms] {self.source}: {self.action}({inner})"


class Tracer:
    """Collects :class:`TraceEvent` records, optionally filtered.

    Parameters
    ----------
    actions:
        When given, only these action names are recorded.
    limit:
        Hard cap on stored events (oldest kept); protects long runs.
    """

    def __init__(
        self,
        actions: Optional[List[str]] = None,
        limit: int = 100_000,
    ) -> None:
        self.actions = set(actions) if actions is not None else None
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def record(self, time: float, source: str, action: str, **details: Any) -> None:
        if self.actions is not None and action not in self.actions:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, source, action, details))

    def of_action(self, action: str) -> List[TraceEvent]:
        return [e for e in self.events if e.action == action]

    def render(self, max_events: int = 200) -> str:
        lines = [repr(e) for e in self.events[:max_events]]
        if len(self.events) > max_events:
            lines.append(f"... and {len(self.events) - max_events} more")
        return "\n".join(lines)

    def counts(self) -> Dict[str, int]:
        """``{action: occurrences}`` summary."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.action] = out.get(event.action, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)


def trace_hook(engine) -> Optional[Callable[..., None]]:
    """The engine's recording function, or ``None`` when tracing is off.

    Components call ``hook = trace_hook(self.engine)`` once per action
    site: ``if hook: hook(engine.now, self.name, "purge", removed=3)``.
    """
    tracer = getattr(engine, "tracer", None)
    if tracer is None:
        return None
    return tracer.record
