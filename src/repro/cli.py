"""Command-line interface: ``python -m repro <command>``.

Three commands:

* ``figures`` — run paper-figure presets (and ablations) and print their
  reports;
* ``demo`` — a one-shot PJoin-vs-XJoin comparison on a configurable
  workload;
* ``list`` — show every available experiment.

Examples
--------
::

    python -m repro list
    python -m repro figures figure5 figure7 --scale 0.5
    python -m repro figures --all --scale 0.2
    python -m repro demo --tuples 5000 --spacing-a 10 --spacing-b 20
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import PJoinConfig
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import (
    pjoin_factory,
    run_join_experiment,
    xjoin_factory,
)
from repro.metrics.report import render_table
from repro.workloads.generator import generate_workload

ALL_EXPERIMENTS = {**ALL_FIGURES, **ALL_ABLATIONS}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Joining Punctuated Streams' (EDBT 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available experiments")
    list_cmd.set_defaults(func=cmd_list)

    figures_cmd = sub.add_parser(
        "figures", help="run paper-figure presets and print their reports"
    )
    figures_cmd.add_argument(
        "names", nargs="*",
        help="experiment names (e.g. figure5 ablation_purge_sweep)",
    )
    figures_cmd.add_argument(
        "--all", action="store_true", help="run every figure and ablation"
    )
    figures_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0 = paper scale)",
    )
    figures_cmd.set_defaults(func=cmd_figures)

    demo_cmd = sub.add_parser(
        "demo", help="compare PJoin and XJoin on one synthetic workload"
    )
    demo_cmd.add_argument("--tuples", type=int, default=5000,
                          help="tuples per stream")
    demo_cmd.add_argument("--spacing-a", type=float, default=20.0,
                          help="stream A punctuation spacing (tuples)")
    demo_cmd.add_argument("--spacing-b", type=float, default=20.0,
                          help="stream B punctuation spacing (tuples)")
    demo_cmd.add_argument("--purge-threshold", type=int, default=10,
                          help="PJoin purge threshold (1 = eager)")
    demo_cmd.add_argument("--seed", type=int, default=42)
    demo_cmd.set_defaults(func=cmd_demo)

    trace_cmd = sub.add_parser(
        "trace",
        help="run a small PJoin with the execution tracer and print the "
             "component timeline (purges, relocations, disk joins, "
             "propagations)",
    )
    trace_cmd.add_argument("--tuples", type=int, default=500)
    trace_cmd.add_argument("--spacing-a", type=float, default=10.0)
    trace_cmd.add_argument("--spacing-b", type=float, default=10.0)
    trace_cmd.add_argument("--purge-threshold", type=int, default=5)
    trace_cmd.add_argument("--memory-threshold", type=int, default=None)
    trace_cmd.add_argument("--max-events", type=int, default=40,
                           help="timeline lines to print")
    trace_cmd.add_argument("--seed", type=int, default=42)
    trace_cmd.set_defaults(func=cmd_trace)

    return parser


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [name, (fn.__doc__ or "").strip().splitlines()[0]]
        for name, fn in ALL_EXPERIMENTS.items()
    ]
    print(render_table(["experiment", "description"], rows))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    names: List[str] = list(ALL_EXPERIMENTS) if args.all else args.names
    if not names:
        print("nothing to run: name experiments or pass --all", file=sys.stderr)
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; try 'repro list'",
              file=sys.stderr)
        return 2
    failures = []
    for name in names:
        result = ALL_EXPERIMENTS[name](scale=args.scale)
        print(result.render())
        print()
        if not result.all_passed:
            failures.append(name)
    if failures:
        print(f"shape-check failures: {failures}", file=sys.stderr)
        return 1
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    pjoin = run_join_experiment(
        pjoin_factory(PJoinConfig(purge_threshold=args.purge_threshold)),
        workload,
        label=f"PJoin-{args.purge_threshold}",
    )
    xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    rows = []
    for run in (pjoin, xjoin):
        summary = run.summary()
        rows.append(
            [
                summary["label"],
                summary["results"],
                round(summary["mean_state"], 1),
                summary["max_state"],
                round(summary["rate_second_half"], 2),
                round(summary["duration_ms"]),
            ]
        )
    print(
        render_table(
            ["variant", "results", "state mean", "state max",
             "late rate (t/ms)", "finished (ms)"],
            rows,
        )
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.pjoin import PJoin
    from repro.operators.sink import Sink
    from repro.query.plan import QueryPlan
    from repro.sim.trace import Tracer

    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    plan = QueryPlan()
    plan.engine.tracer = Tracer()
    join = PJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key",
        config=PJoinConfig(
            purge_threshold=args.purge_threshold,
            memory_threshold=args.memory_threshold,
            propagation_mode="push_count",
            propagate_count_threshold=max(2, args.purge_threshold),
        ),
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=False)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0, name="A")
    plan.add_source(workload.schedule_b, join, port=1, name="B")
    plan.run()
    tracer = plan.engine.tracer
    print(tracer.render(max_events=args.max_events))
    print()
    print(render_table(
        ["action", "count"], sorted(tracer.counts().items())
    ))
    print()
    stats = join.stats()
    rows = [[key, value] for key, value in stats.items()
            if not isinstance(value, (dict, tuple))]
    print(render_table(["join statistic", "value"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
