"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``figures`` — run paper-figure presets (and ablations) and print their
  reports;
* ``demo`` — a one-shot PJoin-vs-XJoin comparison on a configurable
  workload;
* ``list`` — show every available experiment;
* ``trace`` — run a traced PJoin workload *or* any experiment preset and
  print the span timeline; export Chrome trace JSON / JSONL / manifests;
* ``metrics`` — run a workload or preset and print the per-operator
  counter registries from its run manifest;
* ``obs`` — the observability group: ``obs trace`` and ``obs metrics``
  are aliases of the two commands above;
* ``chaos`` — run deterministic fault-injection scenarios (contract
  violations, disorder, disk faults, source stalls) under a chosen
  fault policy and print/check their resilience counter summaries;
* ``memory`` — the memory-governor smoke: one fig5-style workload at an
  unlimited and a tight state budget, asserting result-multiset
  equivalence and nonzero spill counters (the CI memory-smoke gate);
* ``skew`` — the skew-layer smoke: one Zipf-keyed workload joined
  statically, with adaptive split/coalesce buckets, and on the sharded
  stack with and without hot-key replication, asserting result-multiset
  equivalence, active skew counters and (with ``--check DIR``) a
  counter golden (the CI skew-smoke gate).

``figures``, ``demo``, ``shard`` and ``bench`` accept
``--memory-budget`` / ``--eviction-policy`` to attach the memory
governor (budgeted join state with spill/fault-back) to every join.

Examples
--------
::

    python -m repro list
    python -m repro figures figure5 figure7 --scale 0.5
    python -m repro figures --all --scale 0.2
    python -m repro demo --tuples 5000 --spacing-a 10 --spacing-b 20
    python -m repro trace figure8 --scale 0.1 --chrome trace.json
    python -m repro metrics --tuples 2000 --manifest run.json
    python -m repro chaos gentle disk_storm --policy quarantine
    python -m repro chaos --all --check tests/goldens
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import List, Optional

import repro
from repro.core.config import PJoinConfig
from repro.errors import ConfigError, RecoveryError
from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.harness import (
    batching,
    governed,
    pjoin_factory,
    run_join_experiment,
    sharding,
    skewed,
    tracing,
    xjoin_factory,
)
from repro.memory.budget import GovernorSpec, format_budget, parse_memory_budget
from repro.memory.policies import POLICIES
from repro.metrics.report import render_table
from repro.obs.export import render_timeline, save_chrome_trace, save_jsonl
from repro.obs.logging import LOG_LEVELS, get_logger, setup_logging
from repro.obs.trace import Tracer
from repro.resilience.chaos import CHAOS_SCENARIOS, run_chaos
from repro.resilience.policy import FAULT_POLICIES, QUARANTINE
from repro.workloads.generator import generate_workload

ALL_EXPERIMENTS = {**ALL_FIGURES, **ALL_ABLATIONS}

log = get_logger(__name__)


def _budget_type(text: str) -> float:
    """argparse type for ``--memory-budget`` (tuples or byte suffixes)."""
    try:
        return parse_memory_budget(text)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _add_memory_args(parser: argparse.ArgumentParser) -> None:
    """The memory-governor flags shared by figures/demo/shard/bench."""
    parser.add_argument(
        "--memory-budget", type=_budget_type, default=None, metavar="BUDGET",
        help="warm join-state budget: a tuple count, bytes with a "
             "b/kb/mb/gb suffix, or 'inf' (governor attached but never "
             "spilling); omit to run ungoverned",
    )
    parser.add_argument(
        "--eviction-policy", choices=sorted(POLICIES), default="lru",
        help="governor eviction policy (default %(default)s)",
    )


def _add_batch_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="admit source tuples in micro-batches of N per scheduler "
             "event (default 1); results are byte-identical to the "
             "unbatched run, only wall-clock time changes",
    )


def _add_fastpath_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="disable the specialized hot-path closures and run every "
             "join through the layered dispatch (results are "
             "byte-identical; only wall-clock time changes)",
    )


def _add_planner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--planner", choices=("static", "adaptive"), default="static",
        help="probe-order planning for n-way joins built by the presets "
             "(default %(default)s = fixed stream order, byte-identical "
             "to unplanned runs); 'adaptive' re-optimizes the order at "
             "punctuation-aligned purge boundaries",
    )


@contextlib.contextmanager
def _maybe_no_fastpath(disabled: bool):
    """Enter ``fastpath.disabled()`` when ``--no-fastpath`` was given."""
    if not disabled:
        yield
        return
    from repro.operators import fastpath

    with fastpath.disabled():
        yield


def _planner_context(args: argparse.Namespace):
    """The ``planning(...)`` context for ``--planner``, or ``None``.

    ``--planner static`` installs nothing: the default build is already
    the fixed stream order and stays byte-identical to unplanned runs.
    """
    if getattr(args, "planner", "static") != "adaptive":
        return None
    from repro.experiments.harness import planning
    from repro.planner import PlannerSpec

    return planning(PlannerSpec(mode="adaptive"))


def _governor_spec(args: argparse.Namespace) -> Optional[GovernorSpec]:
    """The GovernorSpec requested on the command line, if any."""
    budget = getattr(args, "memory_budget", None)
    if budget is None:
        return None
    return GovernorSpec(budget_tuples=budget, policy=args.eviction_policy)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Joining Punctuated Streams' (EDBT 2004)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {repro.__version__}"
    )
    parser.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="info",
        help="diagnostic verbosity on stderr (default %(default)s); "
             "report output on stdout is unaffected",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress diagnostics below error level (overrides --log-level)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines (machine-readable logs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available experiments")
    list_cmd.set_defaults(func=cmd_list)

    figures_cmd = sub.add_parser(
        "figures", help="run paper-figure presets and print their reports"
    )
    figures_cmd.add_argument(
        "names", nargs="*",
        help="experiment names (e.g. figure5 ablation_purge_sweep)",
    )
    figures_cmd.add_argument(
        "--all", action="store_true", help="run every figure and ablation"
    )
    figures_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (default 1.0 = paper scale)",
    )
    figures_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run each experiment's sweep points across N worker "
             "processes (results are identical to a serial run)",
    )
    figures_cmd.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run every join in the presets as a K-shard stack "
             "(K=1 replays the unsharded execution exactly)",
    )
    figures_cmd.add_argument(
        "--export", type=Path, default=None, metavar="DIR",
        help="also write each experiment's figure JSON (series, checks "
             "and run manifests) to DIR/<name>.json",
    )
    _add_memory_args(figures_cmd)
    _add_batch_args(figures_cmd)
    _add_fastpath_args(figures_cmd)
    _add_planner_args(figures_cmd)
    figures_cmd.set_defaults(func=cmd_figures)

    demo_cmd = sub.add_parser(
        "demo", help="compare PJoin and XJoin on one synthetic workload"
    )
    demo_cmd.add_argument("--tuples", type=int, default=5000,
                          help="tuples per stream")
    demo_cmd.add_argument("--spacing-a", type=float, default=20.0,
                          help="stream A punctuation spacing (tuples)")
    demo_cmd.add_argument("--spacing-b", type=float, default=20.0,
                          help="stream B punctuation spacing (tuples)")
    demo_cmd.add_argument("--purge-threshold", type=int, default=10,
                          help="PJoin purge threshold (1 = eager)")
    demo_cmd.add_argument("--seed", type=int, default=42)
    demo_cmd.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="run both joins as K-shard stacks",
    )
    _add_memory_args(demo_cmd)
    _add_batch_args(demo_cmd)
    _add_fastpath_args(demo_cmd)
    demo_cmd.set_defaults(func=cmd_demo)

    _add_plan_parser(sub)
    _add_shard_parser(sub)
    _add_memory_parser(sub)
    _add_skew_parser(sub)
    _add_trace_parser(sub)
    _add_metrics_parser(sub)
    _add_chaos_parser(sub)
    _add_bench_parser(sub)
    _add_profile_parser(sub)

    obs_cmd = sub.add_parser(
        "obs",
        help="observability tools: span tracing and counter registries",
        description="Observability tools built on the repro.obs layer: "
                    "'obs trace' prints and exports span timelines, "
                    "'obs metrics' prints per-operator counter registries.",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    _add_trace_parser(obs_sub)
    _add_metrics_parser(obs_sub)

    return parser


def _add_plan_parser(sub) -> None:
    plan_cmd = sub.add_parser(
        "plan",
        help="run the adaptive probe-order planner on an n-way preset "
             "and explain its decisions",
        description="Runs an n-way punctuated join over a named planner "
                    "preset with adaptive probe-order planning, prints "
                    "the planner counters and the punctuation-aligned "
                    "decision log, and (with --explain) the per-candidate "
                    "cost breakdown behind every decision.  With --check "
                    "it also runs the static plan and verifies the "
                    "adaptive run reproduced the identical result "
                    "multiset.",
    )
    plan_cmd.add_argument(
        "preset", nargs="?", default="nary_drift",
        help="planner preset name (default %(default)s); see --list",
    )
    plan_cmd.add_argument(
        "--list", action="store_true", dest="list_presets",
        help="list the available presets and exit",
    )
    plan_cmd.add_argument(
        "--scale", type=float, default=0.3,
        help="workload scale factor (default %(default)s)",
    )
    plan_cmd.add_argument(
        "--seed", type=int, default=None,
        help="override the preset's workload seed",
    )
    plan_cmd.add_argument(
        "--reopt-interval", type=int, default=2, metavar="K",
        help="re-optimize every Kth purge-complete boundary "
             "(default %(default)s)",
    )
    plan_cmd.add_argument(
        "--purge-threshold", type=int, default=8, metavar="N",
        help="join purge threshold (default %(default)s); the purge "
             "boundaries it induces are the planner's re-plan points",
    )
    plan_cmd.add_argument(
        "--explain", action="store_true",
        help="print the per-candidate cost table behind every decision",
    )
    plan_cmd.add_argument(
        "--check", action="store_true",
        help="also run the static plan and exit non-zero unless the "
             "adaptive run produced the identical result multiset",
    )
    _add_fastpath_args(plan_cmd)
    plan_cmd.set_defaults(func=cmd_plan)


def cmd_plan(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.checkpoint import cover_cut_times_n
    from repro.errors import PlannerError
    from repro.experiments.harness import run_nary_experiment
    from repro.planner import PlannerSpec, get_preset, preset_names
    from repro.sim.costs import CostModel
    from repro.workloads.nary import generate_nary_workload

    if args.list_presets:
        for name in preset_names():
            print(name)
        return 0
    try:
        spec = get_preset(args.preset, scale=args.scale)
    except PlannerError as exc:
        log.error(str(exc))
        return 2
    if args.seed is not None:
        spec = spec.with_overrides(seed=args.seed)
    workload = generate_nary_workload(spec)
    names = list(workload.stream_names)
    config = PJoinConfig(purge_threshold=args.purge_threshold)
    # Probe-heavy charging (as in fig_nary_adaptive) so order costs are
    # visible against the fixed per-tuple overhead.
    cost_model = CostModel().with_overrides(probe_per_candidate=0.04)
    planner = PlannerSpec(mode="adaptive", reopt_interval=args.reopt_interval)
    with _maybe_no_fastpath(getattr(args, "no_fastpath", False)):
        adaptive = run_nary_experiment(
            workload, config=config, planner=planner,
            cost_model=cost_model, label="adaptive",
            keep_items=args.check,
        )
        static = None
        if args.check:
            static = run_nary_experiment(
                workload, config=config,
                planner=PlannerSpec(mode="static"),
                cost_model=cost_model, label="static",
                keep_items=True,
            )
    reopt = adaptive.join.reoptimizer
    order_names = lambda order: "->".join(names[i] for i in order)  # noqa: E731
    initial = planner.initial_order or tuple(range(len(names)))
    print(f"preset:      {args.preset} (scale {args.scale}, "
          f"seed {workload.spec.seed})")
    print(f"streams:     {', '.join(names)}")
    print(f"probe order: {order_names(initial)} -> "
          f"{order_names(adaptive.join.stream_order)}")
    print(f"results:     {adaptive.results} tuples in "
          f"{adaptive.duration_ms:.0f} virtual ms")
    boundaries = cover_cut_times_n(
        workload.schedules, workload.join_fields,
        every=args.purge_threshold,
    )
    print(f"boundaries:  {reopt.boundaries} purge-complete cover cuts "
          f"(schedule predicts {len(boundaries)}), re-optimized every "
          f"{args.reopt_interval}")
    print()
    print("planner counters:")
    for key, value in sorted(reopt.counters().items()):
        print(f"  planner.{key:<22} {value:g}")
    decisions = list(reopt.decisions)
    if decisions:
        print()
        rows = [
            [
                f"{d.at_ms:.0f}",
                d.boundary,
                order_names(d.previous),
                order_names(d.chosen),
                "switch" if d.switched else "hold",
                f"{d.current_cost:.3f}",
                f"{d.best_cost:.3f}",
                f"{d.cost_delta:+.3f}",
            ]
            for d in decisions
        ]
        print(
            render_table(
                ["at (ms)", "boundary", "previous", "chosen", "action",
                 "incumbent", "best", "delta"],
                rows,
            )
        )
    if args.explain:
        for d in decisions:
            print()
            print(f"decision at {d.at_ms:.0f} ms (boundary {d.boundary}, "
                  f"{'switched' if d.switched else 'held'}):")
            print(d.choice.explain(names))
    if args.check:
        adaptive_counts = Counter(dict(adaptive.sink.result_multiset()))
        static_counts = Counter(dict(static.sink.result_multiset()))
        equivalent = adaptive_counts == static_counts
        print()
        print(
            "equivalence: adaptive "
            + ("reproduced" if equivalent else "DIVERGED FROM")
            + f" the static result multiset ({static.results} tuples)"
        )
        if not equivalent:
            return 1
    return 0


def _add_shard_parser(sub) -> None:
    shard_cmd = sub.add_parser(
        "shard",
        help="demo the sharded join stack and check backend equivalence",
        description="Run one PJoin workload unsharded and as a K-shard "
                    "stack (in-simulator and/or multiprocess backend), "
                    "print per-variant results and verify the sharded "
                    "runs reproduce the unsharded output exactly.",
    )
    shard_cmd.add_argument("--tuples", type=int, default=4000,
                           help="tuples per stream")
    shard_cmd.add_argument("--spacing-a", type=float, default=40.0,
                           help="stream A punctuation spacing (tuples)")
    shard_cmd.add_argument("--spacing-b", type=float, default=40.0,
                           help="stream B punctuation spacing (tuples)")
    shard_cmd.add_argument("--purge-threshold", type=int, default=10,
                           help="PJoin purge threshold (1 = eager)")
    shard_cmd.add_argument("--seed", type=int, default=42)
    shard_cmd.add_argument(
        "--shards", type=_int_list, default=[1, 2, 4], metavar="K[,K...]",
        help="comma-separated shard counts to run (default 1,2,4)",
    )
    shard_cmd.add_argument(
        "--backend", choices=["sim", "mp", "both"], default="sim",
        help="in-simulator backend, multiprocess backend, or both",
    )
    shard_cmd.add_argument(
        "--propagate", action="store_true",
        help="enable punctuation propagation (merged output punctuations); "
             "exact punctuation equivalence needs --purge-threshold 1, as "
             "lazy purge batches land on different boundaries per shard",
    )
    shard_cmd.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="N",
        help="checkpoint every Nth punctuation-cover boundary in the "
             "--crash and --rescale variants (default 8)",
    )
    shard_cmd.add_argument(
        "--crash", default=None, metavar="SHARD@N",
        help="add a supervised-recovery row per shard count: kill shard "
             "SHARD's worker before its Nth delivery, restore the latest "
             "checkpoint and replay the in-flight suffix",
    )
    shard_cmd.add_argument(
        "--rescale", default=None, metavar="K1:K2@T",
        help="add a live-rescaling row: run K1 shards, quiesce at the "
             "first punctuation-cover boundary at/after virtual time T "
             "(T=mid for half the workload), migrate the checkpointed "
             "state across K2 shards and resume",
    )
    shard_cmd.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every sharded run matches the "
             "unsharded reference",
    )
    _add_memory_args(shard_cmd)
    shard_cmd.set_defaults(func=cmd_shard)


def _add_memory_parser(sub) -> None:
    memory_cmd = sub.add_parser(
        "memory",
        help="memory-governor smoke: unlimited vs tight budget on one "
             "fig5-style workload, with equivalence and spill checks",
        description="Runs PJoin and XJoin over one figure-5-style "
                    "workload twice — with an unlimited and a tight "
                    "memory budget — and verifies the governed runs "
                    "reproduce the same result multiset while the tight "
                    "budget actually spills (the CI memory-smoke gate).",
    )
    memory_cmd.add_argument("--tuples", type=int, default=2000,
                            help="tuples per stream")
    memory_cmd.add_argument("--spacing-a", type=float, default=40.0,
                            help="stream A punctuation spacing (tuples)")
    memory_cmd.add_argument("--spacing-b", type=float, default=40.0,
                            help="stream B punctuation spacing (tuples)")
    memory_cmd.add_argument("--seed", type=int, default=5)
    memory_cmd.add_argument(
        "--budget", type=_budget_type, default="100", metavar="BUDGET",
        help="the tight warm-state budget (default %(default)s tuples)",
    )
    memory_cmd.add_argument(
        "--eviction-policy", choices=sorted(POLICIES), default="lru",
        help="governor eviction policy (default %(default)s)",
    )
    memory_cmd.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless every governed run reproduces the "
             "ungoverned result multiset and the tight budget spills",
    )
    memory_cmd.set_defaults(func=cmd_memory)


def cmd_memory(args: argparse.Namespace) -> int:
    import math

    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    if math.isinf(args.budget):
        log.error("--budget must be finite (the unlimited run is implicit)")
        return 2
    factories = [
        ("PJoin-1", lambda: pjoin_factory(PJoinConfig(purge_threshold=1))),
        ("XJoin", lambda: xjoin_factory()),
    ]
    budgets = [
        ("inf", GovernorSpec(math.inf, policy=args.eviction_policy)),
        (format_budget(args.budget),
         GovernorSpec(args.budget, policy=args.eviction_policy)),
    ]
    rows = []
    failures: List[str] = []
    for algo, make_factory in factories:
        reference = None  # the ungoverned result multiset
        for tag, spec in [("none", None)] + budgets:
            label = f"{algo} b={tag}"
            with governed(spec) if spec is not None \
                    else contextlib.nullcontext():
                run = run_join_experiment(
                    make_factory(), workload, label=label, keep_items=True
                )
            multiset = run.sink.result_multiset()
            spills = run.join.counters().get("governor.spills", 0)
            if reference is None:
                reference = multiset
                equivalent = "-"
            else:
                match = multiset == reference
                equivalent = "ok" if match else "MISMATCH"
                if not match:
                    failures.append(f"{label}: result multiset drifted "
                                    f"from the ungoverned run")
            rows.append([label, run.results, spills, equivalent,
                         round(run.duration_ms)])
            if spec is not None and not spec.unlimited and spills == 0:
                failures.append(f"{label}: tight budget never spilled")
    print(render_table(
        ["variant", "results", "spills", "equivalent", "finished (ms)"],
        rows,
    ))
    if failures:
        for failure in failures:
            log.error("memory smoke: %s", failure)
        if args.check:
            log.error("memory governor smoke FAILED")
            return 1
    elif args.check:
        print("memory governor smoke passed")
    return 0


def _add_skew_parser(sub) -> None:
    skew_cmd = sub.add_parser(
        "skew",
        help="skew-layer smoke: static vs adaptive buckets and sharded "
             "hot-key replication on one Zipf workload, with "
             "equivalence and counter checks",
        description="Runs one Zipf-keyed workload four ways — static "
                    "PJoin, adaptive split/coalesce buckets, sharded "
                    "with the stock hash router, and sharded with "
                    "hot-key replication — and verifies every variant "
                    "reproduces the static result multiset while the "
                    "skew machinery actually engages (the CI "
                    "skew-smoke gate).",
    )
    skew_cmd.add_argument("--tuples", type=int, default=3000,
                          help="tuples per stream")
    skew_cmd.add_argument("--zipf", type=float, default=1.4,
                          help="Zipf exponent of the join-key draw")
    skew_cmd.add_argument("--active-values", type=int, default=48,
                          help="active join-value window size")
    skew_cmd.add_argument("--spacing-a", type=float, default=40.0,
                          help="stream A punctuation spacing (tuples)")
    skew_cmd.add_argument("--spacing-b", type=float, default=40.0,
                          help="stream B punctuation spacing (tuples)")
    skew_cmd.add_argument("--seed", type=int, default=7)
    skew_cmd.add_argument("--shards", type=int, default=4,
                          help="shard count for the sharded variants")
    skew_cmd.add_argument("--partitions", type=int, default=8,
                          help="base hash partitions per join side")
    skew_cmd.add_argument(
        "--check", type=Path, default=None, metavar="DIR",
        help="diff the counter summary against DIR/skew_smoke.json and "
             "fail on drift or any failed gate (the CI skew-smoke gate)",
    )
    skew_cmd.set_defaults(func=cmd_skew)


def cmd_skew(args: argparse.Namespace) -> int:
    from repro.skew import SkewSpec

    if args.shards < 2:
        log.error("--shards must be >= 2 (hot keys replicate across shards)")
        return 2
    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        active_values=args.active_values,
        zipf_exponent=args.zipf,
        seed=args.seed,
    )
    config = PJoinConfig(n_partitions=args.partitions, purge_threshold=1)
    variants = [
        ("static", contextlib.nullcontext()),
        ("adaptive", skewed(SkewSpec())),
        ("sharded static", sharding(args.shards)),
        ("sharded hot-key", contextlib.ExitStack()),
    ]
    hotkey_spec = SkewSpec(hot_keys=True, adaptive=False)
    runs = []
    for label, ctx in variants:
        with ctx as entered:
            if label == "sharded hot-key":
                entered.enter_context(sharding(args.shards))
                entered.enter_context(skewed(hotkey_spec))
            runs.append(run_join_experiment(
                pjoin_factory(config), workload, label=label, keep_items=True
            ))
    reference = runs[0].sink.result_multiset()
    failures: List[str] = []
    rows = []
    for run in runs:
        if run is runs[0]:
            equivalent = "-"
        else:
            match = run.sink.result_multiset() == reference
            equivalent = "ok" if match else "MISMATCH"
            if not match:
                failures.append(f"{run.label}: result multiset drifted "
                                f"from the static run")
        rows.append([run.label, run.results, equivalent,
                     round(run.duration_ms)])
    print(render_table(["variant", "results", "equivalent", "finished (ms)"],
                       rows))
    adaptive_counters = runs[1].join.counters()
    router_counters = runs[3].join.router.counters()
    if not adaptive_counters.get("skew.splits"):
        failures.append("adaptive: no bucket ever split")
    if not router_counters.get("hot_activations"):
        failures.append("sharded hot-key: no key ever activated")
    if not router_counters.get("replica_copies"):
        failures.append("sharded hot-key: no build history was replicated")
    summary = {"results": runs[0].results}
    for key in ("splits", "coalesces", "entries_moved", "leaf_partitions"):
        summary[f"adaptive.{key}"] = adaptive_counters[f"skew.{key}"]
    for key in ("hot_activations", "hot_deactivations", "replica_copies",
                "hot_spread_tuples", "hot_broadcast_tuples",
                "hot_broadcast_punctuations"):
        summary[f"hotkey.{key}"] = router_counters[key]
    summary["hotkey.replica_inserts"] = (
        runs[3].join.counters().get("replica_inserts", 0)
    )
    print(render_table(
        ["counter (skew smoke)", "value"],
        [[key, value] for key, value in summary.items()],
    ))
    drifted = False
    if args.check is not None:
        golden_path = args.check / "skew_smoke.json"
        if not golden_path.exists():
            log.error("missing golden: %s", golden_path)
            drifted = True
        else:
            golden = json.loads(golden_path.read_text())
            if golden != summary:
                drifted = True
                for key in sorted(set(golden) | set(summary)):
                    expected, got = golden.get(key), summary.get(key)
                    if expected != got:
                        log.error("  drift in skew_smoke.%s: golden=%r run=%r",
                                  key, expected, got)
    for failure in failures:
        log.error("skew smoke: %s", failure)
    if drifted:
        log.error("skew counter drift against %s", args.check)
    if args.check is not None:
        if failures or drifted:
            log.error("skew smoke FAILED")
            return 1
        print("skew smoke passed")
    return 0


def _int_list(text: str) -> List[int]:
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(f"shard counts must be >= 1: {text!r}")
    return values


def cmd_shard(args: argparse.Namespace) -> int:
    from repro.shard.backend import run_sharded_multiprocess

    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    config = PJoinConfig(
        purge_threshold=args.purge_threshold,
        propagation_mode="push_count" if args.propagate else "off",
    )
    spec = _governor_spec(args)
    with governed(spec) if spec is not None else contextlib.nullcontext():
        base = run_join_experiment(
            pjoin_factory(config), workload, label="unsharded", keep_items=True
        )
    base_results = base.sink.result_multiset()
    base_puncts: dict = {}
    for punct in base.sink.punctuations:
        key = punct.patterns[0]
        base_puncts[key] = base_puncts.get(key, 0) + 1

    rows = [["unsharded", "sim", base.results, base.punctuations_out,
             "-", round(base.duration_ms)]]
    backends = ("sim", "mp") if args.backend == "both" else (args.backend,)
    all_match = True
    for k in args.shards:
        for backend in backends:
            if backend == "sim":
                with contextlib.ExitStack() as stack:
                    stack.enter_context(sharding(k))
                    if spec is not None:
                        stack.enter_context(governed(spec))
                    run = run_join_experiment(
                        pjoin_factory(config), workload,
                        label=f"sharded-K{k}", keep_items=True,
                    )
                results, punct_count = run.results, run.punctuations_out
                result_ms = run.sink.result_multiset()
                punct_ms: dict = {}
                for punct in run.sink.punctuations:
                    key = punct.patterns[0]
                    punct_ms[key] = punct_ms.get(key, 0) + 1
                duration = round(run.duration_ms)
            else:
                outcome = run_sharded_multiprocess(
                    workload, k, config=config, governor=spec
                )
                results, punct_count = (
                    outcome.result_count, len(outcome.punctuations)
                )
                result_ms = outcome.result_multiset()
                punct_ms = outcome.punctuation_multiset()
                duration = round(outcome.virtual_now)
            match = result_ms == base_results and punct_ms == base_puncts
            all_match = all_match and match
            rows.append([f"K={k}", backend, results, punct_count,
                         "ok" if match else "MISMATCH", duration])
    if args.crash is not None:
        from repro.checkpoint.recovery import CrashSpec, run_sharded_resilient

        try:
            shard_str, after_str = args.crash.split("@", 1)
            crash = CrashSpec(int(shard_str), int(after_str))
        except (ValueError, RecoveryError) as exc:
            log.error("malformed --crash spec %r (expected SHARD@N): %s",
                      args.crash, exc)
            return 2
        for k in args.shards:
            if not 0 <= crash.shard < k:
                continue  # this shard count cannot host the crashed worker
            outcome = run_sharded_resilient(
                workload, k, config=config, keep_items=True, governor=spec,
                checkpoint_every=args.checkpoint_every, crash=crash,
            )
            match = (outcome.result_multiset() == base_results
                     and outcome.punctuation_multiset() == base_puncts)
            all_match = all_match and match
            rows.append([f"K={k}", "mp+crash", outcome.result_count,
                         len(outcome.punctuations),
                         "ok" if match else "MISMATCH",
                         round(outcome.virtual_now)])
    if args.rescale is not None:
        from repro.checkpoint.rescale import RescalePlan, run_sharded_rescale

        spec_str = args.rescale
        if spec_str.endswith("@mid"):
            spec_str = spec_str[: -len("mid")] + str(workload.end_time / 2)
        try:
            rescale = RescalePlan.parse(spec_str)
        except RecoveryError as exc:
            log.error("bad --rescale spec %r: %s", args.rescale, exc)
            return 2
        outcome = run_sharded_rescale(
            workload, rescale, config=config, keep_items=True, governor=spec,
            checkpoint_every=args.checkpoint_every,
        )
        match = (outcome.result_multiset() == base_results
                 and outcome.punctuation_multiset() == base_puncts)
        all_match = all_match and match
        rows.append([f"K={rescale.n_before}->{rescale.n_after}", "rescale",
                     outcome.result_count, len(outcome.punctuations),
                     "ok" if match else "MISMATCH",
                     round(outcome.virtual_now)])
    print(render_table(
        ["variant", "backend", "results", "puncts out", "equivalent",
         "finished (ms)"],
        rows,
    ))
    if args.check and not all_match:
        log.error("sharded equivalence check FAILED")
        return 1
    if args.check:
        print("sharded equivalence check passed")
    return 0


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    """Flags for the ad-hoc PJoin workload (used when no preset is named)."""
    parser.add_argument("--tuples", type=int, default=500)
    parser.add_argument("--spacing-a", type=float, default=10.0)
    parser.add_argument("--spacing-b", type=float, default=10.0)
    parser.add_argument("--purge-threshold", type=int, default=5)
    parser.add_argument("--memory-threshold", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--fault-policy", choices=sorted(FAULT_POLICIES), default="strict",
        help="punctuation-contract fault policy for the ad-hoc PJoin "
             "(quarantine adds dead-letter counters to the registry)",
    )


def _add_export_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--chrome", type=Path, default=None, metavar="PATH",
        help="write the span trace as Chrome trace-event JSON "
             "(load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--jsonl", type=Path, default=None, metavar="PATH",
        help="write the raw trace events as JSON lines",
    )
    parser.add_argument(
        "--manifest", type=Path, default=None, metavar="PATH",
        help="write the run manifest(s) as JSON "
             "(diff two with tools/compare_runs.py)",
    )


def _add_trace_parser(sub) -> None:
    trace_cmd = sub.add_parser(
        "trace",
        help="run a traced PJoin workload or experiment preset and print "
             "the component timeline (purges, relocations, disk joins, "
             "propagations)",
    )
    trace_cmd.add_argument(
        "target", nargs="?", default=None,
        help="optional experiment preset to trace (e.g. figure8; "
             "see 'repro list'); omit to trace an ad-hoc PJoin workload",
    )
    trace_cmd.add_argument(
        "--scale", type=float, default=0.1,
        help="workload scale factor for preset targets (default 0.1)",
    )
    _add_workload_args(trace_cmd)
    trace_cmd.add_argument("--max-events", type=int, default=40,
                           help="timeline lines to print")
    _add_export_args(trace_cmd)
    trace_cmd.set_defaults(func=cmd_trace)


def _add_metrics_parser(sub) -> None:
    metrics_cmd = sub.add_parser(
        "metrics",
        help="run a workload or experiment preset and print the "
             "per-operator counter registries from its run manifest",
    )
    metrics_cmd.add_argument(
        "target", nargs="?", default=None,
        help="optional experiment preset (e.g. figure8); omit for an "
             "ad-hoc PJoin workload",
    )
    metrics_cmd.add_argument(
        "--scale", type=float, default=0.1,
        help="workload scale factor for preset targets (default 0.1)",
    )
    _add_workload_args(metrics_cmd)
    metrics_cmd.add_argument(
        "--manifest", type=Path, default=None, metavar="PATH",
        help="also write the run manifest(s) as JSON",
    )
    metrics_cmd.set_defaults(func=cmd_metrics)


def _add_chaos_parser(sub) -> None:
    chaos_cmd = sub.add_parser(
        "chaos",
        help="run deterministic fault-injection scenarios and print "
             "their resilience counter summaries",
        description="Chaos harness: each preset composes seeded faults "
                    "(contract violations, disorder, duplicates, disk "
                    "faults, stalls) into one deterministic run; same "
                    "preset + seed always yields identical counters.",
    )
    chaos_cmd.add_argument(
        "names", nargs="*",
        help=f"scenario presets ({', '.join(sorted(CHAOS_SCENARIOS))}); "
             "omit with --all to run every preset",
    )
    chaos_cmd.add_argument(
        "--all", action="store_true", help="run every chaos preset"
    )
    chaos_cmd.add_argument(
        "--policy", choices=sorted(FAULT_POLICIES), default=QUARANTINE,
        help="fault policy for the join under chaos (default quarantine; "
             "strict will raise on scenarios that inject violations)",
    )
    chaos_cmd.add_argument(
        "--seed", type=int, default=None,
        help="override the scenario's seed",
    )
    chaos_cmd.add_argument(
        "--manifest", type=Path, default=None, metavar="PATH",
        help="write the run manifest(s), resilience section included",
    )
    chaos_cmd.add_argument(
        "--check", type=Path, default=None, metavar="DIR",
        help="diff each summary against DIR/chaos_<name>.json and fail "
             "on any counter drift (the CI chaos-smoke gate)",
    )
    chaos_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run scenarios across N worker processes (each scenario is "
             "deterministic, so counters are identical to a serial run)",
    )
    chaos_cmd.set_defaults(func=cmd_chaos)


def _add_bench_parser(sub) -> None:
    bench_cmd = sub.add_parser(
        "bench",
        help="run the wall-clock benchmark-regression harness and write "
             "a BENCH_<rev>.json report",
        description="Runs pinned paper-scale workloads, measures wall "
                    "seconds / events per second / peak RSS, writes a "
                    "BENCH_<rev>.json report, and compares against the "
                    "committed baseline (benchmarks/bench_baseline.json).",
    )
    # Lazy import keeps `repro --help` cheap; the parser args live with
    # the harness so tools/bench.py shares them.
    from repro.perf.bench import add_bench_args, cmd_bench

    add_bench_args(bench_cmd)
    bench_cmd.set_defaults(func=cmd_bench)


def _add_profile_parser(sub) -> None:
    profile_cmd = sub.add_parser(
        "profile",
        help="attribute hot-path wall time to feature layers (core vs "
             "obs vs resilience vs governor vs shard) with latency "
             "histograms and flame-graph exports",
        description="Runs a pinned profiling preset with scoped timers "
                    "shadowing the hot-path callables, prints the "
                    "per-layer overhead table and virtual-time latency "
                    "histograms (result latency, purge lag, probe "
                    "cost), and optionally the unprofiled on/off "
                    "feature grid (--grid), collapsed-stack/speedscope "
                    "exports, or the CI profiling contract (--check).",
    )
    # Lazy import keeps `repro --help` cheap; the parser args live with
    # the runner so `python -m repro.profiling.runner` shares them.
    from repro.profiling.runner import add_profile_args, cmd_profile

    add_profile_args(profile_cmd)
    profile_cmd.set_defaults(func=cmd_profile)


def cmd_chaos(args: argparse.Namespace) -> int:
    names: List[str] = list(CHAOS_SCENARIOS) if args.all else args.names
    if not names:
        log.error("nothing to run: name scenarios or pass --all")
        return 2
    unknown = [n for n in names if n not in CHAOS_SCENARIOS]
    if unknown:
        log.error("unknown chaos scenarios: %s; presets: %s",
                  unknown, sorted(CHAOS_SCENARIOS))
        return 2
    jobs = getattr(args, "jobs", 1)
    if jobs > 1:
        from repro.perf.parallel import ParallelSweepRunner

        runs = ParallelSweepRunner(jobs).run_chaos_scenarios(
            names, policy=args.policy, seed=args.seed
        )
    else:
        runs = [
            run_chaos(name, policy=args.policy, seed=args.seed) for name in names
        ]
    drifted = []
    for name, run in zip(names, runs):
        print(f"{run.scenario.name}: {run.scenario.description}")
        rows = [[key, value] for key, value in run.summary.items()]
        print(render_table([f"counter ({run.manifest['label']})", "value"],
                           rows))
        if run.join.dead_letters:
            print(f"dead-letter store: {len(run.join.dead_letters)} tuples "
                  f"({run.join.dead_letters.counters()})")
        print()
        if args.check is not None:
            golden_path = args.check / f"chaos_{name}.json"
            if not golden_path.exists():
                log.error("missing golden: %s", golden_path)
                drifted.append(name)
                continue
            golden = json.loads(golden_path.read_text())
            if golden != run.summary:
                drifted.append(name)
                keys = sorted(set(golden) | set(run.summary))
                for key in keys:
                    expected, got = golden.get(key), run.summary.get(key)
                    if expected != got:
                        log.error("  drift in %s.%s: golden=%r run=%r",
                                  name, key, expected, got)
    if args.manifest is not None:
        _write_manifests(runs, args.manifest)
    if drifted:
        log.error("chaos counter drift: %s", drifted)
        return 1
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    rows = [
        [name, (fn.__doc__ or "").strip().splitlines()[0]]
        for name, fn in ALL_EXPERIMENTS.items()
    ]
    print(render_table(["experiment", "description"], rows))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    names: List[str] = list(ALL_EXPERIMENTS) if args.all else args.names
    if not names:
        log.error("nothing to run: name experiments or pass --all")
        return 2
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        log.error("unknown experiments: %s; try 'repro list'", unknown)
        return 2
    jobs = getattr(args, "jobs", 1)
    shards = getattr(args, "shards", None)
    spec = _governor_spec(args)
    batch_size = getattr(args, "batch_size", None)
    if shards is not None and jobs > 1:
        # Worker processes re-import the experiment module and would not
        # see the parent's sharding context.
        log.error("--shards cannot be combined with --jobs > 1")
        return 2
    if spec is not None and jobs > 1:
        # Same re-import problem: the governed() context would not reach
        # the sweep workers.
        log.error("--memory-budget cannot be combined with --jobs > 1")
        return 2
    if batch_size is not None and jobs > 1:
        # Same re-import problem for the batching() context.
        log.error("--batch-size cannot be combined with --jobs > 1")
        return 2
    no_fastpath = getattr(args, "no_fastpath", False)
    if no_fastpath and jobs > 1:
        # Same re-import problem for the fastpath context.
        log.error("--no-fastpath cannot be combined with --jobs > 1")
        return 2
    planner_ctx = _planner_context(args)
    if planner_ctx is not None and jobs > 1:
        # The planning() context would not reach re-importing sweep
        # workers either, but the serial path runs the identical
        # experiments — degrade instead of refusing.
        log.warning(
            "--planner adaptive cannot fan out over worker processes; "
            "falling back to a serial run (--jobs 1)"
        )
        jobs = 1
    runner = None
    if jobs > 1:
        from repro.perf.parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(jobs)
    failures = []
    with contextlib.ExitStack() as stack:
        if shards is not None:
            stack.enter_context(sharding(shards))
        if spec is not None:
            stack.enter_context(governed(spec))
        if batch_size is not None:
            try:
                stack.enter_context(batching(batch_size))
            except ValueError as exc:
                log.error(str(exc))
                return 2
        stack.enter_context(_maybe_no_fastpath(no_fastpath))
        if planner_ctx is not None:
            stack.enter_context(planner_ctx)
        export_dir = getattr(args, "export", None)
        if export_dir is not None:
            from repro.experiments.export import save_figure_json

            export_dir.mkdir(parents=True, exist_ok=True)
        for name in names:
            if runner is not None:
                result = runner.run_experiment(name, scale=args.scale)
            else:
                result = ALL_EXPERIMENTS[name](scale=args.scale)
            print(result.render())
            print()
            if export_dir is not None:
                save_figure_json(result, export_dir / f"{name}.json")
            if not result.all_passed:
                failures.append(name)
    if failures:
        log.error("shape-check failures: %s", failures)
        return 1
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    shards = getattr(args, "shards", None)
    spec = _governor_spec(args)
    batch_size = getattr(args, "batch_size", None)
    with contextlib.ExitStack() as stack:
        if shards is not None:
            stack.enter_context(sharding(shards))
        if spec is not None:
            stack.enter_context(governed(spec))
        if batch_size is not None:
            try:
                stack.enter_context(batching(batch_size))
            except ValueError as exc:
                log.error(str(exc))
                return 2
        stack.enter_context(
            _maybe_no_fastpath(getattr(args, "no_fastpath", False))
        )
        pjoin = run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=args.purge_threshold)),
            workload,
            label=f"PJoin-{args.purge_threshold}",
        )
        xjoin = run_join_experiment(xjoin_factory(), workload, label="XJoin")
    rows = []
    for run in (pjoin, xjoin):
        summary = run.summary()
        rows.append(
            [
                summary["label"],
                summary["results"],
                round(summary["mean_state"], 1),
                summary["max_state"],
                round(summary["rate_second_half"], 2),
                round(summary["duration_ms"]),
            ]
        )
    print(
        render_table(
            ["variant", "results", "state mean", "state max",
             "late rate (t/ms)", "finished (ms)"],
            rows,
        )
    )
    return 0


def _traced_runs(args: argparse.Namespace, tracer: Tracer):
    """Run the requested preset or ad-hoc workload under *tracer*.

    Returns the list of :class:`ExperimentRun` objects, or ``None`` when
    the preset name is unknown (an error was already printed).
    """
    if args.target is not None:
        if args.target not in ALL_EXPERIMENTS:
            log.error("unknown experiment: %r; try 'repro list'", args.target)
            return None
        with tracing(tracer):
            result = ALL_EXPERIMENTS[args.target](scale=args.scale)
        return list(result.runs)
    workload = generate_workload(
        n_tuples_per_stream=args.tuples,
        punct_spacing_a=args.spacing_a,
        punct_spacing_b=args.spacing_b,
        seed=args.seed,
    )
    config = PJoinConfig(
        purge_threshold=args.purge_threshold,
        memory_threshold=args.memory_threshold,
        propagation_mode="push_count",
        propagate_count_threshold=max(2, args.purge_threshold),
        fault_policy=getattr(args, "fault_policy", "strict"),
    )
    run = run_join_experiment(
        pjoin_factory(config),
        workload,
        label=f"PJoin-{args.purge_threshold}",
        keep_items=False,
        tracer=tracer,
    )
    return [run]


def _write_manifests(runs, path: Path) -> None:
    """Write one manifest (single run) or a ``{label: manifest}`` map."""
    if len(runs) == 1:
        payload = runs[0].manifest
    else:
        payload = {run.label: run.manifest for run in runs}
    path.write_text(json.dumps(payload, indent=1))
    print(f"wrote manifest: {path}")


def cmd_trace(args: argparse.Namespace) -> int:
    tracer = Tracer()
    runs = _traced_runs(args, tracer)
    if runs is None:
        return 2
    print(render_timeline(tracer, max_events=args.max_events))
    print()
    print(render_table(
        ["action", "count"], sorted(tracer.counts().items())
    ))
    for run in runs:
        stats = getattr(run.join, "stats", None)
        if stats is None:
            continue
        print()
        rows = [[key, value] for key, value in stats().items()
                if not isinstance(value, (dict, tuple))]
        print(render_table([f"join statistic ({run.label})", "value"], rows))
    if args.chrome is not None:
        save_chrome_trace(tracer, args.chrome)
        print(f"\nwrote Chrome trace: {args.chrome}")
    if args.jsonl is not None:
        save_jsonl(tracer, args.jsonl)
        print(f"wrote JSONL trace: {args.jsonl}")
    if args.manifest is not None:
        _write_manifests(runs, args.manifest)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    runs = _traced_runs(args, Tracer())
    if runs is None:
        return 2
    for run in runs:
        rows = []
        for op_name, counters in run.manifest.get("counters", {}).items():
            for counter, value in counters.items():
                rows.append([op_name, counter,
                             round(value, 3) if isinstance(value, float)
                             else value])
        print(render_table(
            [f"operator ({run.label})", "counter", "value"], rows
        ))
        print()
    if args.manifest is not None:
        _write_manifests(runs, args.manifest)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(
        level=args.log_level, json_lines=args.log_json, quiet=args.quiet
    )
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
