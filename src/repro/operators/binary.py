"""Shared structure of binary hash equi-joins.

All binary joins in this library (symmetric hash join, XJoin, window
join, PJoin) share: two input ports, one partitioned hash state per
input, a join field per side, and a concatenated output schema.  This
base class owns that plumbing; subclasses implement the actual probe /
insert / purge policies.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import OperatorError
from repro.operators.base import Operator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.storage.hash_table import PartitionedHashTable
from repro.storage.partition import StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

LEFT = 0
RIGHT = 1


class BinaryHashJoin(Operator):
    """Base class for binary hash equi-joins.

    Parameters
    ----------
    left_schema, right_schema:
        Input schemas (port 0 is left, port 1 is right).
    left_field, right_field:
        Join attribute on each side.
    n_partitions:
        Hash bucket count for both states.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        n_partitions: int = 16,
        name: str = "",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=2, name=name)
        self.schemas = [left_schema, right_schema]
        self.join_fields = [left_field, right_field]
        self.join_indices = [
            left_schema.index_of(left_field),
            right_schema.index_of(right_field),
        ]
        self.out_schema = left_schema.concat(
            right_schema, name=self.name + ".out"
        )
        self.states: List[PartitionedHashTable] = [
            PartitionedHashTable(n_partitions),
            PartitionedHashTable(n_partitions),
        ]
        self.results_produced = 0
        # Memory-join counters, bumped by every subclass's probe path.
        self.probes = 0
        self.probe_matches = 0
        self.insertions = 0

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    @staticmethod
    def other(side: int) -> int:
        """The opposite side index."""
        if side not in (LEFT, RIGHT):
            raise OperatorError(f"side must be 0 or 1, got {side}")
        return 1 - side

    def join_value(self, tup: Tuple, side: int) -> Any:
        """Extract the join value of a tuple arriving on *side*."""
        return tup.values[self.join_indices[side]]

    def emit_pair(self, entry_a: StateEntry, entry_b: StateEntry, a_side: int) -> None:
        """Emit the join of two state entries, left values first."""
        if a_side == LEFT:
            left, right = entry_a.tup, entry_b.tup
        else:
            left, right = entry_b.tup, entry_a.tup
        self._outbox.append(
            Tuple.fresh(self.out_schema, left.values + right.values, self.engine.now)
        )
        self.results_produced += 1

    def emit_join(self, new_tuple: Tuple, entry: StateEntry, new_side: int) -> None:
        """Emit the join of an arriving tuple with a state entry."""
        if new_side == LEFT:
            values = new_tuple.values + entry.tup.values
        else:
            values = entry.tup.values + new_tuple.values
        self._outbox.append(Tuple.fresh(self.out_schema, values, self.engine.now))
        self.results_produced += 1

    def emit_joins(self, new_tuple: Tuple, entries: List[StateEntry], new_side: int) -> None:
        """Emit the joins of an arriving tuple with many state entries.

        The memory join's inner loop: one probe can match hundreds of
        entries, so the per-result constant factor (attribute lookups,
        method dispatch) is hoisted out of the loop here.
        """
        out_schema = self.out_schema
        now = self.engine.now
        outbox = self._outbox
        fresh = Tuple.fresh
        new_values = new_tuple.values
        if new_side == LEFT:
            for entry in entries:
                outbox.append(fresh(out_schema, new_values + entry.tup.values, now))
        else:
            for entry in entries:
                outbox.append(fresh(out_schema, entry.tup.values + new_values, now))
        self.results_produced += len(entries)

    def counters(self) -> dict:
        out = super().counters()
        out.update(
            results_produced=self.results_produced,
            probes=self.probes,
            probe_matches=self.probe_matches,
            insertions=self.insertions,
            state_total=self.total_state_size(),
            state_memory=self.memory_state_size(),
        )
        return out

    # ------------------------------------------------------------------
    # State-size metrics (sampled by the metrics collector)
    # ------------------------------------------------------------------

    def state_size(self, side: int) -> int:
        """Total state tuples (memory + disk) on one side."""
        return self.states[side].total_count

    def total_state_size(self) -> int:
        """Total state tuples across both sides — the paper's metric."""
        return self.states[LEFT].total_count + self.states[RIGHT].total_count

    def memory_state_size(self) -> int:
        """Memory-resident state tuples across both sides."""
        return self.states[LEFT].memory_count + self.states[RIGHT].memory_count
