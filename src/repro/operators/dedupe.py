"""XJoin-style timestamp duplicate prevention.

When a join state is split between memory and disk, the same result
pair could be produced by up to three stages: the per-tuple memory join
(stage 1), the reactive disk-to-memory join (stage 2) and the clean-up
join at end-of-stream (stage 3).  XJoin prevents duplicates with
timestamps rather than result logs, and this module implements those
rules for both XJoin and PJoin's disk join.

Each state entry records its memory-residency interval ``[ats, dts)``
(``dts = inf`` while memory-resident; spilling a partition stamps all
its entries with the flush time).  Each hybrid partition records the
virtual times at which its disk portion was probed against the opposite
memory portion (its *probe history*).

Rules
-----
* A pair was produced by **stage 1** iff the later-arriving tuple
  arrived while the earlier one was still memory-resident: the arriving
  tuple's probe then found the earlier tuple in memory.
* A pair was produced by **stage 2** iff some probe of one tuple's disk
  portion happened (a) after that tuple was flushed, (b) while the other
  tuple was memory-resident, and (c) the other tuple arrived after the
  previous probe of the same disk portion (stage 2 only joins disk
  tuples with memory tuples newer than its last run).
"""

from __future__ import annotations

from typing import List

from repro.storage.partition import StateEntry


def stage1_covered(a: StateEntry, b: StateEntry) -> bool:
    """Was the pair (a, b) produced by the per-tuple memory join?

    The boundary is inclusive: when the later tuple's arrival equals the
    earlier one's flush time, the flush happened inside the later
    tuple's own handling step — *after* its probe — because handles are
    serialised on the virtual clock, so the pair was produced.
    """
    if b.ats >= a.ats:
        return b.ats <= a.dts
    return a.ats <= b.dts


def stage2_covered_one_side(
    disk_entry: StateEntry,
    mem_entry: StateEntry,
    probe_history: List[float],
) -> bool:
    """Was (disk_entry, mem_entry) produced by a stage-2 probe?

    *probe_history* is the increasing list of times the disk portion
    holding *disk_entry* was probed.  The pair was produced by the probe
    at time ``T`` (with predecessor ``T_prev``) iff::

        disk_entry.dts <= T          (it was on disk by then)
        T_prev < mem_entry.ats <= T  (the memory tuple is new since T_prev)
        mem_entry.dts > T            (and was still memory-resident)
    """
    prev = float("-inf")
    for probe_time in probe_history:
        if (
            disk_entry.dts <= probe_time
            and prev < mem_entry.ats <= probe_time
            and mem_entry.dts > probe_time
        ):
            return True
        prev = probe_time
    return False


def stage2_covered(
    a: StateEntry,
    b: StateEntry,
    a_probe_history: List[float],
    b_probe_history: List[float],
) -> bool:
    """Was (a, b) produced by any stage-2 run, on either side?"""
    if a_probe_history and stage2_covered_one_side(a, b, a_probe_history):
        return True
    if b_probe_history and stage2_covered_one_side(b, a, b_probe_history):
        return True
    return False


def already_produced(
    a: StateEntry,
    b: StateEntry,
    a_probe_history: List[float],
    b_probe_history: List[float],
) -> bool:
    """Was (a, b) produced by stage 1 or stage 2?  Used by stage 3."""
    return stage1_covered(a, b) or stage2_covered(
        a, b, a_probe_history, b_probe_history
    )
