"""XJoin (Urhan & Franklin) — the paper's comparator.

A symmetric hash join extended with three mechanisms:

1. **State relocation**: when the in-memory join state reaches the
   memory threshold, the memory portion of the largest partition (over
   both inputs) is flushed to the simulated disk.
2. **Reactive disk join (stage 2)**: when both inputs are temporarily
   stuck, a disk-resident portion is brought back and joined against
   the opposite memory portion.  An *activation threshold* — a minimum
   idle interval — controls how aggressively it is scheduled.
3. **Clean-up join (stage 3)**: at end-of-stream, all pairs not yet
   produced (because one side was on disk at the relevant moments) are
   generated.

Duplicate prevention follows the timestamp rules in
:mod:`repro.operators.dedupe`.  XJoin has *no* constraint-exploiting
mechanism: punctuations are absorbed, the state only ever grows — which
is exactly what the paper measures it against.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.errors import ConfigError
from repro.memory.budget import GovernorSpec
from repro.obs.trace import get_tracer
from repro.operators import fastpath
from repro.operators.binary import BinaryHashJoin
from repro.operators.dedupe import already_produced, stage1_covered
from repro.storage.hash_table import stable_hash
from repro.punctuations.punctuation import Punctuation
from repro.resilience.policy import TRUST
from repro.resilience.validator import ContractValidator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.storage.disk import SimulatedDisk
from repro.storage.partition import HybridPartition, StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class XJoin(BinaryHashJoin):
    """Binary hash equi-join with XJoin's three-stage execution.

    Parameters
    ----------
    memory_threshold:
        Maximum number of memory-resident state tuples over both inputs;
        ``None`` (default) disables relocation, matching the paper's
        main figures where the comparison is purely about state growth.
    disk_join_idle_ms:
        Activation threshold of the reactive stage: how long both inputs
        must be silent before a disk portion is fetched and joined.
    disk:
        The shared :class:`~repro.storage.disk.SimulatedDisk`; a private
        one is created when omitted.
    fault_policy:
        Punctuation-contract fault policy (see
        :mod:`repro.resilience.policy`).  XJoin has no
        constraint-exploiting mechanism of its own, so the default is
        ``"trust"`` — the paper's behaviour, with zero overhead.  Any
        other policy makes the operator track arriving punctuations in a
        private store and check every tuple against them.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        n_partitions: int = 32,
        memory_threshold: Optional[int] = None,
        disk_join_idle_ms: float = 5.0,
        disk: Optional[SimulatedDisk] = None,
        name: str = "xjoin",
        fault_policy: str = TRUST,
        governor: Optional[GovernorSpec] = None,
    ) -> None:
        super().__init__(
            engine,
            cost_model,
            left_schema,
            right_schema,
            left_field,
            right_field,
            n_partitions=n_partitions,
            name=name,
        )
        if memory_threshold is not None and memory_threshold < 2:
            raise ConfigError(
                f"memory_threshold must be at least 2, got {memory_threshold}"
            )
        if disk_join_idle_ms <= 0:
            raise ConfigError(
                f"disk_join_idle_ms must be positive, got {disk_join_idle_ms}"
            )
        self.memory_threshold = memory_threshold
        self.disk_join_idle_ms = disk_join_idle_ms
        self.disk = disk if disk is not None else SimulatedDisk(cost_model)
        self.validator = ContractValidator.tracking(
            engine,
            name,
            fault_policy,
            [left_schema, right_schema],
            [left_field, right_field],
        )
        self.dead_letters = self.validator.dead_letters
        self.governor = None
        if governor is not None:
            self.governor = governor.build(
                cost_model, disk=self.disk, engine=engine,
                name=f"{name}.governor",
            )
            # XJoin exploits no punctuations: no covered_by probe, so
            # the punctuation-aware policy degrades to largest-first.
            self.governor.register_side(0, self.states[0])
            self.governor.register_side(1, self.states[1])
        self._idle_check_pending = False
        self.spills = 0
        self.stage2_runs = 0
        self.stage3_pairs_emitted = 0
        self.punctuations_absorbed = 0
        self._build_fast_path()

    # ------------------------------------------------------------------
    # Fast-path specialization (see repro.operators.fastpath)
    # ------------------------------------------------------------------

    def _build_fast_path(self) -> None:
        """Install a specialized ``handle`` when every hot layer is off.

        Conditions: trust (default) fault policy — ``admit`` always
        returns ``True`` and ``observe_punctuation`` is a no-op over
        inert contracts, so both vanish — no governor, no relocation
        threshold, and no tracer attached at build time.
        """
        if not fastpath.fastpath_enabled():
            return
        if type(self).handle is not XJoin.handle:
            return  # a subclass extends the hot path: keep it layered
        if self.validator.policy != TRUST:
            return
        if self.governor is not None:
            return
        if self.memory_threshold is not None:
            return
        if getattr(self.engine, "tracer", None) is not None:
            return
        state0, state1 = self.states
        ji0, ji1 = self.join_indices
        cost_model = self.cost_model
        tuple_overhead = cost_model.tuple_overhead
        insert_cost = cost_model.insert
        punct_overhead = cost_model.punct_overhead
        engine = self.engine

        def handle(item: Any, port: int) -> float:
            if isinstance(item, Tuple):
                if port == 0:
                    value = item.values[ji0]
                    mine, other = state0, state1
                else:
                    value = item.values[ji1]
                    mine, other = state1, state0
                value_hash = stable_hash(value)
                occupancy, matches = other.probe(value, value_hash)
                self.probes += 1
                self.probe_matches += len(matches)
                self.emit_joins(item, matches, port)
                mine.insert(item, value, engine.now, value_hash)
                self.insertions += 1
                return (
                    tuple_overhead
                    + cost_model.probe_cost(occupancy, len(matches))
                    + insert_cost
                )
            if isinstance(item, Punctuation):
                self.punctuations_absorbed += 1
                return punct_overhead
            return 0.0

        self.handle = fastpath.mark(handle)  # type: ignore[method-assign]

    def __getstate__(self) -> Dict[str, Any]:
        return fastpath.strip_for_pickle(self.__dict__)

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._build_fast_path()

    # ------------------------------------------------------------------
    # Stage 1: per-tuple memory join
    # ------------------------------------------------------------------

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Punctuation):
            self.validator.observe_punctuation(item, port)
            self.punctuations_absorbed += 1
            return self.cost_model.punct_overhead
        if not isinstance(item, Tuple):
            return 0.0
        side = port
        other = self.other(side)
        value = self.join_value(item, side)
        if not self.validator.admit(item, value, side):
            return self.cost_model.tuple_overhead
        value_hash = stable_hash(value)
        governor = self.governor
        governor_cost = 0.0
        if governor is not None:
            governor_cost += governor.fault_in(other, value, value_hash)
        occupancy, matches = self.states[other].probe(value, value_hash)
        self.probes += 1
        self.probe_matches += len(matches)
        self.emit_joins(item, matches, side)
        self.states[side].insert(item, value, self.engine.now, value_hash)
        self.insertions += 1
        if governor is not None:
            governor_cost += governor.after_insert(side, value, value_hash)
        cost = (
            self.cost_model.tuple_overhead
            + self.cost_model.probe_cost(occupancy, len(matches))
            + self.cost_model.insert
            + governor_cost
        )
        cost += self._maybe_relocate()
        return cost

    # ------------------------------------------------------------------
    # State relocation
    # ------------------------------------------------------------------

    def _maybe_relocate(self) -> float:
        """Spill the largest memory partition if over the threshold."""
        if self.memory_threshold is None:
            return 0.0
        cost = 0.0
        tracer = get_tracer(self.engine)
        while self.memory_state_size() >= self.memory_threshold:
            victim_side, victim = self._largest_memory_partition()
            moved = self.states[victim_side].spill_partition(victim, self.engine.now)
            if moved == 0:
                break
            cost += self.disk.write(moved)
            self.spills += 1
            if tracer is not None:
                tracer.record(
                    self.engine.now, self.name, "relocate",
                    side=victim_side, partition=victim.index, moved=moved,
                )
        return cost

    def _largest_memory_partition(self) -> PyTuple[int, HybridPartition]:
        """The (side, partition) with the largest memory portion."""
        best_side, best = 0, self.states[0].largest_memory_partition()
        candidate = self.states[1].largest_memory_partition()
        if candidate.memory_count > best.memory_count:
            return 1, candidate
        return best_side, best

    # ------------------------------------------------------------------
    # Stage 2: reactive disk join
    # ------------------------------------------------------------------

    def on_idle(self) -> None:
        """Arm the activation-threshold timer when disk work exists."""
        if self._idle_check_pending or self.finished:
            return
        if self.spills == 0:
            # Disk portions only appear through relocation; skip the
            # partition scan on the (hot) no-spill idle path.
            return
        if self._pick_stage2_target() is None:
            return
        self._idle_check_pending = True
        processed_at_arm = self.items_processed
        busy_at_arm = self.busy_time

        def check() -> None:
            self._idle_check_pending = False
            if self.finished or self._busy or self.queue_length > 0:
                return
            if (
                self.items_processed != processed_at_arm
                or self.busy_time != busy_at_arm
            ):
                # Something ran during the wait: not a real lull.
                self.on_idle()
                return
            self._run_stage2()

        self.engine.schedule(self.disk_join_idle_ms, check)

    def _pick_stage2_target(self) -> Optional[PyTuple[int, HybridPartition]]:
        """A (side, partition) whose disk portion has new memory to meet.

        A partition is worth probing when its disk portion is non-empty
        and the opposite memory portion received an insert after this
        portion's last probe.
        """
        best: Optional[PyTuple[int, HybridPartition]] = None
        best_size = 0
        for side in (0, 1):
            other = self.other(side)
            for partition in self.states[side].partitions_with_disk():
                opposite = self.states[other].partitions[partition.index]
                if opposite.memory_count == 0:
                    continue
                last_probe = (
                    partition.probe_history[-1]
                    if partition.probe_history
                    else float("-inf")
                )
                if opposite.last_insert_ts <= last_probe:
                    continue
                if partition.disk_count > best_size:
                    best = (side, partition)
                    best_size = partition.disk_count
        return best

    def _run_stage2(self) -> None:
        """Fetch one disk portion and join it with the opposite memory."""
        target = self._pick_stage2_target()
        if target is None:
            return
        side, partition = target
        other = self.other(side)
        opposite = self.states[other].partitions[partition.index]
        governor_cost = 0.0
        if self.governor is not None:
            # The disk portion probes the opposite warm memory below.
            governor_cost = self.governor.fault_in_partition(other, opposite)
        last_probe = (
            partition.probe_history[-1] if partition.probe_history else float("-inf")
        )
        matches = 0
        for disk_entry in partition.iter_disk():
            for mem_entry in opposite.probe_memory(disk_entry.join_value):
                if mem_entry.ats <= last_probe:
                    continue
                if stage1_covered(disk_entry, mem_entry):
                    continue
                self.emit_pair(disk_entry, mem_entry, side)
                matches += 1
        partition.record_probe(self.engine.now)
        self.stage2_runs += 1
        cost = (
            governor_cost
            + self.disk.read(partition.disk_count)
            + self.cost_model.probe_per_candidate
            * (partition.disk_count + opposite.memory_count)
            + self.cost_model.emit_result * matches
        )
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.record(
                self.engine.now, self.name, "disk_join",
                stage=2, side=side, partition=partition.index,
                disk=partition.disk_count, emitted=matches, cost=cost,
            )
        self.run_background_task(cost, description="xjoin stage-2 disk join")

    # ------------------------------------------------------------------
    # Stage 3: clean-up join at end-of-stream
    # ------------------------------------------------------------------

    def on_finish(self) -> float:
        """Produce every pair not yet output because of relocation."""
        cost = 0.0
        if self.governor is not None:
            # The clean-up join scans every memory portion; fault all
            # demoted buckets back in before pairing.
            cost += self.governor.fault_in_all()
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.begin(self.engine.now, self.name, "cleanup_join")
        emitted_before = self.stage3_pairs_emitted
        for index in range(self.states[0].n_partitions):
            part_a = self.states[0].partitions[index]
            part_b = self.states[1].partitions[index]
            if part_a.disk_count == 0 and part_b.disk_count == 0:
                continue
            cost += self.disk.read(part_a.disk_count)
            cost += self.disk.read(part_b.disk_count)
            cost += self._cleanup_partition(part_a, part_b)
        if tracer is not None:
            tracer.end(
                self.engine.now,
                emitted=self.stage3_pairs_emitted - emitted_before,
                cost=cost,
            )
        return cost

    # ------------------------------------------------------------------
    # Checkpointing (repro.checkpoint)
    # ------------------------------------------------------------------

    _XJOIN_COUNTERS = (
        "spills",
        "stage2_runs",
        "stage3_pairs_emitted",
        "punctuations_absorbed",
    )

    def snapshot_state(self) -> Dict[str, Any]:
        """Recoverable state: both tables plus the stage counters."""
        from repro.checkpoint import snapshot as snaplib

        return {
            "version": snaplib.SNAPSHOT_VERSION,
            "kind": "xjoin",
            "states": [snaplib.snapshot_table(table) for table in self.states],
            "validator": snaplib.snapshot_validator(self.validator),
            "counters": snaplib.snapshot_attrs(
                self,
                self._XJOIN_COUNTERS
                + snaplib.BINARY_JOIN_COUNTERS
                + snaplib.BASE_OPERATOR_COUNTERS,
            ),
        }

    def restore_state(self, snap: Dict[str, Any]) -> None:
        from repro.checkpoint import snapshot as snaplib

        for table, table_snap in zip(self.states, snap["states"]):
            snaplib.restore_table_into(table, table_snap)
        snaplib.restore_validator_into(self.validator, snap["validator"])
        snaplib.restore_attrs(self, snap["counters"])

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out.update(
            spills=self.spills,
            stage2_runs=self.stage2_runs,
            stage3_pairs_emitted=self.stage3_pairs_emitted,
            punctuations_absorbed=self.punctuations_absorbed,
        )
        # Non-default policies only: default manifests stay unchanged.
        if self.validator.policy != TRUST:
            for key, value in self.validator.counters().items():
                out[f"resilience.{key}"] = value
        if self.governor is not None:
            for key, value in self.governor.counters().items():
                out[f"governor.{key}"] = value
        return out

    def _cleanup_partition(
        self, part_a: HybridPartition, part_b: HybridPartition
    ) -> float:
        """Emit not-yet-produced pairs of one partition pair.

        Memory–memory pairs are always produced by stage 1 (both tuples'
        residency intervals are open-ended), so only pairs touching a
        disk portion need checking.
        """
        b_disk_by_value: Dict[Any, List[StateEntry]] = {}
        for entry in part_b.iter_disk():
            b_disk_by_value.setdefault(entry.join_value, []).append(entry)
        pairs_checked = 0
        emitted = 0
        # disk A × (memory B + disk B)
        for entry_a in part_a.iter_disk():
            candidates = list(part_b.probe_memory(entry_a.join_value))
            candidates.extend(b_disk_by_value.get(entry_a.join_value, []))
            for entry_b in candidates:
                pairs_checked += 1
                if not already_produced(
                    entry_a, entry_b, part_a.probe_history, part_b.probe_history
                ):
                    self.emit_pair(entry_a, entry_b, 0)
                    emitted += 1
        # memory A × disk B
        for entry_a in part_a.iter_memory():
            for entry_b in b_disk_by_value.get(entry_a.join_value, []):
                pairs_checked += 1
                if not already_produced(
                    entry_a, entry_b, part_a.probe_history, part_b.probe_history
                ):
                    self.emit_pair(entry_a, entry_b, 0)
                    emitted += 1
        self.stage3_pairs_emitted += emitted
        return (
            self.cost_model.probe_per_candidate * pairs_checked
            + self.cost_model.emit_result * emitted
        )
