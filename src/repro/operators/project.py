"""Projection operator with the punctuation propagation rule.

Projection keeps a subset of fields.  A punctuation survives projection
only when every *dropped* field's pattern is the wildcard: otherwise
the projected punctuation would promise more than the stream delivers
(tuples differing only in dropped, constrained fields could still
arrive and would match the projected patterns).  Punctuations that do
not survive are silently absorbed.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.operators.base import Operator
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class Project(Operator):
    """Keep the named fields of each tuple, in the given order."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        in_schema: Schema,
        field_names: Sequence[str],
        name: str = "project",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        self.in_schema = in_schema
        self.field_names = list(field_names)
        self.out_schema = in_schema.project(self.field_names, name=name)
        self._indices = [in_schema.index_of(n) for n in self.field_names]
        self._dropped = [
            name for name in in_schema.field_names if name not in set(self.field_names)
        ]
        self.punctuations_absorbed = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            values = tuple(item.values[i] for i in self._indices)
            self.emit(Tuple(self.out_schema, values, ts=item.ts, validate=False))
        elif isinstance(item, Punctuation):
            if self._survives(item):
                self.emit(item.restricted_to(self.field_names))
            else:
                self.punctuations_absorbed += 1
        return self.cost_model.project_per_item

    def _survives(self, punct: Punctuation) -> bool:
        """A punctuation survives iff all dropped fields are wildcards."""
        for name in self._dropped:
            if not punct.pattern_for(name).is_wildcard:
                return False
        return True
