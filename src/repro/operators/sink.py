"""The terminal sink operator.

Collects everything that reaches the end of a query plan: result
tuples, propagated punctuations and their arrival (virtual) times.
Experiments read its counters through the metrics sampler; tests read
the collected items directly to compare against reference results.
"""

from __future__ import annotations

from typing import Any, List, Tuple as PyTuple

from repro.operators.base import Operator
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.tuple import Tuple


class Sink(Operator):
    """Zero-cost terminal operator that records its input.

    Parameters
    ----------
    keep_items:
        When ``True`` (default) every received tuple and punctuation is
        retained, which tests and examples rely on.  Long benchmark runs
        can pass ``False`` to keep only counters and timings.
    """

    # Zero-cost and terminal: a whole upstream outbox can be absorbed
    # in one call with byte-identical counters (see accept_batch).
    _accepts_batches = True

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        keep_items: bool = True,
        name: str = "sink",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        self.keep_items = keep_items
        self.results: List[Tuple] = []
        self.punctuations: List[Punctuation] = []
        # (time, cumulative tuple count) recorded at every arrival; used
        # by output-rate figures without needing a separate sampler.
        self.tuple_arrival_times: List[float] = []
        self.punctuation_arrival_times: List[float] = []
        self.eos_time: float = -1.0

    def handle(self, item: Any, port: int) -> float:
        now = self.engine.now
        if isinstance(item, Tuple):
            self.tuple_arrival_times.append(now)
            if self.keep_items:
                self.results.append(item)
        elif isinstance(item, Punctuation):
            self.punctuation_arrival_times.append(now)
            if self.keep_items:
                self.punctuations.append(item)
        return 0.0

    def accept_batch(self, items: List[Any], now: float) -> PyTuple[int, int]:
        """Absorb a whole upstream outbox in one call.

        Emulates exactly what *len(items)* individual ``push`` calls
        would do — handling is zero-cost, so each push would drain
        immediately with a queue length of one — including the
        per-item ``with_ts`` restamp the upstream delivery loop applies
        (skipped when items are not kept: the copies were discarded).
        Returns ``(tuples, punctuations)`` so the upstream can update
        its own output counters.
        """
        n_tuples = 0
        n_puncts = 0
        keep = self.keep_items
        tuple_times = self.tuple_arrival_times
        punct_times = self.punctuation_arrival_times
        for item in items:
            if isinstance(item, Tuple):
                n_tuples += 1
                tuple_times.append(now)
                if keep:
                    self.results.append(
                        item if item.ts == now else item.with_ts(now)
                    )
            elif isinstance(item, Punctuation):
                n_puncts += 1
                punct_times.append(now)
                if keep:
                    self.punctuations.append(
                        item if item.ts == now else item.with_ts(now)
                    )
        self.tuples_in += n_tuples
        self.punctuations_in += n_puncts
        self.items_processed += len(items)
        if items and self.max_queue_length < 1:
            self.max_queue_length = 1
        return n_tuples, n_puncts

    def on_finish(self) -> float:
        self.eos_time = self.engine.now
        return 0.0

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def tuple_count(self) -> int:
        return len(self.tuple_arrival_times)

    @property
    def punctuation_count(self) -> int:
        return len(self.punctuation_arrival_times)

    def result_multiset(self) -> dict:
        """``{value-tuple: count}`` of received result tuples.

        Timestamps are ignored so results can be compared against a
        reference join computed outside the simulation.
        """
        counts: dict = {}
        for tup in self.results:
            counts[tup.values] = counts.get(tup.values, 0) + 1
        return counts

    def cumulative_output_series(self) -> List[PyTuple[float, int]]:
        """``(time, cumulative result count)`` points, one per arrival."""
        return [(t, i + 1) for i, t in enumerate(self.tuple_arrival_times)]

    def __repr__(self) -> str:
        return (
            f"Sink(tuples={self.tuple_count}, "
            f"punctuations={self.punctuation_count})"
        )
