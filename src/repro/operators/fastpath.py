"""Construction-time fast-path specialization of join hot paths.

ROADMAP item 1: disabled feature layers must cost **zero** on the
per-tuple path.  The layered ``handle`` implementations consult the
contract validator, the memory governor and the tracer on every tuple —
cheap branches, but they sit on ~100k calls per run and the attribute /
method indirection dominates once the real work is a dict probe.

The fix mirrors the instance-shadowing trick the profiler already uses
(:mod:`repro.obs.profile`), in the opposite direction: at the **end of
construction** each join inspects its own configuration and, when every
per-tuple feature is off, installs a specialized ``handle`` closure on
the *instance* that skips the disabled layers entirely — no policy
compare, no ``governor is None`` branch, no validator method call.  The
class-level layered ``handle`` remains untouched and is what runs
whenever any feature is on.

A join installs its fast path only when **all** of these hold:

* the fault policy is the operator's default (``strict`` for
  PJoin/NaryPJoin, ``trust`` for XJoin/SHJ).  The strict contract check
  is *kept* — inlined as one direct ``covers`` call with the full
  validator invoked only on an actual violation, so strict semantics
  (raise, counters) are byte-identical;
* no memory governor is attached (``--memory-budget`` off);
* no tracer is attached to the engine at build time (``repro trace`` /
  the obs feature layer off).  Punctuation-driven components keep their
  own dynamic tracer guards either way — the condition is conservative.

Closures are tagged with ``__repro_fastpath__`` so the profiling
``--check`` gate can tell a deliberate specialization from a leaked
profiler shadow, and :func:`disabled` lets the equivalence test suite
force the layered path for byte-identity comparisons.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator

# Process-wide switch, read once per operator construction.  Only the
# equivalence tests and A/B measurements should ever turn this off.
_ENABLED = True


def fastpath_enabled() -> bool:
    """Whether operators may install fast-path closures when built."""
    return _ENABLED


@contextlib.contextmanager
def disabled() -> Iterator[None]:
    """Build every operator in this block on the layered (slow) path.

    The equivalence suite runs each preset once normally and once under
    this context; the two runs must produce byte-identical manifests.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def mark(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Tag *fn* as a deliberate fast-path instance closure."""
    fn.__repro_fastpath__ = True  # type: ignore[attr-defined]
    return fn


def is_fastpath(fn: Any) -> bool:
    """Is *fn* a tagged fast-path closure (vs. e.g. a profiler shadow)?"""
    return bool(getattr(fn, "__repro_fastpath__", False))


def has_fastpath(op: Any) -> bool:
    """Does *op* carry a fast-path ``handle`` on the instance?"""
    return is_fastpath(vars(op).get("handle"))


def strip_for_pickle(state: dict) -> dict:
    """Drop a fast-path closure from a ``__dict__`` snapshot.

    Closures cannot be pickled (the parallel sweep ships whole runs
    across processes); operators strip the installed ``handle`` in
    ``__getstate__`` and rebuild it in ``__setstate__``.
    """
    if is_fastpath(state.get("handle")):
        state = dict(state)
        del state["handle"]
    return state
