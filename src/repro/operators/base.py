"""The single-server operator execution model.

Every operator processes one item at a time on the shared virtual
clock.  Upstreams deliver items with :meth:`Operator.push`; items queue
in arrival order while the operator is busy; handling an item charges
virtual time (returned by the subclass's :meth:`Operator.handle`), and
anything the handler emitted is delivered downstream at the completion
time.  This is the mechanism that turns growing per-item costs into a
falling output *rate* — the saturation effect behind the paper's
Figure 7.

Subclass contract
-----------------
Implement :meth:`handle` (and optionally :meth:`on_idle` /
:meth:`on_finish`).  Inside a handler, call :meth:`emit` to queue
output items; return the virtual cost of the work.  ``on_idle`` is
called whenever the operator runs out of queued input — PJoin and XJoin
use it to schedule their reactive disk-join stage.  ``on_finish`` is
called once, after end-of-stream has arrived on every port and the
queue has drained; the base class emits the end-of-stream marker
downstream afterwards.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple as PyTuple

from repro.errors import OperatorError
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.item import END_OF_STREAM
from repro.tuples.tuple import Tuple


class Operator:
    """Base class: a single-server operator with N input ports."""

    #: Operators that can take a whole outbox in one call (the sink)
    #: set this and implement :meth:`accept_batch`; ``_deliver`` then
    #: skips the per-item push/queue/pump cycle while keeping every
    #: counter and timestamp byte-identical to item-at-a-time delivery.
    _accepts_batches = False

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        n_inputs: int = 1,
        name: str = "",
    ) -> None:
        if n_inputs < 1:
            raise OperatorError("an operator needs at least one input port")
        self.engine = engine
        self.cost_model = cost_model
        self.n_inputs = n_inputs
        self.name = name or type(self).__name__
        self._queue: Deque[PyTuple[Any, int]] = deque()
        self._eos_seen = [False] * n_inputs
        self._finished = False
        self._busy = False
        self._outbox: List[Any] = []
        self._downstream: Optional["Operator"] = None
        self._downstream_port = 0
        # --- metrics ----------------------------------------------------
        self.items_processed = 0
        self.tuples_in = 0
        self.punctuations_in = 0
        self.tuples_out = 0
        self.punctuations_out = 0
        self.busy_time = 0.0
        self.max_queue_length = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def connect(self, downstream: "Operator", port: int = 0) -> "Operator":
        """Send this operator's output to *downstream*'s input *port*.

        Returns *downstream* so plans can be built as chains.
        """
        if self._downstream is not None:
            raise OperatorError(f"{self.name} is already connected downstream")
        if not 0 <= port < downstream.n_inputs:
            raise OperatorError(
                f"{downstream.name} has no input port {port} "
                f"(it has {downstream.n_inputs})"
            )
        self._downstream = downstream
        self._downstream_port = port
        return downstream

    # ------------------------------------------------------------------
    # Input side
    # ------------------------------------------------------------------

    def push(self, item: Any, port: int = 0) -> None:
        """Deliver *item* to input *port* at the current virtual time."""
        if self._finished:
            raise OperatorError(f"{self.name} already finished; late item {item!r}")
        if not 0 <= port < self.n_inputs:
            raise OperatorError(f"{self.name} has no input port {port}")
        queue = self._queue
        queue.append((item, port))
        if len(queue) > self.max_queue_length:
            self.max_queue_length = len(queue)
        if not self._busy:
            self._pump()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Processing loop
    # ------------------------------------------------------------------

    def _pump(self) -> None:
        """Process queued items until a non-zero cost blocks or queue drains.

        Zero-cost items are handled iteratively (not recursively) so
        bursts of thousands of emissions into a cheap operator cannot
        overflow the Python stack.
        """
        queue = self._queue
        while queue and not self._busy:
            item, port = queue.popleft()
            if item is END_OF_STREAM:
                self._eos_seen[port] = True
                if all(self._eos_seen):
                    cost = self.on_finish()
                    self._finished = True
                    self._complete_after(cost, True)
                else:
                    self._complete_after(0.0, False)
                continue
            cls = item.__class__
            if cls is Tuple or isinstance(item, Tuple):
                self.tuples_in += 1
            elif cls is Punctuation or isinstance(item, Punctuation):
                self.punctuations_in += 1
            cost = self.handle(item, port)
            self.items_processed += 1
            if cost == 0.0 and not self._outbox:
                continue  # nothing to charge, nothing to deliver
            self._complete_after(cost, False)
        if not queue and not self._busy and not self._finished:
            self.on_idle()

    def _complete_after(self, cost: float, final: bool) -> None:
        """Deliver the outbox after *cost* virtual ms (now, if zero)."""
        if cost == 0.0:
            outbox = self._outbox
            if outbox:
                self._outbox = []
                self._deliver(outbox)
            if final and self._downstream is not None:
                self._downstream.push(END_OF_STREAM, self._downstream_port)
            return
        if cost < 0:
            raise OperatorError(f"{self.name} computed a negative cost {cost!r}")
        self.busy_time += cost
        outbox = self._outbox
        self._outbox = []
        self._busy = True

        def complete() -> None:
            self._busy = False
            self._finish_item(outbox, final)
            if not self._busy:
                self._pump()

        self.engine.schedule(cost, complete)

    def _finish_item(self, outbox: List[Any], final: bool) -> None:
        """Deliver one item's emissions (and end-of-stream if *final*)."""
        self._deliver(outbox)
        if final and self._downstream is not None:
            self._downstream.push(END_OF_STREAM, self._downstream_port)

    def _deliver(self, outbox: List[Any]) -> None:
        """Hand emitted items downstream, stamped with the current time."""
        now = self.engine.now
        downstream = self._downstream
        port = self._downstream_port
        if (
            outbox
            and downstream is not None
            and downstream._accepts_batches
            and not downstream._busy
            and not downstream._queue
            and not downstream._finished
        ):
            n_tuples, n_puncts = downstream.accept_batch(outbox, now)
            self.tuples_out += n_tuples
            self.punctuations_out += n_puncts
            return
        tuples_out = 0
        for item in outbox:
            cls = item.__class__
            if cls is Tuple or isinstance(item, Tuple):
                tuples_out += 1
                if item.ts != now:
                    item = item.with_ts(now)
            elif cls is Punctuation or isinstance(item, Punctuation):
                self.punctuations_out += 1
                if item.ts != now:
                    item = item.with_ts(now)
            if downstream is not None:
                downstream.push(item, port)
        if tuples_out:
            self.tuples_out += tuples_out

    def run_background_task(self, cost: float, description: str = "") -> None:
        """Occupy the operator with non-item work for *cost* virtual ms.

        Used for reactive stages (disk join) started from :meth:`on_idle`.
        Emissions queued during the task are delivered at completion,
        like for a normal item.  Must only be called while idle.
        """
        if self._busy:
            raise OperatorError(
                f"{self.name} cannot start background task {description!r} while busy"
            )
        self._complete_after(cost, final=False)

    # ------------------------------------------------------------------
    # Output side (used by subclasses inside handle()/on_finish())
    # ------------------------------------------------------------------

    def emit(self, item: Any) -> None:
        """Queue *item* for delivery downstream at completion time."""
        self._outbox.append(item)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def handle(self, item: Any, port: int) -> float:
        """Process one input item; return its virtual cost (ms)."""
        raise NotImplementedError

    def accept_batch(self, items: List[Any], now: float) -> PyTuple[int, int]:
        """Take a whole upstream outbox at *now*; return (tuples, puncts).

        Only called when :attr:`_accepts_batches` is set.  Must update
        the same counters the per-item path would.
        """
        raise NotImplementedError

    def on_idle(self) -> None:
        """Called when the input queue drains.  Default: do nothing."""

    def on_finish(self) -> float:
        """Called once after end-of-stream on all ports; return cost."""
        return 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def counters(self) -> dict:
        """Flat ``{name: number}`` snapshot of this operator's counters.

        Every operator exposes this uniform registry; subclasses extend
        it with their own counters (probes, purges, disk I/O, ...).
        The observability layer folds these snapshots into the run
        manifest — see :mod:`repro.obs.manifest`.
        """
        return {
            "items_processed": self.items_processed,
            "tuples_in": self.tuples_in,
            "punctuations_in": self.punctuations_in,
            "tuples_out": self.tuples_out,
            "punctuations_out": self.punctuations_out,
            "busy_time_ms": self.busy_time,
            "max_queue_length": self.max_queue_length,
        }

    def utilisation(self) -> float:
        """Fraction of elapsed virtual time this operator was busy."""
        if self.engine.now == 0:
            return 0.0
        return min(1.0, self.busy_time / self.engine.now)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
