"""Sliding-window join — the time-based-constraint baseline.

Window joins bound the state with a statically chosen time window: a
pair joins only if the two tuples' arrival times are within the window
of each other, and expired tuples are dropped as the window slides.
The paper's related-work discussion contrasts this with punctuations:
the window is static and "choosing an appropriate window size is
non-trivial" — too small loses results, too large keeps a bulky state.

This implementation expires opposite-state tuples lazily, on each
arrival, scanning buckets in timestamp order the way Section 6 of the
paper suggests (early-arrived tuples are met first, and expiry stops at
the first still-valid tuple).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

from repro.errors import ConfigError
from repro.operators.base import Operator
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class SlidingWindowJoin(Operator):
    """Binary equi-join over sliding time windows.

    Parameters
    ----------
    window_ms:
        Window size in virtual milliseconds: tuples older than
        ``now - window_ms`` are expired from the state.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        window_ms: float,
        name: str = "window-join",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=2, name=name)
        if window_ms <= 0:
            raise ConfigError(f"window_ms must be positive, got {window_ms!r}")
        self.window_ms = window_ms
        self.schemas = [left_schema, right_schema]
        self.join_indices = [
            left_schema.index_of(left_field),
            right_schema.index_of(right_field),
        ]
        self.out_schema = left_schema.concat(right_schema, name=name + ".out")
        # Timestamp-ordered per side: a deque of entries plus a value
        # index for probing.  Expiry pops from the left.
        self._order: List[Deque[Tuple]] = [deque(), deque()]
        self._by_value: List[Dict[Any, List[Tuple]]] = [{}, {}]
        self.results_produced = 0
        self.tuples_expired = 0
        self.punctuations_absorbed = 0
        self.probes = 0
        self.probe_matches = 0
        self.insertions = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Punctuation):
            self.punctuations_absorbed += 1
            return self.cost_model.punct_overhead
        if not isinstance(item, Tuple):
            return 0.0
        side = port
        other = 1 - side
        now = self.engine.now
        expired = self._expire(other, now)
        value = item.values[self.join_indices[side]]
        matches = self._by_value[other].get(value, [])
        self.probes += 1
        self.probe_matches += len(matches)
        for match in matches:
            if side == 0:
                values = item.values + match.values
            else:
                values = match.values + item.values
            self.emit(Tuple(self.out_schema, values, ts=now, validate=False))
            self.results_produced += 1
        self._insert(side, item, value)
        return (
            self.cost_model.tuple_overhead
            + self.cost_model.insert
            + self.cost_model.probe_cost(len(matches), len(matches))
            + self.cost_model.purge_scan_per_tuple * expired
        )

    def _insert(self, side: int, tup: Tuple, value: Any) -> None:
        self._order[side].append(tup)
        self._by_value[side].setdefault(value, []).append(tup)
        self.insertions += 1

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out.update(
            results_produced=self.results_produced,
            probes=self.probes,
            probe_matches=self.probe_matches,
            insertions=self.insertions,
            tuples_expired=self.tuples_expired,
            punctuations_absorbed=self.punctuations_absorbed,
        )
        return out

    def _expire(self, side: int, now: float) -> int:
        """Drop tuples outside the window; returns how many."""
        horizon = now - self.window_ms
        order = self._order[side]
        by_value = self._by_value[side]
        expired = 0
        while order and order[0].ts < horizon:
            tup = order.popleft()
            value = tup.values[self.join_indices[side]]
            bucket = by_value.get(value)
            if bucket:
                bucket.remove(tup)
                if not bucket:
                    del by_value[value]
            expired += 1
        self.tuples_expired += expired
        return expired

    def state_size(self, side: int) -> int:
        return len(self._order[side])

    def total_state_size(self) -> int:
        return len(self._order[0]) + len(self._order[1])
