"""Punctuation-aware duplicate elimination.

Duplicate elimination is the textbook *stateful* operator: it must
remember every distinct tuple seen so far to suppress repeats, so on an
unbounded stream its seen-set grows forever.  Punctuations fix that the
same way they fix the join state: once a punctuation promises that no
more tuples matching *p* will arrive, every seen-set entry matching *p*
is dead weight and can be discarded (Tucker et al.'s *keep* rule, which
the PJoin paper adopts as its purge rule).

Punctuations themselves pass through unchanged — removing duplicates
never invalidates a promise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple as PyTuple

from repro.operators.base import Operator
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class DuplicateElimination(Operator):
    """Emit each distinct value combination once; purge on punctuations."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        schema: Schema,
        name: str = "dupelim",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        self.schema = schema
        self._seen: Set[PyTuple[Any, ...]] = set()
        self.duplicates_suppressed = 0
        self.entries_purged = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            if item.values in self._seen:
                self.duplicates_suppressed += 1
            else:
                self._seen.add(item.values)
                self.emit(item)
            return self.cost_model.select_per_item
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item)
        return 0.0

    def _handle_punctuation(self, punct: Punctuation) -> float:
        """Purge covered seen-set entries, then pass the punctuation on.

        The promise guarantees no future tuple matches *punct*, so no
        future arrival can be a duplicate of a covered entry — keeping
        it would only burn memory.
        """
        before = len(self._seen)
        self._seen = {
            values for values in self._seen if not punct.matches_values(values)
        }
        purged = before - len(self._seen)
        self.entries_purged += purged
        self.emit(punct)
        return (
            self.cost_model.punct_overhead
            + self.cost_model.purge_scan_per_tuple * before
        )

    @property
    def state_size(self) -> int:
        """Distinct values currently remembered."""
        return len(self._seen)


class PunctuationSort(Operator):
    """Streaming sort unblocked by order punctuations.

    Sort is the textbook *blocking* operator: nothing can be emitted
    until it is certain no smaller element will still arrive.  A
    punctuation of the form ``field < v`` (an upper-open range — e.g.
    derived by :class:`~repro.punctuations.derive.OrderedArrivalPunctuator`
    from a roughly-ordered source, or an application watermark) provides
    exactly that certainty: every buffered tuple whose sort key is below
    *v* can be released in sorted order.

    Only upper-bounding punctuations advance the emission frontier;
    punctuations of other shapes are absorbed (sound, just unhelpful).
    All remaining buffered tuples are emitted, sorted, at end-of-stream.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        schema: Schema,
        sort_field: str,
        name: str = "sort",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        self.schema = schema
        self.sort_field = sort_field
        self.sort_index = schema.index_of(sort_field)
        self._buffer: List[Tuple] = []
        self.punctuations_absorbed = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            self._buffer.append(item)
            return self.cost_model.select_per_item
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item)
        return 0.0

    def _handle_punctuation(self, punct: Punctuation) -> float:
        frontier = self._frontier_of(punct)
        if frontier is None:
            self.punctuations_absorbed += 1
            return self.cost_model.punct_overhead
        bound, inclusive = frontier
        ready = []
        keep = []
        for tup in self._buffer:
            value = tup.values[self.sort_index]
            below = value <= bound if inclusive else value < bound
            (ready if below else keep).append(tup)
        self._buffer = keep
        ready.sort(key=lambda t: t.values[self.sort_index])
        for tup in ready:
            self.emit(tup)
        self.emit(punct)
        return (
            self.cost_model.punct_overhead
            + self.cost_model.purge_scan_per_tuple * (len(ready) + len(keep))
            + self.cost_model.emit_result * len(ready)
        )

    def _frontier_of(self, punct: Punctuation):
        """``(bound, inclusive)`` if this punctuation bounds the sort key.

        Requires: the sort-field pattern is a range unbounded below, and
        every other pattern is a wildcard (otherwise tuples under the
        bound could still arrive, differing in the constrained fields).
        """
        from repro.punctuations.patterns import Range

        for i, pattern in enumerate(punct.patterns):
            if i == self.sort_index:
                continue
            if not pattern.is_wildcard:
                return None
        pattern = punct.patterns[self.sort_index]
        if isinstance(pattern, Range) and pattern.low is None \
                and pattern.high is not None:
            return pattern.high, pattern.high_inclusive
        return None

    def on_finish(self) -> float:
        self._buffer.sort(key=lambda t: t.values[self.sort_index])
        for tup in self._buffer:
            self.emit(tup)
        cost = self.cost_model.emit_result * len(self._buffer)
        self._buffer = []
        return cost

    @property
    def buffered(self) -> int:
        """Tuples still blocked, waiting for a covering punctuation."""
        return len(self._buffer)
