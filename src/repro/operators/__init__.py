"""Query operators.

All operators share the single-server execution model of
:class:`~repro.operators.base.Operator`: items arrive on input ports at
virtual times, queue while the operator is busy, and each item's
processing charges virtual time through the cost model.  The join
operators living here are the paper's comparators; the paper's own
contribution, PJoin, lives in :mod:`repro.core`.
"""

from repro.operators.base import Operator
from repro.operators.sink import Sink
from repro.operators.select import Select
from repro.operators.project import Project
from repro.operators.union import Union
from repro.operators.dupelim import DuplicateElimination, PunctuationSort
from repro.operators.groupby import (
    Aggregate,
    GroupBy,
    avg_agg,
    count_agg,
    max_agg,
    sum_agg,
)
from repro.operators.shj import SymmetricHashJoin
from repro.operators.window_join import SlidingWindowJoin
from repro.operators.xjoin import XJoin

__all__ = [
    "Operator",
    "Sink",
    "Select",
    "Project",
    "Union",
    "DuplicateElimination",
    "PunctuationSort",
    "GroupBy",
    "Aggregate",
    "count_agg",
    "sum_agg",
    "avg_agg",
    "max_agg",
    "SymmetricHashJoin",
    "SlidingWindowJoin",
    "XJoin",
]
