"""Selection (filter) operator with punctuation pass-through.

Tucker et al.'s pass rule for selection: every punctuation may be
passed through unchanged, because filtering only removes tuples — a
promise that no more tuples matching *p* will arrive remains true on
the filtered stream.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.operators.base import Operator
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.tuple import Tuple


class Select(Operator):
    """Emit only tuples satisfying *predicate*; pass punctuations through."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        predicate: Callable[[Tuple], bool],
        name: str = "select",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        self.predicate = predicate
        self.tuples_dropped = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            if self.predicate(item):
                self.emit(item)
            else:
                self.tuples_dropped += 1
        elif isinstance(item, Punctuation):
            self.emit(item)
        return self.cost_model.select_per_item
