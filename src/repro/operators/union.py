"""Stream union (merge) with sound punctuation propagation.

Union interleaves n same-schema input streams.  Its punctuation rule is
the interesting part: a promise "no more tuples matching p" holds on
the union only once **every** input has made it — one silent input can
still deliver matching tuples.

This implementation exploits the common case the joins also exploit:
punctuations whose patterns constrain exactly one field with a constant
value.  For each (field, value) it counts the inputs that have
punctuated it and emits the punctuation when the count reaches the
input arity.  Punctuations of any other shape are *absorbed* (tallied
in :attr:`Union.punctuations_absorbed`) — never emitting a promise is
always sound, merely less useful.

The paper's seller/buyer portals ("the sellers portal merges items for
sale submitted by sellers into a stream called Open") are exactly this
operator sitting upstream of PJoin.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple as PyTuple

from repro.errors import OperatorError
from repro.operators.base import Operator
from repro.punctuations.patterns import Constant
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class Union(Operator):
    """Merge *n_inputs* same-schema streams into one."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        schema: Schema,
        n_inputs: int = 2,
        name: str = "union",
    ) -> None:
        if n_inputs < 2:
            raise OperatorError("a union needs at least two inputs")
        super().__init__(engine, cost_model, n_inputs=n_inputs, name=name)
        self.schema = schema
        # (field_index, value) -> set of input ports that punctuated it.
        self._pending: Dict[PyTuple[int, Any], Set[int]] = {}
        self.punctuations_absorbed = 0
        self.punctuations_merged = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            self.emit(item)
            return self.cost_model.select_per_item
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item, port)
        return 0.0

    def _handle_punctuation(self, punct: Punctuation, port: int) -> float:
        key = self._single_constant_key(punct)
        if key is None:
            self.punctuations_absorbed += 1
            return self.cost_model.punct_overhead
        ports = self._pending.setdefault(key, set())
        ports.add(port)
        if len(ports) == self.n_inputs:
            del self._pending[key]
            self.emit(punct)
            self.punctuations_merged += 1
        return self.cost_model.punct_overhead

    def _single_constant_key(
        self, punct: Punctuation
    ) -> Optional[PyTuple[int, Any]]:
        """The (field_index, value) if exactly one constant constrains it."""
        key: Optional[PyTuple[int, Any]] = None
        for index, pattern in enumerate(punct.patterns):
            if pattern.is_wildcard:
                continue
            if not isinstance(pattern, Constant) or key is not None:
                return None
            key = (index, pattern.value)
        return key

    @property
    def pending_punctuations(self) -> int:
        """Promises some — but not all — inputs have made so far."""
        return len(self._pending)
