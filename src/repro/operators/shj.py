"""The symmetric hash join — the basic stream join of Wilschut & Apers.

Keeps every arriving tuple forever: it is the strawman whose
"indefinitely accumulating join state" motivates both XJoin and PJoin.
Punctuations are absorbed (it has no constraint-exploiting mechanism).
Useful as a reference implementation in tests and as the
memory-overflow-free baseline in examples.

Like XJoin, the operator can optionally enforce the punctuation
contract through the shared :class:`~repro.resilience.validator.
ContractValidator` — the default ``"trust"`` policy keeps the paper's
zero-overhead behaviour.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.memory.budget import GovernorSpec
from repro.operators import fastpath
from repro.operators.binary import BinaryHashJoin
from repro.punctuations.punctuation import Punctuation
from repro.resilience.policy import TRUST
from repro.resilience.validator import ContractValidator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.storage.hash_table import stable_hash
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class SymmetricHashJoin(BinaryHashJoin):
    """Probe the opposite state, emit matches, insert — never purge."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        n_partitions: int = 16,
        name: str = "",
        fault_policy: str = TRUST,
        governor: Optional[GovernorSpec] = None,
    ) -> None:
        super().__init__(
            engine,
            cost_model,
            left_schema,
            right_schema,
            left_field,
            right_field,
            n_partitions=n_partitions,
            name=name,
        )
        self.validator = ContractValidator.tracking(
            engine,
            name or "shj",
            fault_policy,
            [left_schema, right_schema],
            [left_field, right_field],
        )
        self.dead_letters = self.validator.dead_letters
        self.governor = None
        if governor is not None:
            # SHJ owns no disk; the governor builds a private one.
            self.governor = governor.build(
                cost_model, engine=engine, name=f"{name or 'shj'}.governor"
            )
            self.governor.register_side(0, self.states[0])
            self.governor.register_side(1, self.states[1])
        self.punctuations_absorbed = 0
        self._build_fast_path()

    # ------------------------------------------------------------------
    # Fast-path specialization (see repro.operators.fastpath)
    # ------------------------------------------------------------------

    def _build_fast_path(self) -> None:
        """Install a specialized ``handle`` when every hot layer is off.

        Conditions: trust (default) fault policy — ``admit`` and
        ``observe_punctuation`` are no-ops over inert contracts — no
        governor, and no tracer attached at build time.
        """
        if not fastpath.fastpath_enabled():
            return
        if type(self).handle is not SymmetricHashJoin.handle:
            return  # a subclass extends the hot path: keep it layered
        if self.validator.policy != TRUST:
            return
        if self.governor is not None:
            return
        if getattr(self.engine, "tracer", None) is not None:
            return
        state0, state1 = self.states
        ji0, ji1 = self.join_indices
        cost_model = self.cost_model
        tuple_overhead = cost_model.tuple_overhead
        insert_cost = cost_model.insert
        punct_overhead = cost_model.punct_overhead
        engine = self.engine

        def handle(item: Any, port: int) -> float:
            if isinstance(item, Tuple):
                if port == 0:
                    value = item.values[ji0]
                    mine, other = state0, state1
                else:
                    value = item.values[ji1]
                    mine, other = state1, state0
                value_hash = stable_hash(value)
                occupancy, matches = other.probe(value, value_hash)
                self.probes += 1
                self.probe_matches += len(matches)
                self.emit_joins(item, matches, port)
                mine.insert(item, value, engine.now, value_hash)
                self.insertions += 1
                return (
                    tuple_overhead
                    + cost_model.probe_cost(occupancy, len(matches))
                    + insert_cost
                )
            if isinstance(item, Punctuation):
                self.punctuations_absorbed += 1
                return punct_overhead
            return 0.0

        self.handle = fastpath.mark(handle)  # type: ignore[method-assign]

    def __getstate__(self) -> Dict[str, Any]:
        return fastpath.strip_for_pickle(self.__dict__)

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._build_fast_path()

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Punctuation):
            # No constraint-exploiting mechanism: absorb.
            self.validator.observe_punctuation(item, port)
            self.punctuations_absorbed += 1
            return self.cost_model.punct_overhead
        if not isinstance(item, Tuple):
            return 0.0
        side = port
        other = self.other(side)
        value = self.join_value(item, side)
        if not self.validator.admit(item, value, side):
            return self.cost_model.tuple_overhead
        value_hash = stable_hash(value)
        governor = self.governor
        governor_cost = 0.0
        if governor is not None:
            governor_cost += governor.fault_in(other, value, value_hash)
        occupancy, matches = self.states[other].probe(value, value_hash)
        self.probes += 1
        self.probe_matches += len(matches)
        self.emit_joins(item, matches, side)
        self.states[side].insert(item, value, self.engine.now, value_hash)
        self.insertions += 1
        if governor is not None:
            governor_cost += governor.after_insert(side, value, value_hash)
        return (
            self.cost_model.tuple_overhead
            + self.cost_model.probe_cost(occupancy, len(matches))
            + self.cost_model.insert
            + governor_cost
        )

    # ------------------------------------------------------------------
    # Checkpointing (repro.checkpoint)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> Dict[str, Any]:
        """Recoverable state: both accumulating tables plus counters."""
        from repro.checkpoint import snapshot as snaplib

        return {
            "version": snaplib.SNAPSHOT_VERSION,
            "kind": "shj",
            "states": [snaplib.snapshot_table(table) for table in self.states],
            "validator": snaplib.snapshot_validator(self.validator),
            "counters": snaplib.snapshot_attrs(
                self,
                ("punctuations_absorbed",)
                + snaplib.BINARY_JOIN_COUNTERS
                + snaplib.BASE_OPERATOR_COUNTERS,
            ),
        }

    def restore_state(self, snap: Dict[str, Any]) -> None:
        from repro.checkpoint import snapshot as snaplib

        for table, table_snap in zip(self.states, snap["states"]):
            snaplib.restore_table_into(table, table_snap)
        snaplib.restore_validator_into(self.validator, snap["validator"])
        snaplib.restore_attrs(self, snap["counters"])

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out["punctuations_absorbed"] = self.punctuations_absorbed
        # Non-default policies only: default manifests stay unchanged.
        if self.validator.policy != TRUST:
            for key, value in self.validator.counters().items():
                out[f"resilience.{key}"] = value
        if self.governor is not None:
            for key, value in self.governor.counters().items():
                out[f"governor.{key}"] = value
        return out
