"""The symmetric hash join — the basic stream join of Wilschut & Apers.

Keeps every arriving tuple forever: it is the strawman whose
"indefinitely accumulating join state" motivates both XJoin and PJoin.
Punctuations are absorbed (it has no constraint-exploiting mechanism).
Useful as a reference implementation in tests and as the
memory-overflow-free baseline in examples.
"""

from __future__ import annotations

from typing import Any

from repro.operators.binary import BinaryHashJoin
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple


class SymmetricHashJoin(BinaryHashJoin):
    """Probe the opposite state, emit matches, insert — never purge."""

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Punctuation):
            # No constraint-exploiting mechanism: absorb.
            return self.cost_model.punct_overhead
        if not isinstance(item, Tuple):
            return 0.0
        side = port
        other = self.other(side)
        value = self.join_value(item, side)
        occupancy, matches = self.states[other].probe(value)
        self.probes += 1
        self.probe_matches += len(matches)
        for entry in matches:
            self.emit_join(item, entry, side)
        self.states[side].insert(item, value, self.engine.now)
        self.insertions += 1
        return (
            self.cost_model.tuple_overhead
            + self.cost_model.probe_cost(occupancy, len(matches))
            + self.cost_model.insert
        )
