"""Punctuation-aware group-by aggregation.

Group-by is the paper's canonical *blocking* operator: without
punctuations it can only emit results at end-of-stream.  Punctuations
unblock it — when a punctuation guarantees that no more tuples of some
group(s) will arrive, those groups' aggregates are final and can be
emitted immediately.  This is exactly why PJoin's punctuation
*propagation* matters: the group-by downstream of the join (Figure 1
(c)) relies on the punctuations PJoin forwards.

The operator emits, for each closed group, one result tuple
``(group_value, agg_1, ..., agg_k)`` followed by a punctuation on the
group field of the output schema.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import OperatorError
from repro.operators.base import Operator
from repro.punctuations.patterns import WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple


class Aggregate:
    """One aggregate column: a name, an input field and a fold.

    Parameters
    ----------
    output_name:
        Field name in the output schema.
    field:
        Input field the aggregate folds over (``None`` for count).
    init:
        Initial accumulator value.
    step:
        ``step(acc, value) -> acc``.
    finish:
        Optional ``finish(acc, n) -> result`` (e.g. average); defaults
        to the accumulator itself.
    """

    def __init__(
        self,
        output_name: str,
        field: Optional[str],
        init: Any,
        step: Callable[[Any, Any], Any],
        finish: Optional[Callable[[Any, int], Any]] = None,
    ) -> None:
        self.output_name = output_name
        self.field = field
        self.init = init
        self.step = step
        self.finish = finish


def count_agg(output_name: str = "count") -> Aggregate:
    """COUNT(*) aggregate."""
    return Aggregate(output_name, None, 0, lambda acc, _value: acc + 1)


def sum_agg(field: str, output_name: Optional[str] = None) -> Aggregate:
    """SUM(field) aggregate."""
    return Aggregate(output_name or f"sum_{field}", field, 0, lambda acc, v: acc + v)


def avg_agg(field: str, output_name: Optional[str] = None) -> Aggregate:
    """AVG(field) aggregate."""
    return Aggregate(
        output_name or f"avg_{field}",
        field,
        0.0,
        lambda acc, v: acc + v,
        finish=lambda acc, n: acc / n if n else None,
    )


def max_agg(field: str, output_name: Optional[str] = None) -> Aggregate:
    """MAX(field) aggregate."""
    return Aggregate(
        output_name or f"max_{field}",
        field,
        None,
        lambda acc, v: v if acc is None or v > acc else acc,
    )


class _GroupState:
    """Accumulators and tuple count for one group."""

    __slots__ = ("accs", "n")

    def __init__(self, aggregates: List[Aggregate]) -> None:
        self.accs = [agg.init for agg in aggregates]
        self.n = 0


class GroupBy(Operator):
    """Hash aggregation on one group field, unblocked by punctuations.

    Parameters
    ----------
    pull_from:
        Optional upstream operator exposing ``request_propagation()``
        (a pull-mode PJoin).  When set, the group-by *pulls*: every time
        its number of open (blocked) groups grows to
        ``pull_open_groups_threshold`` or beyond, it asks the join to
        propagate whatever punctuations are ready — the paper's pull
        mode, driven by its natural beneficiary.
    pull_open_groups_threshold:
        How many open groups the group-by tolerates before pulling.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        in_schema: Schema,
        group_field: str,
        aggregates: List[Aggregate],
        name: str = "groupby",
        pull_from: Optional[Any] = None,
        pull_open_groups_threshold: int = 16,
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=1, name=name)
        if not aggregates:
            raise OperatorError("GroupBy needs at least one aggregate")
        if pull_open_groups_threshold < 1:
            raise OperatorError(
                "pull_open_groups_threshold must be >= 1, got "
                f"{pull_open_groups_threshold}"
            )
        self.pull_from = pull_from
        self.pull_open_groups_threshold = pull_open_groups_threshold
        self.pull_requests_sent = 0
        self.in_schema = in_schema
        self.group_field = group_field
        self.group_index = in_schema.index_of(group_field)
        self.aggregates = aggregates
        self._field_indices = [
            in_schema.index_of(agg.field) if agg.field is not None else -1
            for agg in aggregates
        ]
        out_fields = [Field(group_field)]
        out_fields.extend(Field(agg.output_name) for agg in aggregates)
        self.out_schema = Schema(out_fields, name=name)
        self._groups: Dict[Any, _GroupState] = {}
        self.groups_emitted = 0
        self.punctuations_absorbed = 0

    # ------------------------------------------------------------------
    # Item handling
    # ------------------------------------------------------------------

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            self._accumulate(item)
            return self.cost_model.groupby_per_tuple
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item)
        return 0.0

    def _accumulate(self, tup: Tuple) -> None:
        key = tup.values[self.group_index]
        group = self._groups.get(key)
        if group is None:
            group = _GroupState(self.aggregates)
            self._groups[key] = group
            if (
                self.pull_from is not None
                and len(self._groups) >= self.pull_open_groups_threshold
            ):
                self.pull_from.request_propagation(requester=self.name)
                self.pull_requests_sent += 1
        group.n += 1
        for i, agg in enumerate(self.aggregates):
            index = self._field_indices[i]
            value = tup.values[index] if index >= 0 else None
            group.accs[i] = agg.step(group.accs[i], value)

    def _handle_punctuation(self, punct: Punctuation) -> float:
        """Emit the final results of every group the punctuation closes."""
        if not is_join_exploitable(punct, self.group_field):
            # Constrains non-group fields: cannot prove any group closed.
            self.punctuations_absorbed += 1
            return self.cost_model.groupby_per_tuple
        pattern = punct.patterns[self.group_index]
        closed = [key for key in self._groups if pattern.matches(key)]
        for key in closed:
            self._emit_group(key)
        # Forward the promise on the output stream: no more result rows
        # whose group field matches this pattern.
        out_patterns = [WILDCARD] * self.out_schema.arity
        out_patterns[0] = pattern
        self.emit(Punctuation(self.out_schema, out_patterns, ts=punct.ts))
        return self.cost_model.groupby_per_tuple + self.cost_model.groupby_per_emit * max(
            1, len(closed)
        )

    def _emit_group(self, key: Any) -> None:
        group = self._groups.pop(key)
        values: List[Any] = [key]
        for agg, acc in zip(self.aggregates, group.accs):
            values.append(agg.finish(acc, group.n) if agg.finish else acc)
        self.emit(Tuple(self.out_schema, tuple(values), validate=False))
        self.groups_emitted += 1

    def on_finish(self) -> float:
        """Emit every still-open group at end-of-stream."""
        remaining = list(self._groups)
        for key in remaining:
            self._emit_group(key)
        return self.cost_model.groupby_per_emit * len(remaining)

    @property
    def open_groups(self) -> int:
        """Number of groups still blocked (waiting for a punctuation)."""
        return len(self._groups)

    def counters(self) -> Dict[str, float]:
        out = super().counters()
        out.update(
            groups_emitted=self.groups_emitted,
            open_groups=self.open_groups,
            punctuations_absorbed=self.punctuations_absorbed,
            pull_requests_sent=self.pull_requests_sent,
        )
        return out
