"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by the subsystem
that raises them; they carry human-readable messages and, where useful,
structured attributes describing the offending object.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a tuple does not conform to its schema."""


class PatternError(ReproError):
    """A punctuation pattern is malformed or used incorrectly."""


class PunctuationError(ReproError):
    """A punctuation is malformed or violates stream punctuation rules.

    The most common cause is a *punctuation violation*: a tuple arriving
    after a punctuation that its join value matches.  Sources that emit
    such streams are buggy; operators in this library detect the
    violation (when validation is enabled) rather than silently producing
    incorrect join results.
    """


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly.

    Raised, for example, when scheduling an event in the virtual past or
    running an engine that has already finished.
    """


class OperatorError(ReproError):
    """An operator was configured or wired incorrectly."""


class ConfigError(ReproError):
    """An operator/experiment configuration value is invalid."""


class StorageError(ReproError):
    """The simulated secondary storage was used incorrectly."""


class WorkloadError(ReproError):
    """A workload specification is invalid or inconsistent."""


class ResilienceError(ReproError):
    """Base class for the resilience layer (fault policies, chaos).

    Raised when graceful degradation itself cannot proceed: an unknown
    fault policy, an exhausted retry budget, a chaos scenario that is
    inconsistent.  Recoverable conditions (contract violations under
    ``quarantine``/``repair``, transient I/O faults within the retry
    budget) are absorbed and counted instead of raised.
    """


class ContractViolationError(ResilienceError, PunctuationError):
    """A tuple arrived after a same-stream punctuation covering it.

    Raised only under the ``strict`` fault policy; ``quarantine`` routes
    the tuple to the operator's dead-letter store and ``repair``
    retracts the broken promise instead.  Subclasses
    :class:`PunctuationError` so pre-resilience callers that caught the
    old hard failure keep working.
    """


class TransientIOError(ResilienceError, StorageError):
    """A simulated disk fault outlived the configured retry budget.

    The simulated disk absorbs transient faults by retrying with
    exponential backoff in virtual time; this error means the outage
    lasted longer than the whole backoff schedule.  Subclasses
    :class:`StorageError` so storage-level handlers keep working.
    """


class RetryExhaustedError(TransientIOError):
    """The capped total retry budget ran out.

    :class:`~repro.resilience.retry.RetryPolicy` can cap the *total*
    number of retries an injector may spend across a whole run
    (``max_total_retries``); once spent, further faults fail fast with
    this error instead of looping through another backoff schedule.
    Also raised when a single fault outlives its per-operation backoff
    schedule, replacing the untyped :class:`TransientIOError` (which it
    subclasses, so existing handlers keep working).
    """


class RecoveryError(ResilienceError):
    """Crash recovery or rescaling could not restore a consistent run.

    Raised by the checkpoint subsystem (:mod:`repro.checkpoint`) when a
    shard worker keeps dying past the respawn budget, or a rescale has
    no punctuation-cover boundary to quiesce at.
    """


class SourceStallError(ResilienceError):
    """A stream source stalled past the watchdog's tolerance.

    Only raised when a :class:`~repro.resilience.watchdog.StallWatchdog`
    is configured with ``on_stall="raise"``; the default modes synthesise
    heartbeat punctuations or merely flag the run as degraded.
    """


class PerfError(ReproError):
    """A failure in the performance subsystem (:mod:`repro.perf`).

    Raised when a parallel sweep cannot be planned or merged — e.g. an
    experiment function makes a different number of
    ``run_join_experiment`` calls than the planning pass observed, which
    would make a deterministic merge impossible.
    """


class PlannerError(ReproError):
    """A failure in the cost-based planner (:mod:`repro.planner`).

    Raised for malformed planner specifications (unknown mode, an
    initial probe order that is not a permutation of the input streams)
    and for plan swaps that would violate the operator's invariants.
    """
