"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by the subsystem
that raises them; they carry human-readable messages and, where useful,
structured attributes describing the offending object.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or a tuple does not conform to its schema."""


class PatternError(ReproError):
    """A punctuation pattern is malformed or used incorrectly."""


class PunctuationError(ReproError):
    """A punctuation is malformed or violates stream punctuation rules.

    The most common cause is a *punctuation violation*: a tuple arriving
    after a punctuation that its join value matches.  Sources that emit
    such streams are buggy; operators in this library detect the
    violation (when validation is enabled) rather than silently producing
    incorrect join results.
    """


class SimulationError(ReproError):
    """The discrete-event simulation was driven incorrectly.

    Raised, for example, when scheduling an event in the virtual past or
    running an engine that has already finished.
    """


class OperatorError(ReproError):
    """An operator was configured or wired incorrectly."""


class ConfigError(ReproError):
    """An operator/experiment configuration value is invalid."""


class StorageError(ReproError):
    """The simulated secondary storage was used incorrectly."""


class WorkloadError(ReproError):
    """A workload specification is invalid or inconsistent."""
