"""Stream delivery infrastructure.

A :class:`~repro.streams.source.StreamSource` replays a pre-generated
schedule of ``(virtual_time, item)`` pairs into an operator's input
port, then delivers the end-of-stream marker.  Schedules come from
:mod:`repro.workloads`.
"""

from repro.streams.source import StreamSource

__all__ = ["StreamSource"]
