"""Stream sources: replay a generated schedule into an operator.

A schedule is a sequence of ``(virtual_time, item)`` pairs with
non-decreasing times, where items are tuples or punctuations (already
timestamped by the workload generator).  The source walks the schedule
with chained engine events — one pending event at a time — so even very
long streams do not bloat the event heap.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Tuple as PyTuple

from repro.errors import OperatorError, SimulationError
from repro.operators.base import Operator
from repro.sim.engine import SimulationEngine
from repro.tuples.item import END_OF_STREAM


class StreamSource:
    """Feeds one input port of an operator from a schedule.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    schedule:
        Iterable of ``(time, item)`` pairs, times non-decreasing.
    name:
        Label used in error messages and metrics.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        schedule: Iterable[PyTuple[float, Any]],
        name: str = "source",
    ) -> None:
        self.engine = engine
        self.name = name
        self._iter: Iterator[PyTuple[float, Any]] = iter(schedule)
        self._target: Optional[Operator] = None
        self._port = 0
        self._last_time = 0.0
        self._started = False
        self.items_sent = 0

    def connect(self, operator: Operator, port: int = 0) -> Operator:
        """Deliver this source's items to *operator*'s input *port*."""
        if self._target is not None:
            raise OperatorError(f"source {self.name} is already connected")
        self._target = operator
        self._port = port
        return operator

    def start(self) -> None:
        """Begin replay.  Must be called once, before ``engine.run()``."""
        if self._started:
            raise SimulationError(f"source {self.name} was already started")
        if self._target is None:
            raise OperatorError(f"source {self.name} is not connected to an operator")
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        try:
            time, item = next(self._iter)
        except StopIteration:
            self.engine.schedule_at(
                max(self._last_time, self.engine.now), self._send_eos
            )
            return
        if time < self._last_time:
            raise SimulationError(
                f"source {self.name}: schedule time {time} decreases "
                f"(previous {self._last_time})"
            )
        self._last_time = time
        self.engine.schedule_at(max(time, self.engine.now), lambda: self._send(item))

    def _send(self, item: Any) -> None:
        assert self._target is not None
        self._target.push(item, self._port)
        self.items_sent += 1
        self._schedule_next()

    def _send_eos(self) -> None:
        assert self._target is not None
        self._target.push(END_OF_STREAM, self._port)

    def __repr__(self) -> str:
        return f"StreamSource({self.name!r}, sent={self.items_sent})"
