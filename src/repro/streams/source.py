"""Stream sources: replay a generated schedule into an operator.

A schedule is a sequence of ``(virtual_time, item)`` pairs with
non-decreasing times, where items are tuples or punctuations (already
timestamped by the workload generator).  The source walks the schedule
with chained engine events — one pending event at a time — so even very
long streams do not bloat the event heap.

Resilience hooks
----------------
A source can be given a **disorder slack**: items are then routed
through a :class:`~repro.resilience.disorder.DisorderBuffer` that holds
them for up to ``disorder_slack_ms`` of virtual time and re-sequences
them by item timestamp, repairing bounded delivery disorder before the
operator ever sees it.  The source also tracks
:attr:`~StreamSource.last_emit_time` and
:attr:`~StreamSource.exhausted` so a
:class:`~repro.resilience.watchdog.StallWatchdog` can detect silence.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Tuple as PyTuple

from repro.errors import OperatorError, SimulationError
from repro.operators.base import Operator
from repro.resilience.disorder import DisorderBuffer
from repro.sim.engine import SimulationEngine
from repro.tuples.item import END_OF_STREAM


class StreamSource:
    """Feeds one input port of an operator from a schedule.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    schedule:
        Iterable of ``(time, item)`` pairs, times non-decreasing.
    name:
        Label used in error messages and metrics.
    disorder_slack_ms:
        When set, deliver through a disorder buffer with this much
        virtual-time slack (see :mod:`repro.resilience.disorder`);
        ``None`` (the default) delivers in schedule order, unchanged.
    batch_size:
        How many schedule items to prefetch and enqueue per engine
        interaction.  ``1`` (the default) chains one pending event at a
        time; larger vectors amortize the per-item scheduling overhead
        through :meth:`~repro.sim.engine.SimulationEngine.schedule_many`
        while firing every item at its own schedule time, so delivery
        times, order and all counters are identical for every value.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        schedule: Iterable[PyTuple[float, Any]],
        name: str = "source",
        disorder_slack_ms: Optional[float] = None,
        batch_size: int = 1,
    ) -> None:
        if batch_size < 1:
            raise SimulationError(
                f"source {name}: batch_size must be >= 1, got {batch_size}"
            )
        self.engine = engine
        self.name = name
        self.batch_size = batch_size
        self._iter: Iterator[PyTuple[float, Any]] = iter(schedule)
        self._target: Optional[Operator] = None
        self._port = 0
        self._last_time = 0.0
        self._started = False
        self.items_sent = 0
        self.disorder_buffer = (
            DisorderBuffer(disorder_slack_ms)
            if disorder_slack_ms is not None
            else None
        )
        # Watchdog hooks: when this source last delivered anything, and
        # whether it has run out of schedule (sent end-of-stream).
        self.last_emit_time = 0.0
        self.exhausted = False

    def connect(self, operator: Operator, port: int = 0) -> Operator:
        """Deliver this source's items to *operator*'s input *port*."""
        if self._target is not None:
            raise OperatorError(f"source {self.name} is already connected")
        self._target = operator
        self._port = port
        return operator

    def start(self) -> None:
        """Begin replay.  Must be called once, before ``engine.run()``."""
        if self._started:
            raise SimulationError(f"source {self.name} was already started")
        if self._target is None:
            raise OperatorError(f"source {self.name} is not connected to an operator")
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        """Prefetch up to ``batch_size`` items and enqueue them at once.

        Every item still fires at its own schedule time; only the last
        one chains the next prefetch, so the heap holds at most one
        batch from this source at any moment.
        """
        iterator = self._iter
        batch: list = []
        for _ in range(self.batch_size):
            try:
                time, item = next(iterator)
            except StopIteration:
                break
            if time < self._last_time:
                raise SimulationError(
                    f"source {self.name}: schedule time {time} decreases "
                    f"(previous {self._last_time})"
                )
            self._last_time = time
            batch.append((time, item))
        if not batch:
            self.engine.schedule_at(
                max(self._last_time, self.engine.now), self._send_eos
            )
            return
        now = self.engine.now
        if len(batch) == 1:
            time, item = batch[0]
            self.engine.schedule_at(max(time, now), lambda: self._send(item))
            return
        events = [
            (max(time, now), lambda item=item: self._emit(item))
            for time, item in batch[:-1]
        ]
        last_time, last_item = batch[-1]
        events.append((max(last_time, now), lambda: self._send(last_item)))
        self.engine.schedule_many(events)

    def _emit(self, item: Any) -> None:
        assert self._target is not None
        if self.disorder_buffer is None:
            self._deliver(item)
        else:
            for ready in self.disorder_buffer.push(item, self.engine.now):
                self._deliver(ready)

    def _send(self, item: Any) -> None:
        self._emit(item)
        self._schedule_next()

    def _deliver(self, item: Any) -> None:
        assert self._target is not None
        self._target.push(item, self._port)
        self.items_sent += 1
        self.last_emit_time = self.engine.now

    def _send_eos(self) -> None:
        assert self._target is not None
        if self.disorder_buffer is not None:
            ready = self.disorder_buffer.flush()
            if ready:
                # Batch the whole backlog (plus the end-of-stream marker,
                # after it) through schedule_many: one heap rebuild, and
                # delivery order is identical to sequential scheduling.
                now = self.engine.now
                events = [
                    (now, lambda item=item: self._deliver(item)) for item in ready
                ]
                events.append((now, self._push_eos))
                self.engine.schedule_many(events)
                return
        self._push_eos()

    def _push_eos(self) -> None:
        assert self._target is not None
        self.exhausted = True
        self.last_emit_time = self.engine.now
        self._target.push(END_OF_STREAM, self._port)

    def counters(self) -> dict:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        out = {"items_sent": self.items_sent}
        if self.disorder_buffer is not None:
            for key, value in self.disorder_buffer.counters().items():
                out[f"disorder.{key}"] = value
        return out

    def __repr__(self) -> str:
        return f"StreamSource({self.name!r}, sent={self.items_sent})"
