"""Cost-based adaptive planner for multi-way punctuated joins.

The paper evaluates PJoin with a fixed probe order.  For n-way joins
the order matters: each arriving tuple probes the other n-1 sides in
sequence, a miss ends the pipeline early, and punctuation cadence
decides how much state each side holds when probed.  This package
chooses — and at runtime *re*-chooses — that order:

* :mod:`~repro.planner.spec` — configuration (``--planner
  {static,adaptive}``);
* :mod:`~repro.planner.stats` — rolling per-stream statistics from the
  live obs-layer counters;
* :mod:`~repro.planner.cost` — the virtual-time cost model with the
  punctuation-driven state-savings discount;
* :mod:`~repro.planner.plans` — candidate enumeration (exhaustive for
  n <= 4, greedy beyond) and the explainable :class:`PlanChoice`;
* :mod:`~repro.planner.reopt` — re-optimization at punctuation-aligned
  purge boundaries with exact (zero-copy) state handoff;
* :mod:`~repro.planner.presets` — named n-way workloads for
  ``repro plan`` and ``fig_nary_adaptive``.
"""

from repro.planner.spec import (
    ADAPTIVE,
    PLANNER_MODES,
    STATIC,
    PlannerSpec,
    validate_order,
)
from repro.planner.stats import StatsCollector, StreamStats
from repro.planner.cost import CandidateCost, PlannerCostModel, StageCost
from repro.planner.plans import (
    EXHAUSTIVE_LIMIT,
    PlanChoice,
    candidate_orders,
    choose_plan,
    greedy_order,
)
from repro.planner.reopt import Decision, Reoptimizer
from repro.planner.presets import PRESETS, get_preset, preset_names

__all__ = [
    "STATIC",
    "ADAPTIVE",
    "PLANNER_MODES",
    "PlannerSpec",
    "validate_order",
    "StreamStats",
    "StatsCollector",
    "PlannerCostModel",
    "CandidateCost",
    "StageCost",
    "EXHAUSTIVE_LIMIT",
    "candidate_orders",
    "greedy_order",
    "choose_plan",
    "PlanChoice",
    "Decision",
    "Reoptimizer",
    "PRESETS",
    "get_preset",
    "preset_names",
]
