"""Punctuation-aligned runtime re-optimization.

The :class:`Reoptimizer` attaches to a live
:class:`~repro.core.nary.NaryPJoin` and is notified at every
**purge-complete boundary** — the moment the monitor's purge threshold
fires and covered state has just been retired.  These are exactly the
punctuation-aligned cover cuts :mod:`repro.checkpoint` snapshots at
(see :func:`repro.checkpoint.recovery.cover_cut_times_n`), and they are
the only safe re-plan points: state is minimal, and no tuple is mid-
pipeline.

Every ``reopt_interval``-th boundary the re-optimizer closes a stats
window, scores the candidate orders, and — when the projected saving
clears the hysteresis — swaps the operator's probe order via
:meth:`NaryPJoin.set_plan`.  The swap is an **exact state handoff**: a
plan is only a visitation order over the side hash tables, so the
tables themselves are untouched and the result multiset is preserved
by construction (property-tested in ``tests/planner``).

The planner charges its own deliberation to virtual time
(``planning_cost``), so adaptive runs pay for the cycles they spend
thinking — an adaptive win in ``fig_nary_adaptive`` is net of planning
overhead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.planner.cost import PlannerCostModel
from repro.planner.plans import PlanChoice, choose_plan
from repro.planner.spec import PlannerSpec
from repro.planner.stats import StatsCollector, StreamStats

_EPS = 1e-12


@dataclass(frozen=True)
class Decision:
    """One re-optimization decision, kept for ``repro plan --explain``."""

    at_ms: float
    boundary: int
    previous: Tuple[int, ...]
    chosen: Tuple[int, ...]
    switched: bool
    current_cost: float       # cost of the incumbent order under new stats
    best_cost: float          # cost of the winner
    stats: Tuple[StreamStats, ...] = field(repr=False)
    choice: PlanChoice = field(repr=False)

    @property
    def cost_delta(self) -> float:
        """Projected saving (incumbent minus winner; >= 0)."""
        return self.current_cost - self.best_cost

    def as_dict(self) -> Dict[str, object]:
        return {
            "at_ms": self.at_ms,
            "boundary": self.boundary,
            "previous": list(self.previous),
            "chosen": list(self.chosen),
            "switched": self.switched,
            "current_cost": self.current_cost,
            "best_cost": self.best_cost,
            "cost_delta": self.cost_delta,
        }


class Reoptimizer:
    """Re-evaluates an n-ary join's probe order at cover boundaries."""

    def __init__(
        self,
        join: Any,
        spec: PlannerSpec,
        cost_model: Optional[PlannerCostModel] = None,
    ) -> None:
        self.join = join
        self.spec = spec
        self.cost_model = cost_model or PlannerCostModel.from_cost_model(
            getattr(join, "cost_model", None)
        )
        self.collector = StatsCollector(join, smoothing=spec.smoothing)
        self.decisions: Deque[Decision] = deque(maxlen=spec.max_decisions)
        self.boundaries = 0
        self.reopt_count = 0
        self.switches = 0
        self.last_cost_delta = 0.0
        self.cumulative_cost_delta = 0.0

    def on_cover_boundary(self) -> float:
        """Notify of one purge-complete boundary; return planning cost.

        Returns the virtual-time cost of whatever deliberation happened
        (0.0 on the boundaries that only count toward the interval).
        """
        self.boundaries += 1
        if self.boundaries % self.spec.reopt_interval != 0:
            return 0.0
        return self._reoptimize()

    def _reoptimize(self) -> float:
        join = self.join
        now = join.engine.now
        stats = self.collector.collect(now)
        current = tuple(join.stream_order)
        choice = choose_plan(stats, self.cost_model, current=current)
        incumbent = choice.candidate_for(current)
        current_cost = (
            incumbent.total
            if incumbent is not None
            else self.cost_model.plan_cost(current, stats).total
        )
        delta = current_cost - choice.cost
        threshold = self.spec.hysteresis * max(current_cost, _EPS)
        switched = choice.order != current and delta > threshold
        if switched:
            # Exact state handoff: only the visitation order changes;
            # the side hash tables are never touched.
            join.set_plan(choice.order)
            self.switches += 1
        self.reopt_count += 1
        self.last_cost_delta = delta if switched else 0.0
        if switched:
            self.cumulative_cost_delta += delta
        self.decisions.append(
            Decision(
                at_ms=now,
                boundary=self.boundaries,
                previous=current,
                chosen=choice.order if switched else current,
                switched=switched,
                current_cost=current_cost,
                best_cost=choice.cost,
                stats=tuple(stats),
                choice=choice,
            )
        )
        return self.cost_model.planning_cost(len(choice.candidates))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        return {
            "reopt.count": float(self.reopt_count),
            "switches": float(self.switches),
            "boundaries": float(self.boundaries),
            "last_cost_delta": self.last_cost_delta,
            "cumulative_cost_delta": self.cumulative_cost_delta,
        }

    def decision_log(self) -> List[Dict[str, object]]:
        return [decision.as_dict() for decision in self.decisions]
