"""The planner's cost model for candidate probe orders.

A candidate plan is a **global stream priority order**; an arriving
tuple on side *i* probes the other sides in that order (with *i*
removed).  The model scores a plan as the expected virtual-time probe
work per unit of virtual time, using the same coefficients the
simulator charges (:class:`repro.sim.costs.CostModel`):

* each probe into side *o* scans that side's expected bucket occupancy
  at ``probe_per_candidate`` per resident tuple;
* a probe that misses ends the pipeline, so stage *k* is only reached
  with probability ``prod(hit_rate of earlier stages)`` — put the most
  selective / cheapest sides first;
* sides that punctuate fast keep little state *and are about to purge
  what they have*, so their effective occupancy is discounted by their
  punctuation-to-arrival cadence — the punctuation-driven state-savings
  term that makes this a PJoin planner rather than a plain join-order
  planner;
* a fully-matched pipeline pays ``emit_result`` per output combination.

Total plan cost = sum over arriving sides of (arrival rate x per-tuple
pipeline cost).  The breakdown is kept per candidate and per stage so
``repro plan --explain`` can show *why* an order won.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.planner.stats import StreamStats
from repro.sim.costs import CostModel

_EPS = 1e-12

# A side's punctuations can never discount more than this fraction of
# its resident state: purges run on the monitor's threshold, not on
# every punctuation, so some covered state always lingers.
MAX_PUNCT_DISCOUNT = 0.9


@dataclass(frozen=True)
class StageCost:
    """One probe stage of one arriving side's pipeline."""

    target: int           # side being probed
    reach: float          # P(pipeline reaches this stage)
    occupancy: float      # expected resident tuples scanned
    discount: float       # punctuation-driven occupancy discount [0, 1)
    cost: float           # expected virtual ms for this stage (per tuple)


@dataclass(frozen=True)
class CandidateCost:
    """Full cost breakdown of one candidate order."""

    order: Tuple[int, ...]
    total: float                        # virtual ms of probe work per ms
    per_side: Tuple[float, ...]         # cost contributed by each arriving side
    stages: Tuple[Tuple[StageCost, ...], ...]  # per arriving side

    def as_dict(self) -> Dict[str, object]:
        return {
            "order": list(self.order),
            "total": self.total,
            "per_side": list(self.per_side),
        }


class PlannerCostModel:
    """Scores candidate probe orders against live stream statistics."""

    def __init__(
        self,
        probe_per_tuple: float = 0.004,
        emit_result: float = 0.002,
        plan_eval_cost: float = 0.01,
        max_discount: float = MAX_PUNCT_DISCOUNT,
    ) -> None:
        self.probe_per_tuple = probe_per_tuple
        self.emit_result = emit_result
        self.plan_eval_cost = plan_eval_cost
        self.max_discount = max_discount

    @classmethod
    def from_cost_model(cls, cost_model: Optional[CostModel]) -> "PlannerCostModel":
        """Inherit the simulator's probe/emit coefficients."""
        if cost_model is None:
            cost_model = CostModel()
        return cls(
            probe_per_tuple=cost_model.probe_per_candidate,
            emit_result=cost_model.emit_result,
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def discount(self, stats: StreamStats) -> float:
        """Punctuation-driven state-savings credit for probing late.

        A side whose punctuation cadence approaches its arrival rate
        retires state about as fast as it accretes; probing it *later*
        in the pipeline (fewer pipelines reach it) costs little even
        when a snapshot of its state looks large, because much of that
        state is moments from being purged.
        """
        arrival = max(stats.arrival_rate, _EPS)
        return min(self.max_discount, stats.punct_rate / arrival)

    def effective_occupancy(self, stats: StreamStats, stage: int) -> float:
        """Expected bucket scan for a probe reaching stage *k*.

        Occupancy comes from the measured per-probe bucket scan when
        the side has been probed, else from its resident state spread
        over nothing (pure state-size proxy).  Each later stage
        compounds the punctuation discount once more: by the time a
        pipeline reaches stage k the operator has had k more chances to
        drop the tuple against fresher promises.
        """
        base = stats.avg_occupancy
        if base <= _EPS:
            base = stats.state_size
        return base * (1.0 - self.discount(stats)) ** (stage + 1)

    def pipeline_cost(
        self,
        arriving: StreamStats,
        probe_order: Sequence[int],
        stats: Sequence[StreamStats],
    ) -> Tuple[float, Tuple[StageCost, ...]]:
        """Expected virtual ms one arriving tuple spends probing."""
        reach = 1.0
        total = 0.0
        expected_results = 1.0
        stages: List[StageCost] = []
        for stage, target in enumerate(probe_order):
            other = stats[target]
            occ = self.effective_occupancy(other, stage)
            cost = reach * self.probe_per_tuple * occ
            stages.append(
                StageCost(
                    target=target,
                    reach=reach,
                    occupancy=occ,
                    discount=self.discount(other),
                    cost=cost,
                )
            )
            total += cost
            reach *= min(1.0, other.hit_rate)
            expected_results *= other.avg_matches
        total += reach * self.emit_result * expected_results
        return total, tuple(stages)

    def plan_cost(
        self,
        order: Sequence[int],
        stats: Sequence[StreamStats],
    ) -> CandidateCost:
        """Score one global priority order against the latest stats."""
        order = tuple(order)
        per_side: List[float] = []
        all_stages: List[Tuple[StageCost, ...]] = []
        total = 0.0
        for side, side_stats in enumerate(stats):
            probe_order = tuple(o for o in order if o != side)
            per_tuple, stages = self.pipeline_cost(side_stats, probe_order, stats)
            contribution = side_stats.arrival_rate * per_tuple
            per_side.append(contribution)
            all_stages.append(stages)
            total += contribution
        return CandidateCost(
            order=order,
            total=total,
            per_side=tuple(per_side),
            stages=tuple(all_stages),
        )

    def planning_cost(self, n_candidates: int) -> float:
        """Virtual ms charged for evaluating *n* candidates."""
        return self.plan_eval_cost * n_candidates
