"""Named n-way workload presets for ``repro plan`` and the figures.

Each preset is a :class:`~repro.workloads.nary.NaryWorkloadSpec` with a
story the planner can act on:

* ``nary_uniform`` — three symmetric streams; every probe order costs
  the same, so the planner should *hold* the identity order (a no-switch
  sanity baseline).
* ``nary_drift`` — three streams whose punctuation cadences invert
  halfway through the run: the stream that purges aggressively early
  (small state, probe it first) becomes the laggard late.  Any static
  order is wrong for half the run; this is the adaptive planner's
  showcase and the workload behind ``fig_nary_adaptive``.
* ``nary_skew4`` — four streams with a stable cadence skew; the best
  order is static but *not* the identity, exercising exhaustive
  enumeration at the n=4 limit.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import PlannerError
from repro.workloads.nary import NaryWorkloadSpec

PRESETS: Dict[str, NaryWorkloadSpec] = {
    "nary_uniform": NaryWorkloadSpec(
        n_streams=3,
        n_tuples_per_stream=6_000,
        punct_spacings=(40.0, 40.0, 40.0),
        seed=7,
    ),
    "nary_drift": NaryWorkloadSpec(
        n_streams=3,
        n_tuples_per_stream=6_000,
        interarrival_ms=(1.0, 6.0, 0.4),
        drift_interarrival_ms=(1.0, 0.4, 6.0),
        punct_spacings=(5.0, 15.0, 60.0),
        drift_spacings=(5.0, 60.0, 15.0),
        drift_at=0.5,
        active_values=12,
        seed=11,
    ),
    "nary_skew4": NaryWorkloadSpec(
        n_streams=4,
        n_tuples_per_stream=4_000,
        punct_spacings=(10.0, 40.0, 80.0, 160.0),
        seed=13,
    ),
}


def preset_names() -> list:
    return sorted(PRESETS)


def get_preset(name: str, scale: float = 1.0) -> NaryWorkloadSpec:
    """Look up a preset, optionally scaling its tuple count."""
    try:
        spec = PRESETS[name]
    except KeyError:
        raise PlannerError(
            f"unknown planner preset {name!r}; known: {', '.join(preset_names())}"
        ) from None
    if scale != 1.0:
        spec = spec.with_overrides(
            n_tuples_per_stream=max(500, int(spec.n_tuples_per_stream * scale))
        )
    return spec
