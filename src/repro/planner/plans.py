"""Candidate enumeration and plan choice.

For small joins (n <= 4, i.e. at most 24 orders) every permutation is
scored — the optimum is exact with respect to the cost model.  Beyond
that the enumerator goes greedy: it seeds with the heuristic order
(most selective-and-cheap sides first) and adds all adjacent-swap
neighbours of the seed, keeping enumeration linear in n while still
giving the chooser local alternatives to compare against.

The chooser returns a :class:`PlanChoice` carrying *every* scored
candidate, so the decision is explainable after the fact:
``choice.explain()`` renders the per-candidate cost table that
``repro plan --explain`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlannerError
from repro.planner.cost import CandidateCost, PlannerCostModel
from repro.planner.stats import StreamStats

EXHAUSTIVE_LIMIT = 4  # n <= 4 -> score all n! orders

_EPS = 1e-12


def greedy_order(stats: Sequence[StreamStats], cost_model: PlannerCostModel) -> Tuple[int, ...]:
    """Heuristic priority order: cheapest expected stage work first.

    Ranks sides by ``effective_occupancy * hit_rate`` ascending — a
    side that is cheap to scan *and* likely to end the pipeline early
    should be probed first.  Ties break toward the lower stream index
    so the order is deterministic.
    """
    def rank(item: Tuple[int, StreamStats]) -> Tuple[float, int]:
        side, side_stats = item
        occ = cost_model.effective_occupancy(side_stats, 0)
        return (occ * max(side_stats.hit_rate, _EPS), side)

    ranked = sorted(enumerate(stats), key=rank)
    return tuple(side for side, _ in ranked)


def _adjacent_swaps(order: Tuple[int, ...]) -> List[Tuple[int, ...]]:
    neighbours = []
    for i in range(len(order) - 1):
        swapped = list(order)
        swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
        neighbours.append(tuple(swapped))
    return neighbours


def candidate_orders(
    n: int,
    stats: Optional[Sequence[StreamStats]] = None,
    cost_model: Optional[PlannerCostModel] = None,
    current: Optional[Tuple[int, ...]] = None,
) -> List[Tuple[int, ...]]:
    """All candidate priority orders for an *n*-way join.

    Exhaustive for ``n <= EXHAUSTIVE_LIMIT``; greedy seed plus
    adjacent-swap neighbours (plus the incumbent order) beyond.
    """
    if n < 2:
        raise PlannerError(f"candidate orders need n >= 2, got {n}")
    if n <= EXHAUSTIVE_LIMIT:
        return [tuple(p) for p in permutations(range(n))]
    if stats is None or cost_model is None:
        raise PlannerError(
            f"greedy enumeration for n={n} needs stats and a cost model"
        )
    seed = greedy_order(stats, cost_model)
    candidates = [seed] + _adjacent_swaps(seed)
    if current is not None and current not in candidates:
        candidates.append(tuple(current))
    # Dedup while keeping first-seen position.
    seen: Dict[Tuple[int, ...], None] = {}
    for cand in candidates:
        seen.setdefault(cand, None)
    return list(seen)


@dataclass(frozen=True)
class PlanChoice:
    """The chooser's output: the winner plus the full scored field."""

    order: Tuple[int, ...]
    cost: float
    candidates: Tuple[CandidateCost, ...]  # sorted, best first
    exhaustive: bool

    @property
    def best(self) -> CandidateCost:
        return self.candidates[0]

    def candidate_for(self, order: Sequence[int]) -> Optional[CandidateCost]:
        order = tuple(order)
        for cand in self.candidates:
            if cand.order == order:
                return cand
        return None

    def explain(self, names: Optional[Sequence[str]] = None) -> str:
        """Human-readable per-candidate cost table."""
        def fmt(order: Tuple[int, ...]) -> str:
            if names is None:
                return "(" + ", ".join(str(o) for o in order) + ")"
            return " > ".join(names[o] for o in order)

        lines = [
            f"{'order':<24} {'cost/ms':>12} {'vs best':>10}",
        ]
        best = self.candidates[0].total
        for cand in self.candidates:
            rel = (cand.total - best) / best * 100.0 if best > _EPS else 0.0
            marker = " <- chosen" if cand.order == self.order else ""
            lines.append(
                f"{fmt(cand.order):<24} {cand.total:>12.5f} {rel:>+9.1f}%{marker}"
            )
        mode = "exhaustive" if self.exhaustive else "greedy"
        lines.append(f"[{mode}: {len(self.candidates)} candidates scored]")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "order": list(self.order),
            "cost": self.cost,
            "exhaustive": self.exhaustive,
            "candidates": [cand.as_dict() for cand in self.candidates],
        }


def choose_plan(
    stats: Sequence[StreamStats],
    cost_model: Optional[PlannerCostModel] = None,
    current: Optional[Tuple[int, ...]] = None,
) -> PlanChoice:
    """Score the candidate orders and pick the cheapest.

    Ties break lexicographically on the order tuple, so the choice is
    deterministic for symmetric statistics (and keeps the identity
    order when nothing distinguishes the streams).
    """
    if cost_model is None:
        cost_model = PlannerCostModel()
    n = len(stats)
    orders = candidate_orders(n, stats, cost_model, current)
    scored = [cost_model.plan_cost(order, stats) for order in orders]
    scored.sort(key=lambda cand: (cand.total, cand.order))
    return PlanChoice(
        order=scored[0].order,
        cost=scored[0].total,
        candidates=tuple(scored),
        exhaustive=n <= EXHAUSTIVE_LIMIT,
    )
