"""Rolling per-stream statistics for the cost-based planner.

The collector does not instrument anything new: it snapshots the live
per-side counters the obs layer already exposes through the n-ary
join's :meth:`counters` registry (``side.<name>.state_size``,
``side.<name>.probe_count``, punctuation cadence, ...) and rolls the
cumulative values into windowed **rates** via exponential smoothing.
Each :meth:`StatsCollector.collect` call closes one window — in the
adaptive operator that window is the span between two punctuation-
aligned re-optimization boundaries.

The resulting :class:`StreamStats` per side carry exactly the signals
the cost model scores:

* ``state_size`` / ``avg_occupancy`` — how expensive probing this side
  is right now (bucket-chain scans charge per resident tuple);
* ``hit_rate`` / ``avg_matches`` — how selective a probe into this
  side is (a miss ends the probe pipeline early);
* ``arrival_rate`` — how often this side's tuples trigger probes into
  the *other* sides;
* ``punct_rate`` — this stream's punctuation cadence, the
  punctuation-driven state-savings signal unique to PJoin;
* ``purge_lag_ms`` — virtual time since the last purge run retired
  covered state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

_EPS = 1e-12

# The per-side counters the collector consumes, as published by
# NaryPJoin.counters() under "side.<side_name>.<key>".
SIDE_COUNTER_KEYS = (
    "state_size",
    "tuples_in",
    "probe_count",
    "probe_hits",
    "match_count",
    "probe_occupancy",
    "punct_count",
)


@dataclass(frozen=True)
class StreamStats:
    """One side's rolled statistics at a collection boundary."""

    side: int
    name: str
    state_size: float        # resident tuples (gauge)
    arrival_rate: float      # tuples/ms arriving on this side (EWMA)
    punct_rate: float        # exploitable punctuations/ms (EWMA)
    hit_rate: float          # P(probe into this side finds >= 1 match)
    avg_matches: float       # mean matches per probe into this side
    avg_occupancy: float     # mean bucket tuples scanned per probe
    purge_lag_ms: float      # now - last purge completion

    def as_dict(self) -> Dict[str, float]:
        return {
            "state_size": self.state_size,
            "arrival_rate": self.arrival_rate,
            "punct_rate": self.punct_rate,
            "hit_rate": self.hit_rate,
            "avg_matches": self.avg_matches,
            "avg_occupancy": self.avg_occupancy,
            "purge_lag_ms": self.purge_lag_ms,
        }


def _side_counters(registry: Dict[str, float], name: str) -> Dict[str, float]:
    prefix = f"side.{name}."
    return {
        key[len(prefix):]: float(value)
        for key, value in registry.items()
        if key.startswith(prefix)
    }


def _ratio(num: float, den: float, fallback: float = 0.0) -> float:
    if den <= _EPS:
        return fallback
    return num / den


class StatsCollector:
    """Rolls an n-ary join's counter registry into per-side rates.

    The first :meth:`collect` call sees the whole run so far as one
    window; later calls blend each new window into the running rates
    with EWMA weight ``smoothing`` (1.0 = newest window only).
    """

    def __init__(self, join: Any, smoothing: float = 0.5) -> None:
        self.join = join
        self.smoothing = smoothing
        self._prev_time: float = 0.0
        self._prev_cum: Optional[List[Dict[str, float]]] = None
        self._rates: Optional[List[Dict[str, float]]] = None
        self._last: Optional[List[StreamStats]] = None
        self.collections = 0

    def collect(self, now: Optional[float] = None) -> List[StreamStats]:
        """Close the current window and return fresh per-side stats."""
        join = self.join
        if now is None:
            now = join.engine.now
        registry = join.counters()
        names = [side.side_name for side in join.sides]
        cum = [_side_counters(registry, name) for name in names]
        dt = now - self._prev_time
        if self._prev_cum is not None and dt <= _EPS and self._last is not None:
            return self._last  # zero-width window: keep the last stats
        stats: List[StreamStats] = []
        new_rates: List[Dict[str, float]] = []
        purge_lag = now - float(getattr(join, "last_purge_ms", 0.0))
        for side, (name, current) in enumerate(zip(names, cum)):
            prev = (
                self._prev_cum[side]
                if self._prev_cum is not None
                else {key: 0.0 for key in current}
            )
            delta = {
                key: current.get(key, 0.0) - prev.get(key, 0.0)
                for key in SIDE_COUNTER_KEYS
            }
            window = {
                "arrival_rate": _ratio(delta["tuples_in"], dt),
                "punct_rate": _ratio(delta["punct_count"], dt),
            }
            if self._rates is not None:
                alpha = self.smoothing
                old = self._rates[side]
                window = {
                    key: alpha * value + (1.0 - alpha) * old[key]
                    for key, value in window.items()
                }
            new_rates.append(window)
            # Ratios prefer the window; a window without probes falls
            # back to the cumulative ratios (better than pretending 0).
            probes_w = delta["probe_count"]
            probes_c = current.get("probe_count", 0.0)
            hit_rate = _ratio(
                delta["probe_hits"], probes_w,
                fallback=_ratio(current.get("probe_hits", 0.0), probes_c),
            )
            avg_matches = _ratio(
                delta["match_count"], probes_w,
                fallback=_ratio(current.get("match_count", 0.0), probes_c),
            )
            avg_occupancy = _ratio(
                delta["probe_occupancy"], probes_w,
                fallback=_ratio(current.get("probe_occupancy", 0.0), probes_c),
            )
            stats.append(
                StreamStats(
                    side=side,
                    name=name,
                    state_size=current.get("state_size", 0.0),
                    arrival_rate=window["arrival_rate"],
                    punct_rate=window["punct_rate"],
                    hit_rate=min(1.0, hit_rate),
                    avg_matches=avg_matches,
                    avg_occupancy=avg_occupancy,
                    purge_lag_ms=max(0.0, purge_lag),
                )
            )
        self._prev_time = now
        self._prev_cum = cum
        self._rates = new_rates
        self._last = stats
        self.collections += 1
        return stats

    @property
    def last(self) -> Optional[List[StreamStats]]:
        """The stats of the most recent window, if any."""
        return self._last
