"""Planner configuration (`--planner {static,adaptive}`).

A :class:`PlannerSpec` travels from the CLI (or a test) into
:class:`~repro.core.nary.NaryPJoin` and decides how the operator picks
its probe and purge orders:

* ``static`` — the order is fixed at construction (``initial_order``,
  default stream order).  With the default order the operator is
  byte-identical to an unplanned build: same probes, same virtual
  costs, same fast path.
* ``adaptive`` — a :class:`~repro.planner.reopt.Reoptimizer` is
  attached; at punctuation-aligned purge boundaries (the same
  purge-complete cover cuts :mod:`repro.checkpoint` checkpoints at) it
  re-scores the candidate orders from live stream statistics and swaps
  the plan when the projected saving clears the hysteresis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional, Sequence, Tuple

from repro.errors import PlannerError

STATIC = "static"
ADAPTIVE = "adaptive"
PLANNER_MODES = (STATIC, ADAPTIVE)


@dataclass(frozen=True)
class PlannerSpec:
    """How an n-way join chooses (and re-chooses) its probe order.

    Parameters
    ----------
    mode:
        ``static`` or ``adaptive``.
    initial_order:
        Global stream priority order to start from (a permutation of
        ``range(n_streams)``); ``None`` keeps stream order.  Each
        arriving side probes the other sides in this order; purge scans
        follow it too.
    reopt_interval:
        Adaptive only: re-evaluate every Nth purge-complete cover
        boundary (>= 1).
    hysteresis:
        Adaptive only: minimum relative cost improvement a candidate
        must project before the plan switches (0 = switch on any
        improvement).  Damps oscillation between near-equal orders.
    smoothing:
        EWMA weight of the newest stats window when rolling rates
        (0 < smoothing <= 1; 1 = use only the latest window).
    max_decisions:
        Decision-log ring size kept for ``repro plan --explain``.
    """

    mode: str = STATIC
    initial_order: Optional[Tuple[int, ...]] = None
    reopt_interval: int = 4
    hysteresis: float = 0.05
    smoothing: float = 0.5
    max_decisions: int = 32

    def __post_init__(self) -> None:
        if self.mode not in PLANNER_MODES:
            raise PlannerError(
                f"unknown planner mode {self.mode!r}; expected one of "
                f"{PLANNER_MODES}"
            )
        if self.initial_order is not None:
            object.__setattr__(
                self, "initial_order", tuple(self.initial_order)
            )
        if self.reopt_interval < 1:
            raise PlannerError(
                f"reopt_interval must be >= 1, got {self.reopt_interval}"
            )
        if self.hysteresis < 0:
            raise PlannerError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if not 0.0 < self.smoothing <= 1.0:
            raise PlannerError(
                f"smoothing must be in (0, 1], got {self.smoothing}"
            )
        if self.max_decisions < 1:
            raise PlannerError(
                f"max_decisions must be >= 1, got {self.max_decisions}"
            )

    @property
    def adaptive(self) -> bool:
        return self.mode == ADAPTIVE

    def with_overrides(self, **overrides: Any) -> "PlannerSpec":
        return replace(self, **overrides)

    @classmethod
    def parse(cls, text: str) -> "PlannerSpec":
        """Build a spec from a CLI token (``static`` / ``adaptive``)."""
        return cls(mode=text)


def validate_order(order: Sequence[int], n: int) -> Tuple[int, ...]:
    """Check *order* is a permutation of ``range(n)`` and return it."""
    order = tuple(order)
    if sorted(order) != list(range(n)):
        raise PlannerError(
            f"probe order {order!r} is not a permutation of range({n})"
        )
    return order
