"""The five punctuation pattern kinds and their conjunction algebra.

Following Tucker et al. (and Section 2.2 of the PJoin paper), a pattern
describes a set of attribute values:

* :class:`Wildcard` — all values (``*``);
* :class:`Constant` — exactly one value;
* :class:`Range` — an interval of values, with open or closed ends and
  optionally unbounded sides;
* :class:`EnumerationList` — a finite set of values;
* :class:`Empty` — no value at all.

Patterns form a meet-semilattice under conjunction
(:meth:`Pattern.conjoin`): the "and" of any two patterns is again a
pattern, with :data:`WILDCARD` as the top element and :data:`EMPTY` as
the bottom.  Conjunction results are *normalised*: an enumeration that
collapses to one value becomes a :class:`Constant`, a range that
collapses to one point becomes a :class:`Constant`, and anything
unsatisfiable becomes :data:`EMPTY`.  Normalisation keeps equality tests
meaningful and makes the property-based algebra tests crisp.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Optional

from repro.errors import PatternError


class Pattern:
    """Abstract base class of all pattern kinds.

    Subclasses implement :meth:`matches` (does a value satisfy the
    pattern?) and :meth:`conjoin` (normalised intersection with any
    other pattern).  Patterns are immutable and hashable.
    """

    __slots__ = ()

    def matches(self, value: Any) -> bool:
        """Return ``True`` if *value* satisfies this pattern."""
        raise NotImplementedError

    def conjoin(self, other: "Pattern") -> "Pattern":
        """Return the normalised conjunction of this pattern and *other*."""
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        """``True`` only for the empty pattern."""
        return False

    @property
    def is_wildcard(self) -> bool:
        """``True`` only for the wildcard pattern."""
        return False

    def __and__(self, other: "Pattern") -> "Pattern":
        return self.conjoin(other)


class Wildcard(Pattern):
    """The ``*`` pattern: matches every value."""

    __slots__ = ()

    def matches(self, value: Any) -> bool:
        return True

    def conjoin(self, other: Pattern) -> Pattern:
        return other

    @property
    def is_wildcard(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Wildcard)

    def __hash__(self) -> int:
        return hash("Wildcard")

    def __repr__(self) -> str:
        return "*"


class Empty(Pattern):
    """The empty pattern: matches no value."""

    __slots__ = ()

    def matches(self, value: Any) -> bool:
        return False

    def conjoin(self, other: Pattern) -> Pattern:
        return self

    @property
    def is_empty(self) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Empty)

    def __hash__(self) -> int:
        return hash("Empty")

    def __repr__(self) -> str:
        return "<>"


WILDCARD = Wildcard()
EMPTY = Empty()


class Constant(Pattern):
    """A single-value pattern."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        if isinstance(value, Pattern):
            raise PatternError("a Constant pattern cannot wrap another pattern")
        self.value = value

    def matches(self, value: Any) -> bool:
        return value == self.value

    def conjoin(self, other: Pattern) -> Pattern:
        if isinstance(other, (Wildcard, Empty)):
            return other.conjoin(self)
        if other.matches(self.value):
            return self
        return EMPTY

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:
        return hash(("Constant", self.value))

    def __repr__(self) -> str:
        return repr(self.value)


class Range(Pattern):
    """An interval pattern, optionally unbounded on either side.

    Parameters
    ----------
    low, high:
        Interval bounds; ``None`` means unbounded on that side.
    low_inclusive, high_inclusive:
        Whether the bound itself is in the set.  Ignored for an
        unbounded side.

    An interval that admits no value (e.g. ``(3, 3)``) cannot be
    constructed directly — use :func:`make_range`, which normalises to
    :data:`EMPTY` or :class:`Constant` as appropriate.
    """

    __slots__ = ("low", "high", "low_inclusive", "high_inclusive")

    def __init__(
        self,
        low: Optional[Any],
        high: Optional[Any],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> None:
        if low is None:
            low_inclusive = False
        if high is None:
            high_inclusive = False
        if low is not None and high is not None:
            try:
                degenerate = low > high or (
                    low == high and not (low_inclusive and high_inclusive)
                )
            except TypeError as exc:
                raise PatternError(
                    f"range bounds {low!r} and {high!r} are not comparable"
                ) from exc
            if degenerate:
                raise PatternError(
                    f"range [{low!r}, {high!r}] admits no value; "
                    "use make_range() to normalise degenerate ranges"
                )
            if low == high:
                raise PatternError(
                    f"range collapsing to the single value {low!r} must be a "
                    "Constant; use make_range() to normalise"
                )
        if low is None and high is None:
            raise PatternError("a fully unbounded range must be the WILDCARD pattern")
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive

    def matches(self, value: Any) -> bool:
        try:
            if self.low is not None:
                if self.low_inclusive:
                    if value < self.low:
                        return False
                elif value <= self.low:
                    return False
            if self.high is not None:
                if self.high_inclusive:
                    if value > self.high:
                        return False
                elif value >= self.high:
                    return False
        except TypeError:
            return False
        return True

    def conjoin(self, other: Pattern) -> Pattern:
        if isinstance(other, (Wildcard, Empty, Constant)):
            return other.conjoin(self)
        if isinstance(other, EnumerationList):
            return other.conjoin(self)
        if not isinstance(other, Range):
            raise PatternError(f"cannot conjoin Range with {other!r}")
        low, low_inc = self.low, self.low_inclusive
        if other.low is not None and (low is None or other.low > low):
            low, low_inc = other.low, other.low_inclusive
        elif other.low is not None and other.low == low:
            low_inc = low_inc and other.low_inclusive
        high, high_inc = self.high, self.high_inclusive
        if other.high is not None and (high is None or other.high < high):
            high, high_inc = other.high, other.high_inclusive
        elif other.high is not None and other.high == high:
            high_inc = high_inc and other.high_inclusive
        return make_range(low, high, low_inc, high_inc)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return (
            self.low == other.low
            and self.high == other.high
            and self.low_inclusive == other.low_inclusive
            and self.high_inclusive == other.high_inclusive
        )

    def __hash__(self) -> int:
        return hash(
            ("Range", self.low, self.high, self.low_inclusive, self.high_inclusive)
        )

    def __repr__(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"{left}{low}, {high}{right}"


def make_range(
    low: Optional[Any],
    high: Optional[Any],
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> Pattern:
    """Build a range pattern, normalising degenerate cases.

    Returns :data:`WILDCARD` when both sides are unbounded,
    :class:`Constant` when the interval contains exactly one point, and
    :data:`EMPTY` when it contains none.
    """
    if low is None and high is None:
        return WILDCARD
    if low is not None and high is not None:
        try:
            if low > high:
                return EMPTY
            if low == high:
                if low_inclusive and high_inclusive:
                    return Constant(low)
                return EMPTY
        except TypeError as exc:
            raise PatternError(
                f"range bounds {low!r} and {high!r} are not comparable"
            ) from exc
    return Range(low, high, low_inclusive, high_inclusive)


class EnumerationList(Pattern):
    """A finite-set pattern.

    Always contains at least two values: smaller sets are normalised to
    :class:`Constant` or :data:`EMPTY` by :func:`make_enumeration`.
    """

    __slots__ = ("values",)

    def __init__(self, values: FrozenSet[Any]) -> None:
        values = frozenset(values)
        if len(values) < 2:
            raise PatternError(
                "an EnumerationList needs at least two values; "
                "use make_enumeration() to normalise smaller sets"
            )
        self.values = values

    def matches(self, value: Any) -> bool:
        try:
            return value in self.values
        except TypeError:
            return False

    def conjoin(self, other: Pattern) -> Pattern:
        if isinstance(other, (Wildcard, Empty, Constant)):
            return other.conjoin(self)
        if isinstance(other, EnumerationList):
            return make_enumeration(self.values & other.values)
        if isinstance(other, Range):
            return make_enumeration(v for v in self.values if other.matches(v))
        raise PatternError(f"cannot conjoin EnumerationList with {other!r}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnumerationList):
            return NotImplemented
        return self.values == other.values

    def __hash__(self) -> int:
        return hash(("EnumerationList", self.values))

    def __repr__(self) -> str:
        try:
            inner = ", ".join(repr(v) for v in sorted(self.values))
        except TypeError:
            inner = ", ".join(sorted(repr(v) for v in self.values))
        return "{" + inner + "}"


def make_enumeration(values: Any) -> Pattern:
    """Build an enumeration pattern, normalising small sets.

    The empty set becomes :data:`EMPTY` and a singleton becomes a
    :class:`Constant`.
    """
    values = frozenset(values)
    if not values:
        return EMPTY
    if len(values) == 1:
        return Constant(next(iter(values)))
    return EnumerationList(values)


def _parse_scalar(text: str) -> Any:
    """Parse one scalar literal: int, float, quoted or bare string."""
    text = text.strip()
    if not text:
        raise PatternError("empty scalar in pattern text")
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def parse_pattern(text: str) -> Pattern:
    """Parse a pattern from its textual notation.

    The notation mirrors ``repr``: ``*`` (wildcard), ``<>`` (empty),
    ``{1, 2, 3}`` (enumeration), ``[1, 5]`` / ``(1, 5)`` / mixed
    brackets (range; ``-inf`` / ``+inf`` / empty for an unbounded
    side), and anything else as a constant (ints, floats, quoted or
    bare strings).

    >>> parse_pattern("[3, 9)").matches(3)
    True
    >>> parse_pattern("{1, 2}").matches(3)
    False
    """
    text = text.strip()
    if not text:
        raise PatternError("cannot parse an empty pattern")
    if text == "*":
        return WILDCARD
    if text == "<>":
        return EMPTY
    if text.startswith("{") and text.endswith("}"):
        inner = text[1:-1].strip()
        if not inner:
            return EMPTY
        return make_enumeration(_parse_scalar(part) for part in inner.split(","))
    if text[0] in "[(" and text[-1] in ")]":
        inner = text[1:-1]
        parts = inner.split(",")
        if len(parts) != 2:
            raise PatternError(
                f"range pattern needs exactly two bounds, got {text!r}"
            )
        low_text, high_text = parts[0].strip(), parts[1].strip()
        low = None if low_text in ("", "-inf") else _parse_scalar(low_text)
        high = None if high_text in ("", "+inf", "inf") else _parse_scalar(high_text)
        return make_range(low, high, text[0] == "[", text[-1] == "]")
    return Constant(_parse_scalar(text))


def pattern_from_spec(spec: Any) -> Pattern:
    """Build a pattern from a convenient Python literal.

    This is the friendly front door used by examples and workload code:

    * ``"*"`` or ``None`` → wildcard;
    * a ``(low, high)`` tuple → closed range (``None`` bounds are open
      sides);
    * a ``set`` or ``frozenset`` → enumeration list;
    * an existing :class:`Pattern` → itself;
    * anything else → a constant.
    """
    if isinstance(spec, Pattern):
        return spec
    if spec is None or spec == "*":
        return WILDCARD
    if isinstance(spec, tuple):
        if len(spec) != 2:
            raise PatternError(f"range spec must be (low, high), got {spec!r}")
        return make_range(spec[0], spec[1])
    if isinstance(spec, (set, frozenset)):
        return make_enumeration(spec)
    return Constant(spec)
