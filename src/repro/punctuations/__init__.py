"""Punctuation semantics (Tucker et al. [18], as used by PJoin).

A *punctuation* is an ordered set of patterns, one per schema attribute.
It is a promise embedded in a stream: every tuple arriving **after** the
punctuation evaluates to *false* against it.  Tuples before it may match
or not.  Five pattern kinds exist: wildcard, constant, range,
enumeration list and the empty pattern; the conjunction ("and") of any
two punctuations is again a punctuation.

This package implements the full pattern algebra
(:mod:`~repro.punctuations.patterns`), punctuations over schemas
(:mod:`~repro.punctuations.punctuation`), and the per-stream punctuation
set with ``setMatch`` semantics (:mod:`~repro.punctuations.store`).
"""

from repro.punctuations.patterns import (
    Constant,
    Empty,
    EnumerationList,
    Pattern,
    Range,
    Wildcard,
    EMPTY,
    WILDCARD,
    parse_pattern,
    pattern_from_spec,
)
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore, is_join_exploitable
from repro.punctuations.derive import (
    ClusteredArrivalPunctuator,
    KeyDerivedPunctuator,
    OrderedArrivalPunctuator,
    annotate_schedule,
)

__all__ = [
    "Pattern",
    "Wildcard",
    "Constant",
    "Range",
    "EnumerationList",
    "Empty",
    "WILDCARD",
    "EMPTY",
    "pattern_from_spec",
    "parse_pattern",
    "Punctuation",
    "PunctuationStore",
    "is_join_exploitable",
    "KeyDerivedPunctuator",
    "OrderedArrivalPunctuator",
    "ClusteredArrivalPunctuator",
    "annotate_schedule",
]
