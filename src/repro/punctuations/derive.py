"""Deriving punctuations from static constraints (paper Section 1.1).

The paper notes that besides applications embedding punctuations
actively, "the query system itself can also derive punctuations based
on ... certain static constraints, including the join between key and
foreign key, clustered or ordered arrival of certain attribute values".
This module implements those derivations as *stream decorators*: they
wrap a schedule (or run inline as operators would) and inject the
punctuations the constraint justifies.

Three derivations:

* :class:`KeyDerivedPunctuator` — the attribute is a key of the stream
  (each value occurs at most once), so after every tuple a constant
  punctuation for its value is sound.  This is exactly the paper's
  Open-stream example: "since each tuple in the Open stream has a
  unique item_id value, the query system can insert a punctuation after
  each tuple".
* :class:`OrderedArrivalPunctuator` — the attribute arrives in
  non-decreasing order, so whenever it advances past a value *v*, a
  range punctuation ``(-inf, v)`` (all strictly smaller values are
  finished) is sound.
* :class:`ClusteredArrivalPunctuator` — equal attribute values arrive
  contiguously, so when the value changes, a constant punctuation for
  the previous cluster's value is sound.

Each punctuator *verifies* its constraint while deriving and raises
:class:`~repro.errors.PunctuationError` if the stream violates it —
deriving from a false premise would corrupt every downstream purge.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Set, Tuple as PyTuple

from repro.errors import PunctuationError
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.patterns import make_range
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

ScheduleItem = PyTuple[float, Any]


class _Punctuator:
    """Base class: derive punctuations while streaming a schedule."""

    def __init__(self, schema: Schema, field_name: str) -> None:
        self.schema = schema
        self.field_name = field_name
        self.field_index = schema.index_of(field_name)
        self.punctuations_derived = 0

    def process(self, item: Any, ts: float) -> List[Punctuation]:
        """Punctuations to emit right after *item*."""
        raise NotImplementedError

    def finish(self, ts: float) -> List[Punctuation]:
        """Punctuations to emit at end-of-stream (default none)."""
        return []

    def annotate(self, schedule: Iterable[ScheduleItem]) -> Iterator[ScheduleItem]:
        """Yield the schedule with derived punctuations interleaved.

        Existing punctuations in the input schedule pass through
        untouched; derived ones are inserted at the same virtual time as
        the tuple that justified them.
        """
        ts = 0.0
        for ts, item in schedule:
            yield ts, item
            if isinstance(item, Tuple):
                for punct in self.process(item, ts):
                    self.punctuations_derived += 1
                    yield ts, punct
        for punct in self.finish(ts):
            self.punctuations_derived += 1
            yield ts, punct


class KeyDerivedPunctuator(_Punctuator):
    """Derive one constant punctuation per tuple of a key attribute."""

    def __init__(self, schema: Schema, field_name: str) -> None:
        super().__init__(schema, field_name)
        self._seen: Set[Any] = set()

    def process(self, item: Tuple, ts: float) -> List[Punctuation]:
        value = item.values[self.field_index]
        if value in self._seen:
            raise PunctuationError(
                f"key-derived punctuation premise violated: value {value!r} "
                f"of {self.field_name!r} occurred twice"
            )
        self._seen.add(value)
        return [Punctuation.on_field(self.schema, self.field_name, value, ts=ts)]


class OrderedArrivalPunctuator(_Punctuator):
    """Derive range punctuations from non-decreasing arrival order.

    When the ordered attribute advances from *u* to *v* (with v > u),
    every value strictly below *v* is finished: emit the punctuation
    ``field < v`` (an open-ended range) once per advance.
    """

    def __init__(self, schema: Schema, field_name: str) -> None:
        super().__init__(schema, field_name)
        self._current: Optional[Any] = None

    def process(self, item: Tuple, ts: float) -> List[Punctuation]:
        value = item.values[self.field_index]
        if self._current is None:
            self._current = value
            return []
        if value < self._current:
            raise PunctuationError(
                f"ordered-arrival premise violated: {self.field_name!r} "
                f"went from {self._current!r} back to {value!r}"
            )
        if value == self._current:
            return []
        self._current = value
        pattern = make_range(None, value, high_inclusive=False)
        return [
            Punctuation.on_field(self.schema, self.field_name, pattern, ts=ts)
        ]


class ClusteredArrivalPunctuator(_Punctuator):
    """Derive constant punctuations from clustered arrival.

    Equal values arrive contiguously; when the value changes, the
    previous cluster is over.  The final cluster is punctuated by
    :meth:`finish` at end-of-stream.
    """

    def __init__(self, schema: Schema, field_name: str) -> None:
        super().__init__(schema, field_name)
        self._current: Optional[Any] = None
        self._closed: Set[Any] = set()
        self._started = False

    def process(self, item: Tuple, ts: float) -> List[Punctuation]:
        value = item.values[self.field_index]
        if value in self._closed:
            raise PunctuationError(
                f"clustered-arrival premise violated: value {value!r} of "
                f"{self.field_name!r} reappeared after its cluster closed"
            )
        if not self._started:
            self._started = True
            self._current = value
            return []
        if value == self._current:
            return []
        finished = self._current
        self._closed.add(finished)
        self._current = value
        return [
            Punctuation.on_field(self.schema, self.field_name, finished, ts=ts)
        ]

    def finish(self, ts: float) -> List[Punctuation]:
        if not self._started:
            return []
        return [
            Punctuation.on_field(self.schema, self.field_name, self._current, ts=ts)
        ]


def annotate_schedule(
    schedule: Iterable[ScheduleItem], punctuator: _Punctuator
) -> List[ScheduleItem]:
    """Materialise :meth:`_Punctuator.annotate` into a list schedule."""
    return list(punctuator.annotate(schedule))
