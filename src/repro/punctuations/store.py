"""Per-stream punctuation sets with ``setMatch`` semantics.

The paper denotes all punctuations that arrived from stream *A* before
time *T* as the set ``PS_A(T)``; a tuple *set-matches* the set when it
matches at least one member.  :class:`PunctuationStore` realises that
set with two efficiency properties the join relies on:

* constant patterns on the join attribute (by far the common case —
  e.g. one punctuation per closed auction item) are indexed in a dict,
  so ``setMatch`` on a join value is O(1);
* range patterns sit in a bisect-based interval index
  (:class:`~repro.perf.interval.RangeIntervalIndex`, O(log n) point
  queries), enumerations in a per-member dict, and wildcards in their
  own list — only patterns none of those structures can hold (e.g.
  ranges with non-numeric bounds) fall back to a linear scan;
* every stored punctuation gets a stable, monotonically increasing id
  equal to its arrival position, so components (state purge, index
  building) can keep cheap cursors for "punctuations that arrived since
  I last ran".

The store also implements the paper's prefix-consistency assumption
checker: for punctuations :math:`p_i` arriving before :math:`p_j`, the
join-attribute patterns must be either disjoint or equal.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple as PyTuple

from repro.errors import PunctuationError
from repro.perf.interval import RangeIntervalIndex
from repro.punctuations.patterns import (
    Constant,
    EnumerationList,
    Pattern,
    Range,
    Wildcard,
)
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema


def is_join_exploitable(punct: Punctuation, join_field: str) -> bool:
    """Can a join on *join_field* safely exploit *punct*?

    A punctuation promises "no more tuples matching **all** patterns".
    The join purges opposite-state tuples by join value alone, which is
    only sound when every non-join pattern is a wildcard — otherwise
    tuples with the punctuated join value but different other attributes
    may still arrive.  The paper assumes punctuations over the join
    attribute; this predicate makes the assumption explicit and safe.
    """
    join_index = punct.schema.index_of(join_field)
    for i, pattern in enumerate(punct.patterns):
        if i != join_index and not pattern.is_wildcard:
            return False
    return True


class PunctuationStore:
    """The punctuation set ``PS`` of one input stream.

    Parameters
    ----------
    schema:
        Schema of the stream.
    join_field:
        Name of the join attribute; ``setMatch`` queries are evaluated
        against each punctuation's pattern on this field.
    check_prefix_consistency:
        When ``True``, :meth:`add` verifies the paper's assumption that
        the join-attribute patterns of any two punctuations are either
        equal or disjoint.  Disjointness of two non-constant patterns is
        approximated conservatively (equal patterns pass; a constant is
        checked by membership); enable in tests, disable on hot paths.
    """

    def __init__(
        self,
        schema: Schema,
        join_field: str,
        check_prefix_consistency: bool = False,
    ) -> None:
        self.schema = schema
        self.join_field = join_field
        self.join_index = schema.index_of(join_field)
        self.check_prefix_consistency = check_prefix_consistency
        # id -> punctuation; tombstoned to None on removal so ids stay stable.
        self._entries: List[Optional[Punctuation]] = []
        # join constant value -> ids of punctuations with that constant.
        self._constants: Dict[Any, List[int]] = {}
        # Numeric range patterns, bisect-indexed by low bound.
        self._ranges = RangeIntervalIndex()
        # enum member value -> ids of enumerations containing it, plus
        # the exact patterns for duplicate detection.
        self._enum_values: Dict[Any, List[int]] = {}
        self._enum_patterns: Dict[EnumerationList, List[int]] = {}
        # ids of punctuations whose join pattern is a wildcard.
        self._wildcards: List[int] = []
        # ids no structure above can hold (non-numeric ranges, EMPTY...).
        self._general: List[int] = []
        self._live_count = 0
        self.total_added = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, punct: Punctuation) -> int:
        """Store *punct* and return its stable id (arrival position)."""
        if punct.schema != self.schema:
            raise PunctuationError(
                "punctuation schema does not match the store's stream schema"
            )
        join_pattern = punct.patterns[self.join_index]
        if self.check_prefix_consistency:
            self._check_consistency(join_pattern)
        pid = len(self._entries)
        self._entries.append(punct)
        if isinstance(join_pattern, Constant):
            self._constants.setdefault(join_pattern.value, []).append(pid)
        elif isinstance(join_pattern, Range):
            if not self._ranges.add(join_pattern, pid):
                self._general.append(pid)
        elif isinstance(join_pattern, EnumerationList):
            self._enum_patterns.setdefault(join_pattern, []).append(pid)
            enum_values = self._enum_values
            for member in join_pattern.values:
                enum_values.setdefault(member, []).append(pid)
        elif isinstance(join_pattern, Wildcard):
            self._wildcards.append(pid)
        else:
            self._general.append(pid)
        self._live_count += 1
        self.total_added += 1
        return pid

    def remove(self, pid: int) -> None:
        """Remove the punctuation with id *pid* (e.g. once propagated)."""
        punct = self._entries[pid]
        if punct is None:
            return
        self._entries[pid] = None
        join_pattern = punct.patterns[self.join_index]
        if isinstance(join_pattern, Constant):
            ids = self._constants.get(join_pattern.value)
            if ids is not None:
                ids.remove(pid)
                if not ids:
                    del self._constants[join_pattern.value]
        elif isinstance(join_pattern, Range):
            if not self._ranges.remove(join_pattern, pid):
                self._general.remove(pid)
        elif isinstance(join_pattern, EnumerationList):
            ids = self._enum_patterns.get(join_pattern)
            if ids is not None:
                ids.remove(pid)
                if not ids:
                    del self._enum_patterns[join_pattern]
            for member in join_pattern.values:
                ids = self._enum_values.get(member)
                if ids is not None:
                    ids.remove(pid)
                    if not ids:
                        del self._enum_values[member]
        elif isinstance(join_pattern, Wildcard):
            self._wildcards.remove(pid)
        else:
            self._general.remove(pid)
        self._live_count -= 1

    def _check_consistency(self, new_pattern: Pattern) -> None:
        """Enforce "disjoint or equal" against all live join patterns."""
        for pid, punct in self.items():
            old = punct.patterns[self.join_index]
            if old == new_pattern:
                continue
            if self._definitely_disjoint(old, new_pattern):
                continue
            raise PunctuationError(
                f"punctuation join patterns {old!r} and {new_pattern!r} are "
                "neither equal nor disjoint (prefix-consistency violated)"
            )

    @staticmethod
    def _definitely_disjoint(a: Pattern, b: Pattern) -> bool:
        """Conservative disjointness test via normalised conjunction."""
        return a.conjoin(b).is_empty

    # ------------------------------------------------------------------
    # setMatch queries
    # ------------------------------------------------------------------

    def has_equal_join_pattern(self, pattern: Pattern) -> bool:
        """Is a live punctuation with this exact join pattern stored?

        Joins use this to drop *duplicate* punctuations: storing two
        punctuations with equal join patterns would let the second one's
        index count reach zero while tuples carrying the first one's pid
        still sit in the state, breaking Theorem 1's premise.
        """
        if isinstance(pattern, Constant):
            return pattern.value in self._constants
        if isinstance(pattern, EnumerationList):
            return pattern in self._enum_patterns
        if isinstance(pattern, Wildcard):
            return bool(self._wildcards)
        if isinstance(pattern, Range) and self._ranges.has_pattern(pattern):
            return True
        # Non-indexable ranges and exotic patterns: linear fallback.
        for pid in self._general:
            punct = self._entries[pid]
            if punct is not None and punct.patterns[self.join_index] == pattern:
                return True
        return False

    def _range_pids(self, value: Any) -> List[int]:
        """Pids of range punctuations covering *value*."""
        pids = self._ranges.query(value)
        if pids is not None:
            return pids
        # Index degraded (overlapping ranges seen): linear fallback.
        out: List[int] = []
        for pattern, ids in self._ranges.items():
            if pattern.matches(value):
                out.extend(ids)
        return out

    def covers_value(self, value: Any) -> bool:
        """``setMatch`` on a join value: does any punctuation cover it?"""
        if value in self._constants:
            return True
        if self._wildcards:
            return True
        if self._enum_values and value in self._enum_values:
            return True
        if self._ranges and self._range_pids(value):
            return True
        for pid in self._general:
            punct = self._entries[pid]
            if punct is not None and punct.patterns[self.join_index].matches(value):
                return True
        return False

    def covering_pids(self, value: Any) -> List[int]:
        """Ids of *all* live punctuations covering *value*, ascending.

        The ``repair`` fault policy uses this to retract every promise a
        violating tuple contradicts without scanning the whole store.
        """
        out: List[int] = []
        ids = self._constants.get(value)
        if ids:
            out.extend(ids)
        if self._wildcards:
            out.extend(self._wildcards)
        if self._enum_values:
            ids = self._enum_values.get(value)
            if ids:
                out.extend(ids)
        if self._ranges:
            out.extend(self._range_pids(value))
        for pid in self._general:
            punct = self._entries[pid]
            if punct is not None and punct.patterns[self.join_index].matches(value):
                out.append(pid)
        out.sort()
        return out

    def first_covering(self, value: Any) -> Optional[PyTuple[int, Punctuation]]:
        """Return the earliest-arrived live punctuation covering *value*.

        Arrival order matters for the punctuation index: the paper sets a
        tuple's ``pid`` to "the pid of the first arrived punctuation
        found to be matched".
        """
        pids = self.covering_pids(value)
        if not pids:
            return None
        punct = self._entries[pids[0]]
        assert punct is not None
        return pids[0], punct

    def get(self, pid: int) -> Optional[Punctuation]:
        """Return the live punctuation with id *pid*, or ``None``."""
        if 0 <= pid < len(self._entries):
            return self._entries[pid]
        return None

    # ------------------------------------------------------------------
    # Iteration / cursors
    # ------------------------------------------------------------------

    def items(self) -> Iterator[PyTuple[int, Punctuation]]:
        """Iterate over live ``(id, punctuation)`` pairs in arrival order."""
        for pid, punct in enumerate(self._entries):
            if punct is not None:
                yield pid, punct

    def since(self, cursor: int) -> List[PyTuple[int, Punctuation]]:
        """Live punctuations with id >= *cursor*, in arrival order.

        Components call this with their saved cursor and then advance the
        cursor to :attr:`next_id` — the classic "what is new since I last
        ran" pattern used by lazy purge and lazy index building.
        """
        result = []
        for pid in range(max(cursor, 0), len(self._entries)):
            punct = self._entries[pid]
            if punct is not None:
                result.append((pid, punct))
        return result

    @property
    def next_id(self) -> int:
        """The id the next added punctuation will receive."""
        return len(self._entries)

    def counters(self) -> dict:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "punctuations_seen": self.total_added,
            "live": self._live_count,
            "removed": self.total_added - self._live_count,
        }

    def __len__(self) -> int:
        return self._live_count

    def __iter__(self) -> Iterator[Punctuation]:
        for _pid, punct in self.items():
            yield punct

    def __repr__(self) -> str:
        return (
            f"PunctuationStore(join_field={self.join_field!r}, "
            f"live={self._live_count}, total={self.total_added})"
        )
