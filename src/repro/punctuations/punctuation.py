"""Punctuations over a schema.

A :class:`Punctuation` is an ordered set of patterns, one per schema
attribute (Section 2.2 of the paper).  A tuple *matches* a punctuation
when every attribute value satisfies the corresponding pattern.  The
conjunction of two punctuations over the same schema is again a
punctuation (pattern-wise conjunction).

PJoin only *exploits* the pattern on the join attribute, but the full
structure is kept so punctuations can be routed through non-join
operators (select, project, group-by) with correct pass/propagate
semantics.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Tuple as PyTuple

from repro.errors import PunctuationError
from repro.punctuations.patterns import EMPTY, WILDCARD, Pattern, pattern_from_spec
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class Punctuation:
    """An ordered set of patterns describing "no more such tuples".

    Parameters
    ----------
    schema:
        The schema of the stream the punctuation is embedded in.
    patterns:
        One :class:`~repro.punctuations.patterns.Pattern` per schema
        field, in field order.
    ts:
        Virtual arrival time (milliseconds).
    """

    __slots__ = ("schema", "patterns", "ts")

    def __init__(
        self,
        schema: Schema,
        patterns: Iterable[Pattern],
        ts: float = 0.0,
    ) -> None:
        patterns = tuple(patterns)
        if len(patterns) != schema.arity:
            raise PunctuationError(
                f"punctuation needs {schema.arity} patterns for schema "
                f"{schema.name or '<anonymous>'}, got {len(patterns)}"
            )
        for pattern in patterns:
            if not isinstance(pattern, Pattern):
                raise PunctuationError(f"expected Pattern, got {pattern!r}")
        self.schema = schema
        self.patterns = patterns
        self.ts = ts

    @classmethod
    def on_field(
        cls,
        schema: Schema,
        field_name: str,
        spec: Any,
        ts: float = 0.0,
    ) -> "Punctuation":
        """Build a punctuation constraining one field, wildcard elsewhere.

        This is the common case throughout the paper: e.g. a punctuation
        on ``item_id`` signalling that the auction for one item closed.
        *spec* accepts anything :func:`pattern_from_spec` does.
        """
        index = schema.index_of(field_name)
        patterns = [WILDCARD] * schema.arity
        patterns[index] = pattern_from_spec(spec)
        return cls(schema, patterns, ts=ts)

    @classmethod
    def from_mapping(
        cls,
        schema: Schema,
        specs: Mapping[str, Any],
        ts: float = 0.0,
    ) -> "Punctuation":
        """Build a punctuation from ``{field_name: pattern_spec}``."""
        patterns = [WILDCARD] * schema.arity
        for field_name, spec in specs.items():
            patterns[schema.index_of(field_name)] = pattern_from_spec(spec)
        return cls(schema, patterns, ts=ts)

    def pattern_for(self, field_name: str) -> Pattern:
        """Return the pattern constraining the named field."""
        return self.patterns[self.schema.index_of(field_name)]

    def matches(self, tup: Tuple) -> bool:
        """``match(t, p)``: does every value satisfy its pattern?"""
        values = tup.values
        for pattern, value in zip(self.patterns, values):
            if not pattern.matches(value):
                return False
        return True

    def matches_values(self, values: PyTuple[Any, ...]) -> bool:
        """Like :meth:`matches` but on a raw value tuple."""
        for pattern, value in zip(self.patterns, values):
            if not pattern.matches(value):
                return False
        return True

    def conjoin(self, other: "Punctuation", ts: float = 0.0) -> "Punctuation":
        """The "and" of two punctuations (pattern-wise conjunction).

        The paper requires the conjunction of any two punctuations to be
        a punctuation; this realises that closure property.
        """
        if self.schema != other.schema:
            raise PunctuationError(
                "cannot conjoin punctuations over different schemas"
            )
        patterns = [
            p.conjoin(q) for p, q in zip(self.patterns, other.patterns)
        ]
        return Punctuation(self.schema, patterns, ts=ts)

    @property
    def is_empty(self) -> bool:
        """``True`` when some pattern is empty, so no tuple can match."""
        return any(p is EMPTY or p.is_empty for p in self.patterns)

    @property
    def is_all_wildcard(self) -> bool:
        """``True`` when every pattern is the wildcard.

        An all-wildcard punctuation asserts the stream carries no more
        tuples at all — the punctuation equivalent of end-of-stream.
        """
        return all(p.is_wildcard for p in self.patterns)

    def with_ts(self, ts: float) -> "Punctuation":
        """Return a copy stamped with a new timestamp."""
        return Punctuation(self.schema, self.patterns, ts=ts)

    def restricted_to(self, field_names: Iterable[str]) -> "Punctuation":
        """Project the punctuation onto a subset of fields.

        Used by the project operator's punctuation propagation rule: a
        punctuation survives projection when the dropped fields are all
        wildcards (otherwise the projected promise would be too strong
        and must not be emitted).  This method only reorders/selects
        patterns; the caller checks droppability first.
        """
        keep = list(field_names)
        sub_schema = self.schema.project(keep)
        patterns = [self.pattern_for(name) for name in keep]
        return Punctuation(sub_schema, patterns, ts=self.ts)

    def key(self) -> PyTuple[Any, ...]:
        """Hashable identity (patterns only, not timestamp)."""
        return self.patterns

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Punctuation):
            return NotImplemented
        return self.patterns == other.patterns and self.schema == other.schema

    def __hash__(self) -> int:
        return hash(self.patterns)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}:{pattern!r}"
            for name, pattern in zip(self.schema.field_names, self.patterns)
        )
        return f"Punct<{inner}, ts={self.ts:g}>"
