"""N-stream punctuated workloads for the multi-way join planner.

Generalizes the binary generator (:mod:`repro.workloads.generator`) to
*n* co-generated streams sharing one join-value lifecycle, and adds the
one knob the adaptive planner needs that the binary spec cannot
express: **rate drift**.  Each stream's punctuation spacing may switch
to a second value partway through the run (``drift_spacings`` at
``drift_at``), so the stream that keeps its state small early is the
one whose state accretes late — the regime in which a fixed probe
order must be wrong in one half of the run.

Validity is preserved by construction exactly as in the binary
generator: every stream draws keys only from its own open window
``[lo, hi)`` and punctuates its oldest open value, so no stream ever
emits a tuple on a value it has promised away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, List, Optional, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.sim.arrivals import poisson_tuple_spacing
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple

Schedule = List[PyTuple[float, Any]]


def _stream_schema(i: int) -> Schema:
    return Schema(
        [Field("key", int), Field("seq", int), Field("payload", float)],
        name=f"S{i}",
    )


@dataclass(frozen=True)
class NaryWorkloadSpec:
    """Parameters of an n-stream punctuated workload with optional drift.

    Parameters
    ----------
    n_streams:
        Number of co-generated streams (>= 2).
    n_tuples_per_stream:
        Data tuples per stream (punctuations come on top).
    tuple_interarrival_ms:
        Mean Poisson tuple inter-arrival (every stream, unless
        ``interarrival_ms`` overrides it per stream).
    interarrival_ms:
        Per-stream mean tuple inter-arrival; a slow stream is *sparse*
        (few tuples per open value), so probes into it miss often and
        end the probe pipeline early — the asymmetry a probe order can
        exploit.
    punct_spacings:
        Mean punctuation spacing (tuples/punctuation) per stream;
        ``None`` disables punctuations for that stream.  Length must
        equal ``n_streams``.
    drift_spacings:
        When set, each stream switches to this spacing after emitting
        ``drift_at`` of its tuples — punctuation-cadence drift.
    drift_interarrival_ms:
        When set, each stream switches to this mean inter-arrival after
        emitting ``drift_at`` of its tuples — arrival-rate drift (the
        dense and sparse streams trade places mid-run).
    drift_at:
        Fraction of a stream's tuples after which the drifts apply.
    active_values:
        Join values open at any moment (many-to-many multiplicity).
    aligned_punctuations:
        Deterministic (exact-mean) punctuation spacing when ``True``.
    seed:
        Base RNG seed; each stream derives its own generator from it.
    """

    n_streams: int = 3
    n_tuples_per_stream: int = 6_000
    tuple_interarrival_ms: float = 2.0
    interarrival_ms: Optional[PyTuple[float, ...]] = None
    punct_spacings: PyTuple[Optional[float], ...] = (40.0, 40.0, 40.0)
    drift_spacings: Optional[PyTuple[Optional[float], ...]] = None
    drift_interarrival_ms: Optional[PyTuple[float, ...]] = None
    drift_at: float = 0.5
    active_values: int = 10
    aligned_punctuations: bool = False
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_streams < 2:
            raise WorkloadError(f"n_streams must be >= 2, got {self.n_streams}")
        if self.n_tuples_per_stream < 1:
            raise WorkloadError(
                f"n_tuples_per_stream must be >= 1, got {self.n_tuples_per_stream}"
            )
        if self.tuple_interarrival_ms <= 0:
            raise WorkloadError(
                "tuple_interarrival_ms must be positive, "
                f"got {self.tuple_interarrival_ms}"
            )
        for label, spacings in (
            ("punct_spacings", self.punct_spacings),
            ("drift_spacings", self.drift_spacings),
        ):
            if spacings is None:
                continue
            if len(spacings) != self.n_streams:
                raise WorkloadError(
                    f"{label} needs one entry per stream "
                    f"({self.n_streams}), got {len(spacings)}"
                )
            for spacing in spacings:
                if spacing is not None and spacing < 1:
                    raise WorkloadError(
                        f"{label} entries must be >= 1 or None, got {spacing}"
                    )
        for label, gaps in (
            ("interarrival_ms", self.interarrival_ms),
            ("drift_interarrival_ms", self.drift_interarrival_ms),
        ):
            if gaps is None:
                continue
            if len(gaps) != self.n_streams:
                raise WorkloadError(
                    f"{label} needs one entry per stream "
                    f"({self.n_streams}), got {len(gaps)}"
                )
            for gap in gaps:
                if gap <= 0:
                    raise WorkloadError(
                        f"{label} entries must be positive, got {gap}"
                    )
        if not 0.0 < self.drift_at < 1.0:
            raise WorkloadError(
                f"drift_at must be in (0, 1), got {self.drift_at}"
            )
        if self.active_values < 1:
            raise WorkloadError(
                f"active_values must be >= 1, got {self.active_values}"
            )

    def with_overrides(self, **overrides: Any) -> "NaryWorkloadSpec":
        return replace(self, **overrides)


class NaryGeneratedWorkload:
    """Generator output: one schedule per stream plus shared metadata.

    Mirrors :class:`~repro.workloads.generator.GeneratedWorkload` so the
    experiment harness runs either shape through the same code path.
    """

    def __init__(self, spec: NaryWorkloadSpec, schedules: List[Schedule]) -> None:
        self.spec = spec
        self.schedules = tuple(schedules)
        self.schemas = tuple(_stream_schema(i) for i in range(spec.n_streams))
        self.join_fields = tuple("key" for _ in range(spec.n_streams))

    @property
    def stream_names(self) -> PyTuple[str, ...]:
        return tuple(schema.name for schema in self.schemas)

    def tuples(self, side: int) -> List[Tuple]:
        return [item for _t, item in self.schedules[side] if isinstance(item, Tuple)]

    def punctuations(self, side: int) -> List[Punctuation]:
        return [
            item
            for _t, item in self.schedules[side]
            if isinstance(item, Punctuation)
        ]

    @property
    def end_time(self) -> float:
        last = 0.0
        for schedule in self.schedules:
            if schedule:
                last = max(last, schedule[-1][0])
        return last

    def __repr__(self) -> str:
        return (
            f"NaryGeneratedWorkload(streams={self.spec.n_streams}, "
            f"tuples={self.spec.n_tuples_per_stream}/stream, "
            f"seed={self.spec.seed})"
        )


@dataclass
class _Stream:
    rng: random.Random
    spacing: Optional[float]
    interarrival: float = 2.0
    drift_spacing: Optional[float] = None
    drift_interarrival: Optional[float] = None
    drifted: bool = field(default=False)
    countdown: int = 0
    lo: int = 0
    seq: int = 0
    next_time: float = 0.0
    emitted: int = 0


class NaryStreamGenerator:
    """Co-generates the *n* streams of a :class:`NaryWorkloadSpec`."""

    def __init__(self, spec: NaryWorkloadSpec) -> None:
        self.spec = spec

    def generate(self) -> NaryGeneratedWorkload:
        spec = self.spec
        schemas = [_stream_schema(i) for i in range(spec.n_streams)]
        drift = spec.drift_spacings or tuple([None] * spec.n_streams)
        gaps = spec.interarrival_ms or tuple(
            [spec.tuple_interarrival_ms] * spec.n_streams
        )
        drift_gaps = spec.drift_interarrival_ms or tuple(
            [None] * spec.n_streams
        )
        streams = [
            _Stream(
                random.Random(spec.seed * 1_000_003 + side),
                spacing,
                interarrival=gaps[side],
                drift_spacing=drift[side],
                drift_interarrival=drift_gaps[side],
            )
            for side, spacing in enumerate(spec.punct_spacings)
        ]
        schedules: List[Schedule] = [[] for _ in streams]
        hi = spec.active_values
        drift_after = int(spec.drift_at * spec.n_tuples_per_stream)
        for stream in streams:
            stream.next_time = self._gap(stream)
            stream.countdown = self._spacing(stream)
        while any(s.emitted < spec.n_tuples_per_stream for s in streams):
            side = self._next_side(streams, spec.n_tuples_per_stream)
            stream = streams[side]
            now = stream.next_time
            key = stream.rng.randrange(stream.lo, hi)
            tup = Tuple(
                schemas[side],
                (key, stream.seq, round(stream.rng.random(), 6)),
                ts=now,
                validate=False,
            )
            schedules[side].append((now, tup))
            stream.seq += 1
            stream.emitted += 1
            stream.countdown -= 1
            if (
                (spec.drift_spacings is not None
                 or spec.drift_interarrival_ms is not None)
                and not stream.drifted
                and stream.emitted >= drift_after
            ):
                # The drift point: the stream's punctuation cadence
                # and/or arrival rate change for the rest of the run.
                if spec.drift_spacings is not None:
                    stream.spacing = stream.drift_spacing
                    stream.countdown = min(
                        stream.countdown, self._spacing(stream)
                    )
                if stream.drift_interarrival is not None:
                    stream.interarrival = stream.drift_interarrival
                stream.drifted = True
            if stream.spacing is not None and stream.countdown <= 0:
                if stream.lo < hi:
                    punct = Punctuation.on_field(
                        schemas[side], "key", stream.lo, ts=now
                    )
                    schedules[side].append((now, punct))
                    stream.lo += 1
                    if hi - stream.lo < spec.active_values:
                        hi += 1
                stream.countdown = self._spacing(stream)
            stream.next_time = now + self._gap(stream)
        return NaryGeneratedWorkload(spec, schedules)

    def _gap(self, stream: _Stream) -> float:
        return stream.rng.expovariate(1.0 / stream.interarrival)

    def _spacing(self, stream: _Stream) -> int:
        if stream.spacing is None:
            return 1 << 62  # effectively never
        if self.spec.aligned_punctuations:
            return max(1, round(stream.spacing))
        return poisson_tuple_spacing(stream.spacing, stream.rng)

    @staticmethod
    def _next_side(streams: List[_Stream], limit: int) -> int:
        best = -1
        best_time = float("inf")
        for side, stream in enumerate(streams):
            if stream.emitted >= limit:
                continue
            if stream.next_time < best_time:
                best = side
                best_time = stream.next_time
        return best


def generate_nary_workload(
    spec: Optional[NaryWorkloadSpec] = None, **overrides: Any
) -> NaryGeneratedWorkload:
    """Build a spec (or override one) and generate its streams."""
    if spec is None:
        spec = NaryWorkloadSpec(**overrides)
    elif overrides:
        spec = spec.with_overrides(**overrides)
    return NaryStreamGenerator(spec).generate()
