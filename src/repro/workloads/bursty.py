"""Bursty arrival patterns: bursts separated by silences.

XJoin's reactive background processing exists for "intermittent delays
in data arrival from slow remote resources" — it fetches disk-resident
state and finishes left-over joins *during the lulls*.  The paper's
benchmark system controls arrival patterns; this module supplies the
bursty pattern those mechanisms need.

Rather than a separate generator, :func:`make_bursty` re-times any
existing workload: virtual time is mapped piecewise so that activity is
compressed into bursts of ``burst_ms`` separated by silences of
``silence_ms``.  Item order, punctuation placement and therefore stream
validity are all preserved exactly.
"""

from __future__ import annotations

from typing import Any, List, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.generator import GeneratedWorkload

Schedule = List[PyTuple[float, Any]]


def _remap_time(t: float, compress: float, burst_ms: float, silence_ms: float) -> float:
    """Map original time *t* onto the burst/silence timeline.

    The original timeline is first compressed by ``compress`` (so a
    burst carries ``burst_ms / compress`` worth of original traffic),
    then silences are spliced in after every completed burst.
    """
    busy = t * compress
    full_bursts = int(busy // burst_ms)
    return busy + full_bursts * silence_ms


def make_bursty(
    workload: GeneratedWorkload,
    burst_ms: float = 200.0,
    silence_ms: float = 400.0,
    compress: float = 0.25,
) -> GeneratedWorkload:
    """Re-time a workload into bursts separated by silences.

    Parameters
    ----------
    workload:
        The smooth workload to re-time.
    burst_ms:
        Length of each activity burst on the new timeline.
    silence_ms:
        Length of each silence between bursts.
    compress:
        Time compression inside bursts: 0.25 packs 4x the original
        arrival rate into each burst (mean inter-arrival 0.5 ms instead
        of 2 ms), which is what makes a memory-limited join fall behind
        during bursts and catch up in silences.
    """
    if burst_ms <= 0 or silence_ms < 0:
        raise WorkloadError("burst_ms must be positive and silence_ms >= 0")
    if not 0 < compress <= 1:
        raise WorkloadError(f"compress must be in (0, 1], got {compress}")
    new_schedules = []
    for schedule in workload.schedules:
        remapped: Schedule = []
        for t, item in schedule:
            new_t = _remap_time(t, compress, burst_ms, silence_ms)
            if isinstance(item, Tuple):
                item = item.with_ts(new_t)
            elif isinstance(item, Punctuation):
                item = item.with_ts(new_t)
            remapped.append((new_t, item))
        new_schedules.append(remapped)
    bursty = GeneratedWorkload(workload.spec, new_schedules[0], new_schedules[1])
    return bursty
