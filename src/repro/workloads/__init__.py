"""Synthetic punctuated-stream workloads (the paper's benchmark system).

The paper built "a benchmark system to generate synthetic data streams
by controlling the arrival patterns and rates of the data and
punctuations".  This package reproduces it:

* :class:`~repro.workloads.spec.WorkloadSpec` /
  :class:`~repro.workloads.generator.PunctuatedStreamGenerator` — the
  generic many-to-many workload used by every figure: Poisson tuple
  inter-arrival (mean 2 ms), Poisson punctuation spacing measured in
  tuples/punctuation, per-stream asymmetric rates, seeded determinism;
* :mod:`~repro.workloads.auction` — the running example: an online
  auction's ``Open`` and ``Bid`` streams with per-item punctuations;
* :mod:`~repro.workloads.reference` — oracle results (full join, window
  join) computed directly from schedules, for tests and examples.
"""

from repro.workloads.spec import WorkloadSpec
from repro.workloads.generator import (
    GeneratedWorkload,
    PunctuatedStreamGenerator,
    generate_workload,
)
from repro.workloads.nary import (
    NaryGeneratedWorkload,
    NaryStreamGenerator,
    NaryWorkloadSpec,
    generate_nary_workload,
)
from repro.workloads.auction import AuctionSpec, AuctionWorkloadGenerator
from repro.workloads.sensors import SensorSpec, SensorWorkloadGenerator
from repro.workloads.bursty import make_bursty
from repro.workloads.faults import (
    InjectedViolation,
    delay_punctuations,
    drop_random_punctuations,
    inject_duplicates,
    inject_out_of_order,
    inject_punctuation_violation,
    inject_stall,
)
from repro.workloads.reference import (
    reference_join_multiset,
    reference_window_join_multiset,
)

__all__ = [
    "WorkloadSpec",
    "PunctuatedStreamGenerator",
    "GeneratedWorkload",
    "generate_workload",
    "NaryWorkloadSpec",
    "NaryStreamGenerator",
    "NaryGeneratedWorkload",
    "generate_nary_workload",
    "AuctionSpec",
    "AuctionWorkloadGenerator",
    "SensorSpec",
    "SensorWorkloadGenerator",
    "make_bursty",
    "InjectedViolation",
    "inject_punctuation_violation",
    "inject_duplicates",
    "inject_out_of_order",
    "inject_stall",
    "drop_random_punctuations",
    "delay_punctuations",
    "reference_join_multiset",
    "reference_window_join_multiset",
]
