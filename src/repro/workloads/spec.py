"""Workload specification for the generic punctuated-stream benchmark."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple as PyTuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the paper's synthetic many-to-many workload.

    Two streams, ``A`` and ``B``, joined on an integer ``key``.  Join
    values live through a sliding "open window": both streams draw keys
    from the most recent open values, and each stream closes its oldest
    open value — emitting a constant-pattern punctuation for it —
    according to its punctuation spacing.  This mirrors the auction
    scenario (items open, collect activity, close) and gives exactly the
    knobs the paper's experiments vary.

    Parameters
    ----------
    n_tuples_per_stream:
        Tuples generated per stream (punctuations come on top).
    tuple_interarrival_ms:
        Mean of the Poisson tuple inter-arrival time per stream.  The
        paper uses 2 ms everywhere.
    punct_spacing_a, punct_spacing_b:
        Mean punctuation spacing for each stream in tuples/punctuation
        ("punctuation inter-arrival" in the paper); ``None`` disables
        punctuations for that stream (the XJoin-equivalent regime).
    active_values:
        How many join values are live at any moment; drives the
        many-to-many multiplicity (each value receives roughly
        ``punct_spacing`` tuples per stream over its lifetime).
    aligned_punctuations:
        When ``True``, punctuation spacing is deterministic (exactly the
        mean) so both streams punctuate the same values in the same
        order — the "ideal case" of the propagation experiment (§4.4).
    seed:
        Base RNG seed; every derived stream is seeded from it.
    zipf_exponent:
        When set, keys are drawn Zipf-distributed over the open window
        instead of uniformly: the rank-``r`` open value gets weight
        ``1 / (r + 1) ** zipf_exponent``.  ``None`` (the default) keeps
        the uniform draw — and the exact RNG call sequence — of every
        pre-skew workload.  Exponent ``0.0`` is uniform-by-weights but
        still a distinct RNG sequence; use ``None`` for byte-identical
        baselines.
    hot_set_rotate_every:
        With a Zipf draw, rotate which open values hold the hottest
        ranks every this-many emitted tuples per stream (key churn).
        ``None`` pins rank 0 to the oldest open value for its lifetime.
    """

    n_tuples_per_stream: int = 10_000
    tuple_interarrival_ms: float = 2.0
    punct_spacing_a: Optional[float] = 40.0
    punct_spacing_b: Optional[float] = 40.0
    active_values: int = 10
    aligned_punctuations: bool = False
    seed: int = 42
    zipf_exponent: Optional[float] = None
    hot_set_rotate_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_tuples_per_stream < 1:
            raise WorkloadError(
                f"n_tuples_per_stream must be >= 1, got {self.n_tuples_per_stream}"
            )
        if self.tuple_interarrival_ms <= 0:
            raise WorkloadError(
                "tuple_interarrival_ms must be positive, "
                f"got {self.tuple_interarrival_ms}"
            )
        for label, spacing in (
            ("punct_spacing_a", self.punct_spacing_a),
            ("punct_spacing_b", self.punct_spacing_b),
        ):
            if spacing is not None and spacing < 1:
                raise WorkloadError(f"{label} must be >= 1 or None, got {spacing}")
        if self.active_values < 1:
            raise WorkloadError(
                f"active_values must be >= 1, got {self.active_values}"
            )
        if self.zipf_exponent is not None and self.zipf_exponent < 0:
            raise WorkloadError(
                f"zipf_exponent must be >= 0 or None, got {self.zipf_exponent}"
            )
        if self.hot_set_rotate_every is not None:
            if self.zipf_exponent is None:
                raise WorkloadError(
                    "hot_set_rotate_every requires zipf_exponent "
                    "(rotation permutes Zipf ranks)"
                )
            if self.hot_set_rotate_every < 1:
                raise WorkloadError(
                    "hot_set_rotate_every must be >= 1 or None, "
                    f"got {self.hot_set_rotate_every}"
                )

    @property
    def punct_spacings(self) -> PyTuple[Optional[float], Optional[float]]:
        return (self.punct_spacing_a, self.punct_spacing_b)

    def with_overrides(self, **overrides) -> "WorkloadSpec":
        """Return a copy with selected parameters replaced."""
        return replace(self, **overrides)
