"""Fault injection for punctuated streams.

Punctuation-exploiting operators are only as sound as the promises they
are fed: a source that emits a tuple *after* punctuating its value has
broken the contract, and a join that silently trusted it would produce
an incorrect (silently shrunken or unsound) answer.  PJoin therefore
validates arrivals (``validate_inputs`` in
:class:`~repro.core.config.PJoinConfig`); this module produces the
broken streams that tests use to prove the validation works.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

Schedule = List[PyTuple[float, Any]]


def inject_punctuation_violation(
    schedule: Schedule,
    schema: Schema,
    field_name: str = "key",
    seed: int = 0,
) -> PyTuple[Schedule, Any]:
    """Insert one tuple that violates an earlier constant punctuation.

    Picks a random constant punctuation of the stream and appends,
    shortly after it, a tuple carrying the punctuated value.  Returns
    ``(corrupted_schedule, violating_value)``.

    Raises :class:`WorkloadError` when the schedule has no constant
    punctuation to violate.
    """
    rng = random.Random(seed)
    field_index = schema.index_of(field_name)
    candidates = []
    for position, (ts, item) in enumerate(schedule):
        if isinstance(item, Punctuation):
            pattern = item.patterns[field_index]
            value = getattr(pattern, "value", None)
            if value is not None:
                candidates.append((position, ts, value))
    if not candidates:
        raise WorkloadError("schedule has no constant punctuation to violate")
    position, ts, value = candidates[rng.randrange(len(candidates))]
    values: List[Any] = []
    for i, field in enumerate(schema.fields):
        if i == field_index:
            values.append(value)
        elif field.dtype is float:
            values.append(0.0)
        elif field.dtype is str:
            values.append("violation")
        else:
            values.append(0)
    bad_ts = ts + 1e-6
    bad_tuple = Tuple(schema, tuple(values), ts=bad_ts, validate=False)
    corrupted = list(schedule)
    corrupted.insert(position + 1, (bad_ts, bad_tuple))
    return corrupted, value


def drop_random_punctuations(
    schedule: Schedule, fraction: float, seed: int = 0
) -> Schedule:
    """Remove a random fraction of the punctuations (late/lossy source).

    Dropping punctuations is always *safe* (promises merely go missing,
    so the join purges less) — useful for robustness tests asserting
    results stay exact while state grows.
    """
    if not 0 <= fraction <= 1:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    kept: Schedule = []
    for ts, item in schedule:
        if isinstance(item, Punctuation) and rng.random() < fraction:
            continue
        kept.append((ts, item))
    return kept


def delay_punctuations(
    schedule: Schedule, delay_ms: float, seed: Optional[int] = None
) -> Schedule:
    """Shift every punctuation *delay_ms* later (a laggy punctuator).

    Tuples keep their times; each punctuation moves to ``ts + delay_ms``
    and is re-sorted into place.  Validity is preserved — delaying a
    promise can never create a violation.
    """
    if delay_ms < 0:
        raise WorkloadError(f"delay_ms must be non-negative, got {delay_ms}")
    del seed  # deterministic; kept for signature symmetry
    moved: Schedule = []
    for ts, item in schedule:
        if isinstance(item, Punctuation):
            moved.append((ts + delay_ms, item.with_ts(ts + delay_ms)))
        else:
            moved.append((ts, item))
    moved.sort(key=lambda pair: pair[0])
    return moved
