"""Fault injection for punctuated streams.

Punctuation-exploiting operators are only as sound as the promises they
are fed: a source that emits a tuple *after* punctuating its value has
broken the contract, and a join that silently trusted it would produce
an incorrect (silently shrunken or unsound) answer.  Every join
therefore applies a fault policy to arrivals (``fault_policy`` in
:class:`~repro.core.config.PJoinConfig` and the
:class:`~repro.resilience.validator.ContractValidator`); this module
produces the broken streams that tests and chaos scenarios use to
prove the policies work: contract violations, disorder, duplicates
and source stalls.
"""

from __future__ import annotations

import random
from typing import Any, List, NamedTuple, Optional, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

Schedule = List[PyTuple[float, Any]]


class InjectedViolation(NamedTuple):
    """The result of :func:`inject_punctuation_violation`.

    ``position`` is the index of the violating tuple in the returned
    schedule — tests and chaos manifests use it to report exactly where
    the contract was broken.
    """

    schedule: Schedule
    value: Any
    position: int


def inject_punctuation_violation(
    schedule: Schedule,
    schema: Schema,
    field_name: str = "key",
    seed: int = 0,
) -> "InjectedViolation":
    """Insert one tuple that violates an earlier constant punctuation.

    Picks a random constant punctuation of the stream and appends,
    shortly after it, a tuple carrying the punctuated value.  Returns
    an :class:`InjectedViolation` naming the corrupted schedule, the
    violating join value and the position of the violating tuple in the
    corrupted schedule.

    Raises :class:`WorkloadError` when the schedule has no constant
    punctuation to violate.
    """
    rng = random.Random(seed)
    field_index = schema.index_of(field_name)
    candidates = []
    for position, (ts, item) in enumerate(schedule):
        if isinstance(item, Punctuation):
            pattern = item.patterns[field_index]
            value = getattr(pattern, "value", None)
            if value is not None:
                candidates.append((position, ts, value))
    if not candidates:
        raise WorkloadError("schedule has no constant punctuation to violate")
    position, ts, value = candidates[rng.randrange(len(candidates))]
    values: List[Any] = []
    for i, field in enumerate(schema.fields):
        if i == field_index:
            values.append(value)
        elif field.dtype is float:
            values.append(0.0)
        elif field.dtype is str:
            values.append("violation")
        else:
            values.append(0)
    bad_ts = ts + 1e-6
    bad_tuple = Tuple(schema, tuple(values), ts=bad_ts, validate=False)
    corrupted = list(schedule)
    corrupted.insert(position + 1, (bad_ts, bad_tuple))
    return InjectedViolation(corrupted, value, position + 1)


def drop_random_punctuations(
    schedule: Schedule, fraction: float, seed: int = 0
) -> Schedule:
    """Remove a random fraction of the punctuations (late/lossy source).

    Dropping punctuations is always *safe* (promises merely go missing,
    so the join purges less) — useful for robustness tests asserting
    results stay exact while state grows.
    """
    if not 0 <= fraction <= 1:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    kept: Schedule = []
    for ts, item in schedule:
        if isinstance(item, Punctuation) and rng.random() < fraction:
            continue
        kept.append((ts, item))
    return kept


def delay_punctuations(
    schedule: Schedule, delay_ms: float, seed: Optional[int] = None
) -> Schedule:
    """Shift every punctuation *delay_ms* later (a laggy punctuator).

    Tuples keep their times; each punctuation moves to ``ts + delay_ms``
    and is re-sorted into place.  Validity is preserved — delaying a
    promise can never create a violation.
    """
    if delay_ms < 0:
        raise WorkloadError(f"delay_ms must be non-negative, got {delay_ms}")
    del seed  # deterministic; kept for signature symmetry
    moved: Schedule = []
    for ts, item in schedule:
        if isinstance(item, Punctuation):
            moved.append((ts + delay_ms, item.with_ts(ts + delay_ms)))
        else:
            moved.append((ts, item))
    moved.sort(key=lambda pair: pair[0])
    return moved


def inject_out_of_order(
    schedule: Schedule,
    displacement_ms: float,
    fraction: float = 0.1,
    seed: int = 0,
) -> Schedule:
    """Delay a random fraction of the *tuples* (a disordered channel).

    Each chosen tuple's **arrival** time moves up to *displacement_ms*
    later while the tuple's own timestamp stays put — the classic
    network-reordering model.  The schedule is re-sorted by arrival
    time (a stable sort, so undisturbed items keep their relative
    order).  Punctuations are never displaced: moving a promise earlier
    than a tuple it covers would *create* a contract violation, and
    this injector models disorder, not corruption.  Pair it with a
    source ``disorder_slack_ms`` of at least *displacement_ms* to see
    the disorder buffer absorb the damage.
    """
    if displacement_ms < 0:
        raise WorkloadError(
            f"displacement_ms must be non-negative, got {displacement_ms}"
        )
    if not 0 <= fraction <= 1:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    moved: Schedule = []
    for ts, item in schedule:
        if not isinstance(item, Punctuation) and rng.random() < fraction:
            moved.append((ts + rng.uniform(0.0, displacement_ms), item))
        else:
            moved.append((ts, item))
    moved.sort(key=lambda pair: pair[0])
    return moved


def inject_duplicates(
    schedule: Schedule, fraction: float = 0.05, seed: int = 0
) -> Schedule:
    """Re-deliver a random fraction of the tuples (at-least-once source).

    Each chosen tuple appears a second time immediately after its
    original — same tuple object, same timestamp — modelling a source
    that retries sends without deduplication.  Punctuations are never
    duplicated (a repeated promise is merely redundant, and the joins
    already tally duplicate punctuations separately).
    """
    if not 0 <= fraction <= 1:
        raise WorkloadError(f"fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    doubled: Schedule = []
    for ts, item in schedule:
        doubled.append((ts, item))
        if not isinstance(item, Punctuation) and rng.random() < fraction:
            doubled.append((ts, item))
    return doubled


def inject_stall(
    schedule: Schedule, at_fraction: float = 0.5, gap_ms: float = 1000.0
) -> Schedule:
    """Freeze the source mid-stream: one long gap, then normal delivery.

    Every arrival from position ``len(schedule) * at_fraction`` onwards
    is shifted *gap_ms* later, leaving a silence a
    :class:`~repro.resilience.watchdog.StallWatchdog` can detect.  Item
    timestamps move with the arrivals, keeping the schedule valid.
    """
    if not 0 < at_fraction < 1:
        raise WorkloadError(
            f"at_fraction must be in (0, 1), got {at_fraction}"
        )
    if gap_ms <= 0:
        raise WorkloadError(f"gap_ms must be positive, got {gap_ms}")
    pivot = int(len(schedule) * at_fraction)
    stalled: Schedule = list(schedule[:pivot])
    for ts, item in schedule[pivot:]:
        if hasattr(item, "with_ts"):
            item = item.with_ts(item.ts + gap_ms)
        stalled.append((ts + gap_ms, item))
    return stalled
