"""Oracle join results computed directly from schedules.

Used by tests (every join variant must produce exactly this multiset of
result values, regardless of purging, spilling, dropping or disk-join
scheduling) and by examples that want ground truth to compare against.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Counter as CounterType, Iterable, List, Tuple as PyTuple

from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


def _tuples_of(schedule: Iterable[PyTuple[float, Any]]) -> List[Tuple]:
    return [item for _t, item in schedule if isinstance(item, Tuple)]


def reference_join_multiset(
    schedule_a: Iterable[PyTuple[float, Any]],
    schedule_b: Iterable[PyTuple[float, Any]],
    schema_a: Schema,
    schema_b: Schema,
    field_a: str = "key",
    field_b: str = "key",
) -> CounterType:
    """The full equi-join's result multiset, keyed by value tuples.

    Returns ``Counter({left_values + right_values: count})`` — the exact
    multiset every correct stream join must emit over the whole run.
    """
    index_a = schema_a.index_of(field_a)
    index_b = schema_b.index_of(field_b)
    by_key: dict = {}
    for tup in _tuples_of(schedule_b):
        by_key.setdefault(tup.values[index_b], []).append(tup)
    result: CounterType = Counter()
    for tup_a in _tuples_of(schedule_a):
        for tup_b in by_key.get(tup_a.values[index_a], []):
            result[tup_a.values + tup_b.values] += 1
    return result


def reference_window_join_multiset(
    schedule_a: Iterable[PyTuple[float, Any]],
    schedule_b: Iterable[PyTuple[float, Any]],
    schema_a: Schema,
    schema_b: Schema,
    window_ms: float,
    field_a: str = "key",
    field_b: str = "key",
) -> CounterType:
    """The sliding-window equi-join's result multiset.

    A pair qualifies when the two arrival timestamps differ by at most
    *window_ms* (the later tuple still sees the earlier one in state).
    """
    index_a = schema_a.index_of(field_a)
    index_b = schema_b.index_of(field_b)
    by_key: dict = {}
    for tup in _tuples_of(schedule_b):
        by_key.setdefault(tup.values[index_b], []).append(tup)
    result: CounterType = Counter()
    for tup_a in _tuples_of(schedule_a):
        for tup_b in by_key.get(tup_a.values[index_a], []):
            if abs(tup_a.ts - tup_b.ts) <= window_ms:
                result[tup_a.values + tup_b.values] += 1
    return result
