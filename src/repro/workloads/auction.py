"""The online-auction workload — the paper's running example (§1.1, §2.1).

Two streams:

* ``Open`` — one tuple per item put up for sale.  Because ``item_id``
  is unique in this stream, the query system can *derive* a punctuation
  right after each Open tuple ("no more tuples with this item_id"),
  exactly as Section 1.1 describes.
* ``Bid`` — the bids.  When an item's auction period expires, the
  auction system embeds a punctuation for that ``item_id`` into the Bid
  stream ("the bids for this item are over").

The motivating query joins Open with Bid on ``item_id`` and then groups
by ``item_id``, summing ``bid_increase`` — see
``examples/auction_monitoring.py`` for the full plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, List, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple

OPEN_SCHEMA = Schema(
    [Field("item_id", int), Field("seller", str), Field("open_price", float)],
    name="Open",
)
BID_SCHEMA = Schema(
    [Field("item_id", int), Field("bidder", str), Field("bid_increase", float)],
    name="Bid",
)

Schedule = List[PyTuple[float, Any]]


@dataclass(frozen=True)
class AuctionSpec:
    """Parameters of the auction workload.

    Parameters
    ----------
    n_items:
        Number of items put up for sale.
    mean_open_interval_ms:
        Mean gap between consecutive Open tuples.
    auction_duration_ms:
        How long each item accepts bids after opening.
    mean_bid_interval_ms:
        Mean gap between consecutive bids (across all live items).
    derive_open_punctuations:
        Emit the key-derived punctuation after each Open tuple.
    seed:
        RNG seed.
    """

    n_items: int = 200
    mean_open_interval_ms: float = 10.0
    auction_duration_ms: float = 120.0
    mean_bid_interval_ms: float = 2.0
    derive_open_punctuations: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise WorkloadError(f"n_items must be >= 1, got {self.n_items}")
        for label, value in (
            ("mean_open_interval_ms", self.mean_open_interval_ms),
            ("auction_duration_ms", self.auction_duration_ms),
            ("mean_bid_interval_ms", self.mean_bid_interval_ms),
        ):
            if value <= 0:
                raise WorkloadError(f"{label} must be positive, got {value}")


class AuctionWorkloadGenerator:
    """Generates the Open and Bid schedules of an auction run."""

    def __init__(self, spec: AuctionSpec) -> None:
        self.spec = spec

    def generate(self) -> PyTuple[Schedule, Schedule]:
        """Return ``(open_schedule, bid_schedule)``, each time-ordered."""
        spec = self.spec
        rng = random.Random(spec.seed)
        open_schedule: Schedule = []
        bid_schedule: Schedule = []
        # Open tuples (plus derived punctuations) in item order.
        open_times: List[PyTuple[float, int]] = []
        now = 0.0
        for item_id in range(spec.n_items):
            now += rng.expovariate(1.0 / spec.mean_open_interval_ms)
            seller = f"seller-{rng.randrange(50)}"
            price = round(10.0 + rng.random() * 90.0, 2)
            open_schedule.append(
                (now, Tuple(OPEN_SCHEMA, (item_id, seller, price), ts=now))
            )
            if spec.derive_open_punctuations:
                open_schedule.append(
                    (now, Punctuation.on_field(OPEN_SCHEMA, "item_id", item_id, ts=now))
                )
            open_times.append((now, item_id))
        # Bids: while an item is live, it may receive bids; close events
        # inject Bid-stream punctuations at expiry, in time order.
        close_heap: List[PyTuple[float, int]] = []
        for opened_at, item_id in open_times:
            heappush(close_heap, (opened_at + spec.auction_duration_ms, item_id))
        live: List[int] = []
        open_iter = iter(open_times)
        next_open = next(open_iter, None)
        bid_time = 0.0
        while close_heap or next_open is not None:
            bid_time += rng.expovariate(1.0 / spec.mean_bid_interval_ms)
            # Activate items opened by now.
            while next_open is not None and next_open[0] <= bid_time:
                live.append(next_open[1])
                next_open = next(open_iter, None)
            # Close expired items (punctuating their bids).
            while close_heap and close_heap[0][0] <= bid_time:
                closed_at, item_id = heappop(close_heap)
                bid_schedule.append(
                    (
                        closed_at,
                        Punctuation.on_field(
                            BID_SCHEMA, "item_id", item_id, ts=closed_at
                        ),
                    )
                )
                live.remove(item_id)
            if next_open is None and not close_heap and not live:
                break
            if not live:
                continue
            item_id = live[rng.randrange(len(live))]
            bidder = f"bidder-{rng.randrange(200)}"
            increase = round(0.5 + rng.random() * 9.5, 2)
            bid_schedule.append(
                (
                    bid_time,
                    Tuple(BID_SCHEMA, (item_id, bidder, increase), ts=bid_time),
                )
            )
        return open_schedule, bid_schedule
