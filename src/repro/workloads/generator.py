"""The generic punctuated-stream generator.

Produces two time-ordered schedules of tuples and punctuations from a
:class:`~repro.workloads.spec.WorkloadSpec`.  The two streams are
co-generated in virtual-time order because they share the global
join-value lifecycle:

* a global counter introduces join values ``0, 1, 2, …``;
* each stream keeps a pointer ``lo`` to its oldest still-open value and
  draws every tuple's key uniformly from its open values ``[lo, hi)``;
  the most recent ``active_values`` values are open on both streams, so
  the streams always overlap on current keys (many-to-many matching) no
  matter how asymmetric their punctuation rates are;
* after (on average) ``punct_spacing`` tuples, a stream emits a
  constant-pattern punctuation for its oldest open value and advances
  its ``lo``; a fresh value is introduced whenever the faster stream's
  open window would shrink below ``active_values``.

By construction the streams are *valid*: once a stream punctuates a
value it never draws it again.  Asymmetric spacings reproduce the §4.3
regime — the slow-punctuating stream's promises lag, so the opposite
state accretes exactly as the paper describes.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.punctuations.punctuation import Punctuation
from repro.sim.arrivals import poisson_tuple_spacing
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple
from repro.workloads.spec import WorkloadSpec

Schedule = List[PyTuple[float, Any]]

STREAM_A_SCHEMA = Schema(
    [Field("key", int), Field("seq", int), Field("payload", float)], name="A"
)
STREAM_B_SCHEMA = Schema(
    [Field("key", int), Field("seq", int), Field("payload", float)], name="B"
)


class GeneratedWorkload:
    """The output of one generator run: two schedules plus metadata."""

    def __init__(
        self,
        spec: WorkloadSpec,
        schedule_a: Schedule,
        schedule_b: Schedule,
    ) -> None:
        self.spec = spec
        self.schedules = (schedule_a, schedule_b)
        self.schemas = (STREAM_A_SCHEMA, STREAM_B_SCHEMA)
        self.join_fields = ("key", "key")

    @property
    def stream_names(self) -> PyTuple[str, str]:
        """Source names for the harness (kept at the paper's "A"/"B")."""
        return ("A", "B")

    @property
    def schedule_a(self) -> Schedule:
        return self.schedules[0]

    @property
    def schedule_b(self) -> Schedule:
        return self.schedules[1]

    def tuples(self, side: int) -> List[Tuple]:
        """All data tuples of one stream, in order."""
        return [item for _t, item in self.schedules[side] if isinstance(item, Tuple)]

    def punctuations(self, side: int) -> List[Punctuation]:
        """All punctuations of one stream, in order."""
        return [
            item
            for _t, item in self.schedules[side]
            if isinstance(item, Punctuation)
        ]

    @property
    def end_time(self) -> float:
        """Virtual time of the last scheduled item over both streams."""
        last = 0.0
        for schedule in self.schedules:
            if schedule:
                last = max(last, schedule[-1][0])
        return last

    def __repr__(self) -> str:
        return (
            f"GeneratedWorkload(tuples={self.spec.n_tuples_per_stream}/stream, "
            f"punct_spacing={self.spec.punct_spacings}, seed={self.spec.seed})"
        )


class _StreamState:
    """Per-stream generation state."""

    __slots__ = ("rng", "spacing", "countdown", "lo", "seq", "next_time", "emitted")

    def __init__(self, rng: random.Random, spacing: Optional[float]) -> None:
        self.rng = rng
        self.spacing = spacing
        self.countdown = 0
        self.lo = 0  # oldest join value not yet punctuated by this stream
        self.seq = 0
        self.next_time = 0.0
        self.emitted = 0


class PunctuatedStreamGenerator:
    """Co-generates the two streams of a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        # Cumulative Zipf weights, cached per open-window size: the
        # window only resizes when a fresh value is introduced, so the
        # cache stays tiny (a handful of sizes per run).
        self._zipf_cum: Dict[int, List[float]] = {}

    def generate(self) -> GeneratedWorkload:
        spec = self.spec
        schemas = (STREAM_A_SCHEMA, STREAM_B_SCHEMA)
        streams = [
            _StreamState(random.Random(spec.seed * 1_000_003 + side), spacing)
            for side, spacing in enumerate(spec.punct_spacings)
        ]
        schedules: List[Schedule] = [[], []]
        hi = spec.active_values  # values [0, hi) have been introduced
        for side, stream in enumerate(streams):
            stream.next_time = self._gap(stream)
            stream.countdown = self._spacing(stream)
        while any(s.emitted < spec.n_tuples_per_stream for s in streams):
            side = self._next_side(streams, spec.n_tuples_per_stream)
            stream = streams[side]
            now = stream.next_time
            # Draw the key from this stream's open values (uniformly by
            # default, Zipf-weighted under a skew spec).  A stream that
            # punctuates slowly keeps a long tail of old values open;
            # its tuples on values the *other* stream has already
            # punctuated are exactly the ones PJoin drops on the fly
            # (Section 4.3).
            key = self._draw_key(stream, hi)
            tup = Tuple(
                schemas[side],
                (key, stream.seq, round(stream.rng.random(), 6)),
                ts=now,
                validate=False,
            )
            schedules[side].append((now, tup))
            stream.seq += 1
            stream.emitted += 1
            stream.countdown -= 1
            # Punctuate the oldest open value when the spacing is due.
            if stream.spacing is not None and stream.countdown <= 0:
                if stream.lo < hi:
                    punct = Punctuation.on_field(
                        schemas[side], "key", stream.lo, ts=now
                    )
                    schedules[side].append((now, punct))
                    stream.lo += 1
                    if hi - stream.lo < spec.active_values:
                        hi += 1
                stream.countdown = self._spacing(stream)
            stream.next_time = now + self._gap(stream)
        return GeneratedWorkload(spec, schedules[0], schedules[1])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _draw_key(self, stream: _StreamState, hi: int) -> int:
        spec = self.spec
        if spec.zipf_exponent is None:
            # The pre-skew draw, RNG call sequence untouched: seeded
            # uniform workloads stay byte-identical to older versions.
            return stream.rng.randrange(stream.lo, hi)
        window = hi - stream.lo
        if window == 1:
            return stream.lo
        cum = self._zipf_cum.get(window)
        if cum is None:
            total = 0.0
            cum = []
            for rank in range(window):
                total += 1.0 / float(rank + 1) ** spec.zipf_exponent
                cum.append(total)
            self._zipf_cum[window] = cum
        rank = bisect_right(cum, stream.rng.random() * cum[-1])
        if rank >= window:  # guard against float round-up at the edge
            rank = window - 1
        if spec.hot_set_rotate_every is not None:
            # Key churn: shift which open values carry the hot ranks as
            # the stream progresses, so a static split layout goes stale.
            rank = (rank + stream.emitted // spec.hot_set_rotate_every) % window
        return stream.lo + rank

    def _gap(self, stream: _StreamState) -> float:
        return stream.rng.expovariate(1.0 / self.spec.tuple_interarrival_ms)

    def _spacing(self, stream: _StreamState) -> int:
        if stream.spacing is None:
            return 1 << 62  # effectively never
        if self.spec.aligned_punctuations:
            return max(1, round(stream.spacing))
        return poisson_tuple_spacing(stream.spacing, stream.rng)

    @staticmethod
    def _next_side(streams: List[_StreamState], limit: int) -> int:
        """The stream whose next arrival is earliest (and not finished)."""
        best = -1
        best_time = float("inf")
        for side, stream in enumerate(streams):
            if stream.emitted >= limit:
                continue
            if stream.next_time < best_time:
                best = side
                best_time = stream.next_time
        return best


def generate_workload(spec: Optional[WorkloadSpec] = None, **overrides) -> GeneratedWorkload:
    """Convenience wrapper: build a spec (or override one) and generate."""
    if spec is None:
        spec = WorkloadSpec(**overrides)
    elif overrides:
        spec = spec.with_overrides(**overrides)
    return PunctuatedStreamGenerator(spec).generate()
