"""A sensor-network workload for the examples (paper §1: "sensor
network monitoring" is a motivating application class).

Two streams keyed by an epoch number:

* ``Readings`` — ``(epoch, sensor_id, value)`` measurements; every
  sensor reports once per epoch.  When an epoch's collection round
  finishes, the base station punctuates it: no more readings for that
  epoch will arrive.
* ``Queries`` — ``(epoch, region)`` monitoring requests asking for the
  readings of an epoch; punctuated per epoch as well.

Joining them on ``epoch`` matches every request with that epoch's
readings; punctuations let the join retire an epoch's readings the
moment the round closes instead of holding them forever.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Tuple as PyTuple

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple

READINGS_SCHEMA = Schema(
    [Field("epoch", int), Field("sensor_id", int), Field("value", float)],
    name="Readings",
)
QUERIES_SCHEMA = Schema(
    [Field("epoch", int), Field("region", str)], name="Queries"
)

Schedule = List[PyTuple[float, Any]]


@dataclass(frozen=True)
class SensorSpec:
    """Parameters of the sensor workload."""

    n_epochs: int = 100
    n_sensors: int = 20
    epoch_length_ms: float = 50.0
    queries_per_epoch: int = 3
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_epochs < 1 or self.n_sensors < 1 or self.queries_per_epoch < 0:
            raise WorkloadError("sensor spec counts must be positive")
        if self.epoch_length_ms <= 0:
            raise WorkloadError("epoch_length_ms must be positive")


class SensorWorkloadGenerator:
    """Generates the Readings and Queries schedules."""

    def __init__(self, spec: SensorSpec) -> None:
        self.spec = spec

    def generate(self) -> PyTuple[Schedule, Schedule]:
        spec = self.spec
        rng = random.Random(spec.seed)
        readings: Schedule = []
        queries: Schedule = []
        regions = ["north", "south", "east", "west"]
        for epoch in range(spec.n_epochs):
            start = epoch * spec.epoch_length_ms
            end = start + spec.epoch_length_ms
            report_times = sorted(
                start + rng.random() * spec.epoch_length_ms * 0.9
                for _ in range(spec.n_sensors)
            )
            for sensor_id, when in enumerate(report_times):
                value = round(20.0 + rng.gauss(0.0, 3.0), 3)
                readings.append(
                    (
                        when,
                        Tuple(READINGS_SCHEMA, (epoch, sensor_id, value), ts=when),
                    )
                )
            readings.append(
                (end, Punctuation.on_field(READINGS_SCHEMA, "epoch", epoch, ts=end))
            )
            query_times = sorted(
                start + rng.random() * spec.epoch_length_ms
                for _ in range(spec.queries_per_epoch)
            )
            for when in query_times:
                region = regions[rng.randrange(len(regions))]
                queries.append(
                    (when, Tuple(QUERIES_SCHEMA, (epoch, region), ts=when))
                )
            queries.append(
                (end, Punctuation.on_field(QUERIES_SCHEMA, "epoch", epoch, ts=end))
            )
        return readings, queries
