"""The per-operator dead-letter store.

Under the ``quarantine`` fault policy, contract-violating tuples are not
silently dropped: they land here, stamped with the virtual time, input
side and reason, so every degradation is auditable after the run.  The
store keeps a bounded sample of the offending tuples (enough to debug a
broken source) and exact counters (enough for manifests and the
``repro metrics`` / ``repro chaos`` reports to show precisely how much
was quarantined, and why).
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

REASON_CONTRACT_VIOLATION = "contract_violation"
REASON_DUPLICATE = "duplicate"

# How many offending tuples to retain verbatim; counters stay exact
# beyond this, only the samples stop growing.
DEFAULT_SAMPLE_CAPACITY = 64


class DeadLetter(NamedTuple):
    """One quarantined item with its full audit context."""

    item: Any
    side: int
    reason: str
    join_value: Any
    quarantined_at: float


class DeadLetterStore:
    """Quarantined tuples of one operator, counted by reason and side.

    Parameters
    ----------
    name:
        Label used in traces and reports (usually ``<operator>.dlq``).
    sample_capacity:
        Maximum number of :class:`DeadLetter` records retained verbatim;
        ``None`` keeps every one (tests), ``0`` keeps none.
    """

    def __init__(
        self,
        name: str = "dead_letter",
        sample_capacity: Optional[int] = DEFAULT_SAMPLE_CAPACITY,
    ) -> None:
        self.name = name
        self.sample_capacity = sample_capacity
        self.entries: List[DeadLetter] = []
        self.total = 0
        self.by_reason: Dict[str, int] = {}
        self.by_side: Dict[int, int] = {}

    def add(
        self,
        item: Any,
        side: int,
        reason: str,
        join_value: Any,
        now: float,
    ) -> DeadLetter:
        """Quarantine one item; returns the stored record."""
        letter = DeadLetter(item, side, reason, join_value, now)
        if self.sample_capacity is None or len(self.entries) < self.sample_capacity:
            self.entries.append(letter)
        self.total += 1
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1
        self.by_side[side] = self.by_side.get(side, 0) + 1
        return letter

    def quarantined_values(self) -> List[Any]:
        """Join values of the sampled dead letters, in quarantine order."""
        return [letter.join_value for letter in self.entries]

    def counters(self) -> Dict[str, int]:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        out: Dict[str, int] = {"quarantined": self.total}
        for reason, count in sorted(self.by_reason.items()):
            out[f"reason.{reason}"] = count
        for side, count in sorted(self.by_side.items()):
            out[f"side{side}"] = count
        return out

    def __len__(self) -> int:
        return self.total

    def __repr__(self) -> str:
        return f"DeadLetterStore({self.name!r}, quarantined={self.total})"
