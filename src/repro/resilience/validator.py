"""The shared punctuation-contract validator.

Before the resilience layer, PJoin was the only operator that checked
the punctuation contract, with its own inline copy of the logic; XJoin
and the symmetric hash join trusted their sources blindly, and the
n-ary join carried a second copy.  This module is the single shared
implementation: every join owns one :class:`ContractValidator`, hands
it each arriving tuple's join value, and gets back the fault-policy
decision — admit, quarantine (dead-letter), or repair (retract the
broken promise).

The validator checks the contract against per-side *contract views*:

* :class:`StateSideContract` wraps a PJoin
  :class:`~repro.core.state.JoinStateSide` — the punctuation set the
  join already maintains is the authority, and ``repair`` retraction
  heals the punctuation index too;
* :class:`TrackedSideContract` owns a private
  :class:`~repro.punctuations.store.PunctuationStore` for operators
  that do not otherwise keep punctuations (XJoin, SHJ) — the validator
  must be shown every arriving punctuation via
  :meth:`ContractValidator.observe_punctuation`;
* :class:`InertSideContract` never covers anything — used for the
  ``trust`` policy so the hot path stays exactly as cheap as before.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ContractViolationError
from repro.obs.trace import get_tracer
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore, is_join_exploitable
from repro.resilience.deadletter import (
    REASON_CONTRACT_VIOLATION,
    DeadLetterStore,
)
from repro.resilience.policy import QUARANTINE, REPAIR, STRICT, TRUST, normalize_policy
from repro.tuples.schema import Schema


class InertSideContract:
    """The no-op contract view: nothing is ever covered."""

    __slots__ = ()

    def covers(self, join_value: Any) -> bool:
        return False

    def retract(self, join_value: Any) -> int:
        return 0

    def observe(self, punct: Punctuation) -> None:
        pass


class StateSideContract:
    """Contract view over a PJoin side's own punctuation set.

    *side* is a :class:`repro.core.state.JoinStateSide` (duck-typed so
    the resilience layer stays importable below :mod:`repro.core`).
    """

    __slots__ = ("side",)

    def __init__(self, side: Any) -> None:
        self.side = side

    def covers(self, join_value: Any) -> bool:
        return self.side.covers(join_value)

    def retract(self, join_value: Any) -> int:
        return self.side.retract_covering(join_value)

    def observe(self, punct: Punctuation) -> None:
        # The join adds punctuations to its own store; nothing to track.
        pass


class TrackedSideContract:
    """Contract view with a private punctuation set (XJoin, SHJ).

    Only join-exploitable punctuations are tracked — a punctuation
    constraining non-join attributes makes no promise about join values,
    so it can neither be violated by join value nor retracted.
    """

    __slots__ = ("store",)

    def __init__(self, schema: Schema, join_field: str) -> None:
        self.store = PunctuationStore(schema, join_field)

    def covers(self, join_value: Any) -> bool:
        return self.store.covers_value(join_value)

    def retract(self, join_value: Any) -> int:
        doomed = [
            pid
            for pid, punct in self.store.items()
            if punct.patterns[self.store.join_index].matches(join_value)
        ]
        for pid in doomed:
            self.store.remove(pid)
        return len(doomed)

    def observe(self, punct: Punctuation) -> None:
        if not is_join_exploitable(punct, self.store.join_field):
            return
        join_pattern = punct.patterns[self.store.join_index]
        if self.store.has_equal_join_pattern(join_pattern):
            return
        self.store.add(punct)


class ContractValidator:
    """Applies one fault policy to one operator's inputs.

    Parameters
    ----------
    engine:
        The simulation engine (for virtual time and the active tracer).
    operator_name:
        Label used in traces and error messages.
    policy:
        One of :data:`~repro.resilience.policy.FAULT_POLICIES` (legacy
        ``validate_inputs`` spellings are normalised).
    contracts:
        One contract view per input side.
    dead_letters:
        The operator's dead-letter store; created on demand when the
        policy is ``quarantine`` and none is supplied.
    """

    def __init__(
        self,
        engine: Any,
        operator_name: str,
        policy: str,
        contracts: Sequence[Any],
        dead_letters: Optional[DeadLetterStore] = None,
    ) -> None:
        self.engine = engine
        self.operator_name = operator_name
        self.policy = normalize_policy(policy)
        self.contracts = list(contracts)
        if dead_letters is None and self.policy == QUARANTINE:
            dead_letters = DeadLetterStore(name=f"{operator_name}.dlq")
        self.dead_letters = dead_letters
        self.violations = 0
        self.quarantined = 0
        self.punctuations_retracted = 0

    # -- factories -----------------------------------------------------

    @classmethod
    def for_sides(
        cls,
        engine: Any,
        operator_name: str,
        policy: str,
        sides: Sequence[Any],
        dead_letters: Optional[DeadLetterStore] = None,
    ) -> "ContractValidator":
        """A validator over a punctuation-keeping join's own sides."""
        policy = normalize_policy(policy)
        if policy == TRUST:
            contracts: List[Any] = [InertSideContract() for _ in sides]
        else:
            contracts = [StateSideContract(side) for side in sides]
        return cls(engine, operator_name, policy, contracts, dead_letters)

    @classmethod
    def tracking(
        cls,
        engine: Any,
        operator_name: str,
        policy: str,
        schemas: Sequence[Schema],
        join_fields: Sequence[str],
        dead_letters: Optional[DeadLetterStore] = None,
    ) -> "ContractValidator":
        """A validator that tracks punctuations itself (XJoin, SHJ)."""
        policy = normalize_policy(policy)
        if policy == TRUST:
            contracts: List[Any] = [InertSideContract() for _ in schemas]
        else:
            contracts = [
                TrackedSideContract(schema, field)
                for schema, field in zip(schemas, join_fields)
            ]
        return cls(engine, operator_name, policy, contracts, dead_letters)

    # -- the policy decision -------------------------------------------

    def observe_punctuation(self, punct: Punctuation, side: int) -> None:
        """Show the validator an arriving punctuation (tracked views)."""
        self.contracts[side].observe(punct)

    def admit(self, item: Any, join_value: Any, side: int) -> bool:
        """Decide one arriving tuple: ``True`` admits it into the join.

        ``False`` means the tuple was quarantined (already recorded in
        the dead-letter store) and must not probe or enter the state.
        Under ``strict`` a violation raises
        :class:`~repro.errors.ContractViolationError` instead.
        """
        if self.policy == TRUST:
            return True
        if not self.contracts[side].covers(join_value):
            return True
        self.violations += 1
        if self.policy == STRICT:
            raise ContractViolationError(
                f"{self.operator_name}: tuple {item!r} arrived after a "
                f"punctuation covering join value {join_value!r} on the "
                f"same stream (side {side})"
            )
        now = self.engine.now
        tracer = get_tracer(self.engine)
        if self.policy == QUARANTINE:
            assert self.dead_letters is not None
            self.dead_letters.add(
                item, side, REASON_CONTRACT_VIOLATION, join_value, now
            )
            self.quarantined += 1
            if tracer is not None:
                tracer.record(
                    now, self.operator_name, "quarantine",
                    side=side, join_value=join_value,
                    reason=REASON_CONTRACT_VIOLATION,
                )
            return False
        # REPAIR: withdraw the broken promise, admit the tuple.
        retracted = self.contracts[side].retract(join_value)
        self.punctuations_retracted += retracted
        if tracer is not None:
            tracer.record(
                now, self.operator_name, "retract",
                side=side, join_value=join_value, punctuations=retracted,
            )
        return True

    # -- introspection -------------------------------------------------

    @property
    def is_default_strict(self) -> bool:
        """Strict with zero violations: indistinguishable from legacy."""
        return self.policy == STRICT and self.violations == 0

    def counters(self) -> Dict[str, int]:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "violations": self.violations,
            "quarantined": self.quarantined,
            "punctuations_retracted": self.punctuations_retracted,
        }

    def __repr__(self) -> str:
        return (
            f"ContractValidator({self.operator_name!r}, policy={self.policy}, "
            f"violations={self.violations})"
        )
