"""The punctuation-aware disorder buffer.

A source whose delivery path reorders items (network retries, partition
rebalances) can turn a *valid* punctuated stream into a violating one:
a tuple displaced past its key's punctuation arrives "late" and trips
the contract check.  The disorder buffer absorbs bounded disorder
before the operator ever sees it: items are held for a configurable
virtual-time **slack** and released in item-timestamp order, so any
tuple displaced by less than the slack is re-sequenced back in front of
the punctuation that outran it.

The buffer is deliberately simple and deterministic — a heap keyed by
``(item.ts, arrival_seq)`` plus a watermark:

* when an item arrives at virtual time *t*, the watermark advances to
  ``t - slack`` and every held item with ``ts <= watermark`` is
  released, oldest first;
* at end-of-stream the buffer flushes in timestamp order;
* an item whose timestamp is already behind the released frontier
  cannot be re-sequenced (its slot has passed) — it is released
  immediately and counted in :attr:`late_releases`, leaving the
  downstream fault policy to deal with it.

Everything is charged to the virtual clock by the source that owns the
buffer; the buffer itself only re-orders.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple as PyTuple

from repro.errors import ResilienceError

_NEG_INF = float("-inf")


class DisorderBuffer:
    """Re-sequences a bounded-disorder stream by item timestamp.

    Parameters
    ----------
    slack_ms:
        How long (virtual time) an item may be held waiting for
        stragglers.  Larger slack repairs larger displacement but adds
        up to ``slack_ms`` latency to every item.
    """

    def __init__(self, slack_ms: float) -> None:
        if slack_ms < 0:
            raise ResilienceError(
                f"disorder slack must be non-negative, got {slack_ms}"
            )
        self.slack_ms = slack_ms
        self._heap: List[PyTuple[float, int, Any]] = []
        self._seq = 0
        self._max_item_ts = _NEG_INF
        self._released_frontier = _NEG_INF
        # -- counters ---------------------------------------------------
        self.items_buffered = 0
        self.reordered = 0
        self.late_releases = 0
        self.max_held = 0

    def push(self, item: Any, arrival_ts: float) -> List[Any]:
        """Accept one item; return every item now ready, in ts order."""
        item_ts = getattr(item, "ts", arrival_ts)
        if item_ts < self._max_item_ts:
            # The stream really was disordered here (an older item
            # arrived after a newer one); the heap will re-sequence it.
            self.reordered += 1
        self._max_item_ts = max(self._max_item_ts, item_ts)
        heapq.heappush(self._heap, (item_ts, self._seq, item))
        self._seq += 1
        self.items_buffered += 1
        self.max_held = max(self.max_held, len(self._heap))
        watermark = arrival_ts - self.slack_ms
        return self._release_until(watermark)

    def flush(self) -> List[Any]:
        """Release everything still held (end-of-stream), in ts order."""
        return self._release_until(float("inf"))

    def _release_until(self, watermark: float) -> List[Any]:
        ready: List[Any] = []
        while self._heap and self._heap[0][0] <= watermark:
            item_ts, _seq, item = heapq.heappop(self._heap)
            if item_ts < self._released_frontier:
                # Displaced beyond the slack: its in-order slot already
                # passed.  Deliver anyway; the fault policy downstream
                # decides what to do with the (possibly late) item.
                self.late_releases += 1
            else:
                self._released_frontier = item_ts
            ready.append(item)
        return ready

    @property
    def held(self) -> int:
        """Items currently waiting in the buffer."""
        return len(self._heap)

    def counters(self) -> Dict[str, float]:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "items_buffered": self.items_buffered,
            "reordered": self.reordered,
            "late_releases": self.late_releases,
            "max_held": self.max_held,
            "slack_ms": self.slack_ms,
        }

    def __repr__(self) -> str:
        return (
            f"DisorderBuffer(slack={self.slack_ms:g}ms, held={self.held}, "
            f"reordered={self.reordered})"
        )
