"""Source-stall detection and heartbeat synthesis.

A punctuation-exploiting join starves in a specific way when one source
stalls: the partner side's state can no longer be purged (no new
promises arrive) and pending punctuations can never propagate (their
index counts never reach zero).  The paper assumes sources never stall;
the watchdog removes that assumption.

The :class:`StallWatchdog` polls every watched source on the virtual
clock.  When a source has been silent — no tuple *and* no punctuation —
for longer than the timeout while the simulation advances (i.e. other
sources keep making progress), a stall episode is declared and handled
according to the configured mode:

``"heartbeat"``
    Synthesise an **all-wildcard punctuation** on the stalled input:
    the strongest promise a silent source can be presumed to make ("no
    more tuples at all").  The partner side's purge and propagation
    immediately unblock.  If the source later *resumes*, its tuples now
    violate the synthesised promise — which is exactly the contract
    -violation path, so the operator's fault policy (quarantine/repair)
    takes over.  Pair heartbeat mode with ``repair`` to get back to
    normal operation automatically after a resume, or with
    ``quarantine`` to audit every post-stall arrival.

``"flag"``
    Only mark the run degraded and count the episode — for deployments
    where synthesising promises is unacceptable.

``"raise"``
    Raise :class:`~repro.errors.SourceStallError` (strict deployments).

One heartbeat is emitted per stall episode: after firing, the watchdog
re-arms only once the source has emitted again.

Heartbeat synthesis is **idempotent and monotone**: before pushing, the
watchdog checks (defensively, via ``getattr``) whether the stalled
input's punctuation store already holds an equal all-wildcard promise —
the stream's watermark has already passed, so re-asserting it would
only double-count the promise — and whether the new heartbeat's
timestamp strictly exceeds the previous one synthesised for the same
watch.  Redundant heartbeats are suppressed and counted
(``heartbeats_suppressed``) instead of pushed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import ResilienceError, SourceStallError
from repro.obs.trace import get_tracer
from repro.punctuations.patterns import WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema

ON_STALL_HEARTBEAT = "heartbeat"
ON_STALL_FLAG = "flag"
ON_STALL_RAISE = "raise"

_ON_STALL_MODES = (ON_STALL_HEARTBEAT, ON_STALL_FLAG, ON_STALL_RAISE)


class _Watch:
    """One watched (source, operator input) binding."""

    __slots__ = (
        "source", "operator", "port", "schema", "handled_since",
        "last_heartbeat_ts",
    )

    def __init__(self, source: Any, operator: Any, port: int, schema: Schema) -> None:
        self.source = source
        self.operator = operator
        self.port = port
        self.schema = schema
        # Virtual time of the last source emission this watchdog already
        # reacted to; one reaction per stall episode.
        self.handled_since = float("-inf")
        # Timestamp of the last heartbeat synthesised on this watch;
        # later heartbeats must strictly advance it.
        self.last_heartbeat_ts = float("-inf")


class StallWatchdog:
    """Detects punctuation-silent sources and keeps the join fed.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    timeout_ms:
        Silence tolerance: a source that emitted nothing for this long
        (while the clock advances) is stalled.
    on_stall:
        ``"heartbeat"``, ``"flag"`` or ``"raise"`` — see module docs.
    check_interval_ms:
        Poll interval; defaults to half the timeout.
    """

    def __init__(
        self,
        engine: Any,
        timeout_ms: float,
        on_stall: str = ON_STALL_HEARTBEAT,
        check_interval_ms: Optional[float] = None,
    ) -> None:
        if timeout_ms <= 0:
            raise ResilienceError(
                f"stall timeout must be positive, got {timeout_ms}"
            )
        if on_stall not in _ON_STALL_MODES:
            raise ResilienceError(
                f"on_stall must be one of {_ON_STALL_MODES}, got {on_stall!r}"
            )
        if check_interval_ms is not None and check_interval_ms <= 0:
            raise ResilienceError(
                f"check interval must be positive, got {check_interval_ms}"
            )
        self.engine = engine
        self.timeout_ms = timeout_ms
        self.on_stall = on_stall
        self.check_interval_ms = (
            check_interval_ms if check_interval_ms is not None else timeout_ms / 2.0
        )
        self._watches: List[_Watch] = []
        self._started = False
        self._stopped = False
        # -- counters ---------------------------------------------------
        self.stalls_detected = 0
        self.heartbeats_emitted = 0
        self.heartbeats_suppressed = 0
        self.degraded = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def watch(self, source: Any, operator: Any, port: int, schema: Schema) -> None:
        """Monitor *source* feeding *operator*'s input *port*."""
        self._watches.append(_Watch(source, operator, port, schema))

    def watch_plan_sources(self, plan: Any, schemas: Any) -> None:
        """Convenience: watch every source of a query plan, in order."""
        for source, schema in zip(plan.sources, schemas):
            target = getattr(source, "_target", None)
            port = getattr(source, "_port", 0)
            if target is not None:
                self.watch(source, target, port, schema)

    def start(self) -> None:
        """Begin polling.  Call before (or right after) ``plan.run()``."""
        if self._started:
            raise ResilienceError("watchdog was already started")
        if not self._watches:
            raise ResilienceError("watchdog has nothing to watch")
        self._started = True
        self.engine.schedule(self.check_interval_ms, self._check)

    def stop(self) -> None:
        """Stop polling after the current interval."""
        self._stopped = True

    # ------------------------------------------------------------------
    # The poll
    # ------------------------------------------------------------------

    def _active_watches(self) -> List[_Watch]:
        return [
            watch
            for watch in self._watches
            if not getattr(watch.source, "exhausted", False)
            and not watch.operator.finished
        ]

    def _check(self) -> None:
        if self._stopped:
            return
        active = self._active_watches()
        if not active:
            return  # every source done: let the simulation drain
        now = self.engine.now
        for watch in active:
            last_emit = getattr(watch.source, "last_emit_time", 0.0)
            if now - last_emit < self.timeout_ms:
                continue
            if watch.handled_since >= last_emit:
                continue  # this stall episode was already handled
            watch.handled_since = last_emit
            self._on_stall(watch, now, last_emit)
        self.engine.schedule(self.check_interval_ms, self._check)

    def _on_stall(self, watch: _Watch, now: float, last_emit: float) -> None:
        self.stalls_detected += 1
        self.degraded = True
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.record(
                now, "watchdog", "stall_detected",
                source=getattr(watch.source, "name", "?"),
                silent_ms=now - last_emit,
            )
        if self.on_stall == ON_STALL_RAISE:
            raise SourceStallError(
                f"source {getattr(watch.source, 'name', '?')!r} silent for "
                f"{now - last_emit:g} ms (timeout {self.timeout_ms:g} ms)"
            )
        if self.on_stall != ON_STALL_HEARTBEAT:
            return
        if self._heartbeat_redundant(watch, now):
            self.heartbeats_suppressed += 1
            if tracer is not None:
                tracer.record(
                    now, "watchdog", "heartbeat_suppressed",
                    source=getattr(watch.source, "name", "?"), port=watch.port,
                )
            return
        heartbeat = Punctuation(
            watch.schema, [WILDCARD] * watch.schema.arity, ts=now
        )
        watch.operator.push(heartbeat, watch.port)
        self.heartbeats_emitted += 1
        watch.last_heartbeat_ts = now
        if tracer is not None:
            tracer.record(
                now, "watchdog", "heartbeat",
                source=getattr(watch.source, "name", "?"), port=watch.port,
            )

    def _heartbeat_redundant(self, watch: _Watch, now: float) -> bool:
        """True when synthesising another heartbeat would add nothing.

        Two monotonicity guards: the heartbeat timestamp must strictly
        advance past the last one synthesised for this watch, and the
        stalled input's punctuation store must not already hold an
        equal all-wildcard promise — a watermark that has already
        passed cannot be usefully re-asserted, and pushing it again
        would double-count the promise in the operator's store.  The
        store lookup is defensive (``getattr`` all the way down), so
        operators without per-port stores keep the old behaviour.
        """
        if now <= watch.last_heartbeat_ts:
            return True
        sides = getattr(watch.operator, "sides", None)
        if sides is None or not 0 <= watch.port < len(sides):
            return False
        store = getattr(sides[watch.port], "store", None)
        if store is None:
            return False
        try:
            return bool(store.has_equal_join_pattern(WILDCARD))
        except Exception:
            return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "stalls_detected": self.stalls_detected,
            "heartbeats_emitted": self.heartbeats_emitted,
            "heartbeats_suppressed": self.heartbeats_suppressed,
            "degraded": int(self.degraded),
        }

    def __repr__(self) -> str:
        return (
            f"StallWatchdog(timeout={self.timeout_ms:g}ms, "
            f"mode={self.on_stall}, stalls={self.stalls_detected})"
        )
