"""Resilience layer: graceful degradation for punctuated joins.

The paper assumes well-behaved inputs — punctuations that are never
violated, streams that arrive in order, disks that never fail, sources
that never stall.  This package removes those assumptions one at a
time, each behind an explicit opt-in so the paper's own experiments
stay byte-identical:

* :mod:`~repro.resilience.policy` — the fault-policy vocabulary
  (``strict`` / ``quarantine`` / ``repair`` / ``trust``);
* :mod:`~repro.resilience.validator` — the shared punctuation-contract
  validator used by every join operator;
* :mod:`~repro.resilience.deadletter` — where quarantined tuples go;
* :mod:`~repro.resilience.disorder` — bounded re-sequencing of
  out-of-order arrivals at the sources;
* :mod:`~repro.resilience.retry` — seeded transient disk faults and
  exponential-backoff retry, in virtual time;
* :mod:`~repro.resilience.watchdog` — source-stall detection and
  heartbeat punctuation synthesis;
* :mod:`~repro.resilience.chaos` — deterministic chaos scenarios
  composing all of the above (the ``repro chaos`` CLI command).
"""

from repro.resilience.deadletter import (
    DEFAULT_SAMPLE_CAPACITY,
    REASON_CONTRACT_VIOLATION,
    REASON_DUPLICATE,
    DeadLetter,
    DeadLetterStore,
)
from repro.resilience.disorder import DisorderBuffer
from repro.resilience.policy import (
    FAULT_POLICIES,
    QUARANTINE,
    REPAIR,
    STRICT,
    TRUST,
    normalize_policy,
)
from repro.resilience.retry import (
    DiskFaultInjector,
    DiskFaultProfile,
    RetryPolicy,
    maybe_injector,
)
from repro.resilience.validator import (
    ContractValidator,
    InertSideContract,
    StateSideContract,
    TrackedSideContract,
)
from repro.resilience.watchdog import (
    ON_STALL_FLAG,
    ON_STALL_HEARTBEAT,
    ON_STALL_RAISE,
    StallWatchdog,
)

__all__ = [
    "DEFAULT_SAMPLE_CAPACITY",
    "REASON_CONTRACT_VIOLATION",
    "REASON_DUPLICATE",
    "DeadLetter",
    "DeadLetterStore",
    "DisorderBuffer",
    "FAULT_POLICIES",
    "QUARANTINE",
    "REPAIR",
    "STRICT",
    "TRUST",
    "normalize_policy",
    "DiskFaultInjector",
    "DiskFaultProfile",
    "RetryPolicy",
    "maybe_injector",
    "ContractValidator",
    "InertSideContract",
    "StateSideContract",
    "TrackedSideContract",
    "ON_STALL_FLAG",
    "ON_STALL_HEARTBEAT",
    "ON_STALL_RAISE",
    "StallWatchdog",
    "ChaosScenario",
    "CHAOS_SCENARIOS",
    "run_chaos",
]


def __getattr__(name):
    # chaos imports operators/query layers; load lazily to keep the
    # resilience core importable from below those layers.
    if name in ("ChaosScenario", "CHAOS_SCENARIOS", "run_chaos"):
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
