"""Retry with exponential backoff, in virtual time.

The simulated disk never used to fail; production storage does, in
bursts.  This module models both sides of that reality:

* :class:`RetryPolicy` — a deterministic exponential-backoff schedule
  (initial backoff, multiplier, retry budget) expressed in virtual
  milliseconds, shared by anything that needs to survive a transient
  fault;
* :class:`DiskFaultProfile` — a *seeded* description of how the disk
  misbehaves: a per-operation failure probability and a burst outage
  duration (once an operation faults, the device stays down for the
  whole burst, and retries only succeed after their cumulative backoff
  has outlived it).

The combination turns an outage into *measurable virtual latency*: the
faulted operation's cost grows by the backoff sum, every retry is
counted, and the join above it simply runs slower — exactly the
graceful-degradation contract.  Only when a retry budget runs out —
either one operation's backoff schedule cannot outlast the burst, or
the policy's capped *total* budget across the whole run is spent —
does :class:`~repro.errors.RetryExhaustedError` escape (a
:class:`~repro.errors.TransientIOError` subclass, so pre-existing
handlers keep working).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple as PyTuple

from repro.errors import ResilienceError, RetryExhaustedError


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff schedule in virtual milliseconds.

    ``max_retries`` bounds the retries spent on one faulted operation;
    ``max_total_retries`` (optional) caps the retries spent across a
    whole run.  Once the total budget is gone, the next fault fails
    fast with :class:`~repro.errors.RetryExhaustedError` instead of
    burning another backoff schedule — the run is declared unhealthy
    rather than indefinitely slow.
    """

    max_retries: int = 8
    initial_backoff_ms: float = 0.5
    backoff_factor: float = 2.0
    max_total_retries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ResilienceError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )
        if self.initial_backoff_ms <= 0:
            raise ResilienceError(
                f"initial_backoff_ms must be positive, got {self.initial_backoff_ms}"
            )
        if self.backoff_factor < 1.0:
            raise ResilienceError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_total_retries is not None and self.max_total_retries < 1:
            raise ResilienceError(
                f"max_total_retries must be >= 1 when set, "
                f"got {self.max_total_retries}"
            )

    def backoffs(self) -> Iterator[float]:
        """The backoff before each retry, in order (``max_retries`` of them)."""
        backoff = self.initial_backoff_ms
        for _ in range(self.max_retries):
            yield backoff
            backoff *= self.backoff_factor

    @property
    def total_backoff_ms(self) -> float:
        """The whole schedule's worth of waiting — the survivable outage."""
        return sum(self.backoffs())


@dataclass(frozen=True)
class DiskFaultProfile:
    """Seeded transient-fault behaviour of a simulated disk.

    Parameters
    ----------
    failure_rate:
        Probability that any single read/write operation hits a fault.
    outage_ms:
        Once an operation faults, the device is down for this long
        (virtual time); retries fail until their cumulative backoff
        exceeds it.
    retry:
        The backoff schedule used to ride out the outage.
    seed:
        Seed of the private RNG drawing faults — same seed, same fault
        sequence, same manifest counters.
    """

    failure_rate: float = 0.0
    outage_ms: float = 2.0
    retry: RetryPolicy = RetryPolicy()
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ResilienceError(
                f"failure_rate must be in [0, 1], got {self.failure_rate}"
            )
        if self.outage_ms < 0:
            raise ResilienceError(
                f"outage_ms must be non-negative, got {self.outage_ms}"
            )

    def make_injector(self) -> "DiskFaultInjector":
        return DiskFaultInjector(self)


class DiskFaultInjector:
    """Draws faults for one disk and accounts the retries that absorb them."""

    def __init__(self, profile: DiskFaultProfile) -> None:
        self.profile = profile
        self._rng = random.Random(profile.seed)
        self.faults_injected = 0
        self.retries = 0
        self.backoff_time_ms = 0.0
        self.retry_exhausted = 0

    def charge(self, operation: str) -> PyTuple[float, int]:
        """Decide one operation's fate; return ``(penalty_ms, retries)``.

        A fault-free operation costs nothing extra.  A faulted one pays
        the backoff schedule until the cumulative wait outlives the
        burst outage; if the per-operation budget runs out first, the
        outage was not transient after all and
        :class:`~repro.errors.RetryExhaustedError` propagates to the
        operator.  A capped total budget (``max_total_retries``) fails
        fast the same way, *before* paying another backoff schedule —
        no retry is charged past the cap, so the counters never
        overstate the budget.
        """
        profile = self.profile
        if profile.failure_rate == 0.0:
            return 0.0, 0
        if self._rng.random() >= profile.failure_rate:
            return 0.0, 0
        self.faults_injected += 1
        budget = profile.retry.max_total_retries
        if budget is not None and self.retries >= budget:
            self.retry_exhausted += 1
            raise RetryExhaustedError(
                f"disk {operation} faulted with the total retry budget "
                f"already spent ({self.retries} of {budget} retries used); "
                f"failing fast instead of backing off again"
            )
        waited = 0.0
        attempts = 0
        for backoff in profile.retry.backoffs():
            if budget is not None and self.retries >= budget:
                self.retry_exhausted += 1
                raise RetryExhaustedError(
                    f"disk {operation} exhausted the total retry budget "
                    f"mid-outage ({budget} retries spent, "
                    f"{waited:g} ms of backoff paid); failing fast"
                )
            attempts += 1
            self.retries += 1
            waited += backoff
            self.backoff_time_ms += backoff
            if waited >= profile.outage_ms:
                return waited, attempts
        self.retry_exhausted += 1
        raise RetryExhaustedError(
            f"disk {operation} still failing after {attempts} retries "
            f"({waited:g} ms of backoff < {profile.outage_ms:g} ms outage); "
            f"raise the retry budget or shorten the outage"
        )

    def counters(self) -> dict:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "backoff_time_ms": self.backoff_time_ms,
            "retry.exhausted": self.retry_exhausted,
        }

    def __repr__(self) -> str:
        return (
            f"DiskFaultInjector(rate={self.profile.failure_rate}, "
            f"faults={self.faults_injected}, retries={self.retries})"
        )


def maybe_injector(
    profile: Optional[DiskFaultProfile],
) -> Optional[DiskFaultInjector]:
    """Build an injector when a profile with a non-zero rate is given."""
    if profile is None or profile.failure_rate == 0.0:
        return None
    return profile.make_injector()
