"""Fault policies: what an operator does when a contract is broken.

The paper's correctness argument assumes sources honour the punctuation
contract — "no tuple matching a punctuation arrives after it".  A
production system cannot assume that, so every join takes a **fault
policy** deciding what happens when the contract is violated:

``strict``
    Raise :class:`~repro.errors.ContractViolationError` and abort the
    run.  This is the default everywhere: with clean inputs it is
    byte-identical to the pre-resilience behaviour, and it is the right
    mode for reproducing the paper's figures, where a violation means
    the workload generator itself is broken.

``quarantine``
    Route the offending tuple to the operator's per-operator
    :class:`~repro.resilience.deadletter.DeadLetterStore` (counted and
    span-traced) and keep the join *sound*: the emitted results are
    exactly the results of the clean stream minus pairs involving
    quarantined tuples.  Nothing unsound ever reaches downstream.

``repair``
    Withdraw the broken promise instead of the tuple: every live
    punctuation covering the offending join value is retracted from the
    stream's punctuation set (and the punctuation index is healed), then
    the tuple is admitted normally.  The join stays *complete going
    forward* — the late tuple and its successors join everything still
    in state — at the cost of results already lost to purges the
    retracted promise justified.  Retractions are counted.

``trust``
    Skip the check entirely (the pre-resilience ``validate_inputs="off"``).
    The cheapest mode, and the only sensible one for operators fed by
    already-validated upstreams.

The legacy ``validate_inputs`` spellings (``raise``/``count``/``off``)
are accepted and normalised so existing configurations keep working.
"""

from __future__ import annotations

from repro.errors import ResilienceError

STRICT = "strict"
QUARANTINE = "quarantine"
REPAIR = "repair"
TRUST = "trust"

FAULT_POLICIES = (STRICT, QUARANTINE, REPAIR, TRUST)

# Pre-resilience ``validate_inputs`` values map onto the new policies:
# "raise" hard-failed (strict), "count" tallied and dropped (quarantine
# without the dead-letter store), "off" skipped the check (trust).
_LEGACY_ALIASES = {
    "raise": STRICT,
    "count": QUARANTINE,
    "off": TRUST,
}


def normalize_policy(policy: str) -> str:
    """Return the canonical policy name, accepting legacy spellings.

    Raises :class:`~repro.errors.ResilienceError` for unknown values.
    """
    canonical = _LEGACY_ALIASES.get(policy, policy)
    if canonical not in FAULT_POLICIES:
        raise ResilienceError(
            f"unknown fault policy {policy!r}; choose one of {FAULT_POLICIES} "
            f"(legacy spellings {tuple(_LEGACY_ALIASES)} are also accepted)"
        )
    return canonical
