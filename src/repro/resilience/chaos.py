"""Deterministic chaos scenarios: every fault kind, one seeded run.

A :class:`ChaosScenario` composes the fault injectors of
:mod:`repro.workloads.faults` (contract violations, disorder,
duplicates, stalls) with the runtime fault machinery of this package
(disorder buffers, transient disk faults, the stall watchdog) into one
reproducible experiment: same scenario + same seed ⇒ the same virtual
timeline and the exact same counters, every time.  :func:`run_chaos`
executes a scenario under a chosen fault policy and returns a run whose
manifest carries a ``resilience`` section summarising what was injected
and how the stack absorbed it — the ``repro chaos`` CLI command prints
that summary and diffs it against checked-in goldens in CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import ResilienceError
from repro.obs.manifest import build_manifest
from repro.operators.sink import Sink
from repro.query.plan import QueryPlan
from repro.resilience.policy import QUARANTINE, normalize_policy
from repro.resilience.retry import DiskFaultProfile
from repro.resilience.watchdog import ON_STALL_HEARTBEAT, StallWatchdog
from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk
from repro.workloads.faults import (
    inject_duplicates,
    inject_out_of_order,
    inject_punctuation_violation,
    inject_stall,
)
from repro.workloads.generator import generate_workload


@dataclass(frozen=True)
class ChaosScenario:
    """One named, fully-seeded composition of fault kinds.

    Every knob defaults to "off", so a scenario only lists the faults it
    actually injects.  All randomness derives from the scenario seed
    (offset per injector), making two runs of the same scenario
    counter-identical.
    """

    name: str
    description: str
    # -- workload ------------------------------------------------------
    tuples_per_stream: int = 300
    punct_spacing: float = 10.0
    seed: int = 7
    # -- contract violations ------------------------------------------
    violations_a: int = 0
    violations_b: int = 0
    # -- delivery disorder --------------------------------------------
    disorder_displacement_ms: float = 0.0
    disorder_fraction: float = 0.0
    disorder_slack_ms: Optional[float] = None
    # -- duplicate deliveries -----------------------------------------
    duplicate_fraction: float = 0.0
    # -- transient disk faults ----------------------------------------
    disk_failure_rate: float = 0.0
    disk_outage_ms: float = 2.0
    memory_threshold: Optional[int] = None
    # -- source stall --------------------------------------------------
    stall_at_fraction: Optional[float] = None
    stall_gap_ms: float = 1000.0
    watchdog_timeout_ms: Optional[float] = None
    watchdog_mode: str = ON_STALL_HEARTBEAT
    # -- worker crash + checkpoint recovery ----------------------------
    # n_shards > 0 switches the scenario to the supervised sharded
    # backend: the workload runs unsharded (the reference) and as a
    # K-shard checkpointed stack whose crash_shard worker dies before
    # its crash_after_items-th delivery; the summary records whether
    # recovery reproduced the reference result multiset exactly.
    n_shards: int = 0
    crash_shard: int = 0
    crash_after_items: int = 0
    checkpoint_every: int = 4


CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="gentle",
            description="A few contract violations on an otherwise "
            "clean workload — the minimal policy exercise.",
            violations_a=2,
            violations_b=1,
        ),
        ChaosScenario(
            name="disorder",
            description="Out-of-order and duplicate deliveries; the "
            "source-side disorder buffer (slack ≥ displacement) "
            "re-sequences arrivals before the join sees them.",
            violations_a=1,
            violations_b=1,
            disorder_displacement_ms=15.0,
            disorder_fraction=0.3,
            disorder_slack_ms=20.0,
            duplicate_fraction=0.05,
        ),
        ChaosScenario(
            name="disk_storm",
            description="A tight memory threshold forces spills while "
            "the simulated disk throws seeded transient faults; retries "
            "with exponential backoff ride out every outage.",
            violations_a=1,
            memory_threshold=60,
            disk_failure_rate=0.2,
            disk_outage_ms=1.0,
        ),
        ChaosScenario(
            name="crash",
            description="A shard worker dies mid-run (seeded); the "
            "supervisor restores its punctuation-aligned checkpoint, "
            "replays the in-flight suffix and the recovered run "
            "reproduces the unsharded result multiset exactly.",
            tuples_per_stream=240,
            n_shards=2,
            crash_shard=0,
            crash_after_items=60,
            checkpoint_every=4,
        ),
        ChaosScenario(
            name="stall",
            description="Stream A freezes mid-run; the watchdog detects "
            "the silence and synthesises a heartbeat punctuation, so "
            "post-resume arrivals exercise the fault policy.",
            stall_at_fraction=0.5,
            stall_gap_ms=2000.0,
            watchdog_timeout_ms=500.0,
        ),
    )
}


class ChaosRun:
    """One finished chaos run and everything it measured."""

    def __init__(
        self,
        scenario: ChaosScenario,
        policy: str,
        seed: int,
        join: PJoin,
        sink: Sink,
        plan: QueryPlan,
        watchdog: Optional[StallWatchdog],
        injected: Dict[str, int],
        manifest: Dict[str, Any],
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.seed = seed
        self.join = join
        self.sink = sink
        self.plan = plan
        self.watchdog = watchdog
        self.injected = injected
        self.manifest = manifest

    @property
    def summary(self) -> Dict[str, Any]:
        """The golden-checkable counter summary (integer counters only)."""
        return self.manifest["resilience"]["summary"]

    def __repr__(self) -> str:
        return (
            f"ChaosRun({self.scenario.name!r}, policy={self.policy}, "
            f"results={self.sink.tuple_count})"
        )


def _corrupt_schedules(scenario: ChaosScenario, workload: Any, seed: int):
    """Apply the scenario's schedule-level injectors; count what went in."""
    schedules = [list(workload.schedule_a), list(workload.schedule_b)]
    injected = {
        "violations": 0,
        "duplicates": 0,
        "stalls": 0,
    }
    for side, count in ((0, scenario.violations_a), (1, scenario.violations_b)):
        for i in range(count):
            schedules[side], _value, _position = inject_punctuation_violation(
                schedules[side],
                workload.schemas[side],
                seed=seed + 101 + 31 * side + i,
            )
            injected["violations"] += 1
    if scenario.duplicate_fraction > 0:
        for side in (0, 1):
            before = len(schedules[side])
            schedules[side] = inject_duplicates(
                schedules[side],
                fraction=scenario.duplicate_fraction,
                seed=seed + 211 + side,
            )
            injected["duplicates"] += len(schedules[side]) - before
    if scenario.disorder_fraction > 0:
        for side in (0, 1):
            schedules[side] = inject_out_of_order(
                schedules[side],
                displacement_ms=scenario.disorder_displacement_ms,
                fraction=scenario.disorder_fraction,
                seed=seed + 307 + side,
            )
    if scenario.stall_at_fraction is not None:
        schedules[0] = inject_stall(
            schedules[0],
            at_fraction=scenario.stall_at_fraction,
            gap_ms=scenario.stall_gap_ms,
        )
        injected["stalls"] += 1
    return schedules, injected


def _run_chaos_crash(
    scenario: ChaosScenario,
    policy: str,
    seed: int,
    cost_model: Optional[CostModel],
) -> ChaosRun:
    """The worker-crash scenario: reference run vs supervised recovery.

    The same clean workload runs twice: once unsharded (the reference)
    and once on the supervised multiprocess backend with a seeded
    worker crash mid-run.  Eager purge plus push-count propagation make
    both the result multiset and the merged punctuation multiset exact,
    so the golden pins ``results_match``/``punctuations_match`` at 1 —
    any recovery bug shows up as a multiset mismatch, not just a count
    drift.  The summary carries only scenario knobs and integer
    recovery counters (never checkpoint byte sizes, which depend on
    the pickle encoding of the running interpreter).
    """
    from repro.checkpoint.recovery import CrashSpec, run_sharded_resilient

    workload = generate_workload(
        n_tuples_per_stream=scenario.tuples_per_stream,
        punct_spacing_a=scenario.punct_spacing,
        punct_spacing_b=scenario.punct_spacing,
        seed=seed,
    )
    config = PJoinConfig(
        fault_policy=policy,
        purge_threshold=1,
        propagation_mode="push_count",
    )

    plan = QueryPlan(cost_model=cost_model)
    join = PJoin(
        plan.engine,
        plan.cost_model,
        workload.schemas[0],
        workload.schemas[1],
        workload.join_fields[0],
        workload.join_fields[1],
        config=config,
        name="pjoin",
    )
    sink = Sink(plan.engine, plan.cost_model)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0, name="A")
    plan.add_source(workload.schedule_b, join, port=1, name="B")
    plan.run()
    reference_results = sink.result_multiset()
    reference_puncts: Dict[Any, int] = {}
    for punct in sink.punctuations:
        key = punct.patterns[0]
        reference_puncts[key] = reference_puncts.get(key, 0) + 1

    outcome = run_sharded_resilient(
        workload,
        scenario.n_shards,
        config=config,
        keep_items=True,
        checkpoint_every=scenario.checkpoint_every,
        crash=CrashSpec(scenario.crash_shard, scenario.crash_after_items),
    )

    label = f"chaos:{scenario.name}:{policy}"
    manifest = build_manifest(
        label, join, sink, plan.engine, workload=workload,
        duration_ms=plan.engine.now,
    )
    recovery = outcome.counters
    summary: Dict[str, Any] = {
        "scenario": scenario.name,
        "policy": policy,
        "seed": seed,
        "n_shards": scenario.n_shards,
        "crash_shard": scenario.crash_shard,
        "crash_after_items": scenario.crash_after_items,
        "checkpoint_every": scenario.checkpoint_every,
        "reference_results": sink.tuple_count,
        "results_produced": outcome.result_count,
        "results_match": int(outcome.result_multiset() == reference_results),
        "punctuations_match": int(
            outcome.punctuation_multiset() == reference_puncts
        ),
        "checkpoints_taken": int(recovery.get("recovery.checkpoints_taken", 0)),
        "crashes_detected": int(recovery.get("recovery.crashes_detected", 0)),
        "workers_respawned": int(recovery.get("recovery.workers_respawned", 0)),
        "events_replayed": int(recovery.get("recovery.events_replayed", 0)),
    }
    manifest["resilience"] = {
        "summary": summary,
        "watchdog": {},
        "sources": {s.name: s.counters() for s in plan.sources},
    }
    injected = {"violations": 0, "duplicates": 0, "stalls": 0}
    return ChaosRun(
        scenario, policy, seed, join, sink, plan, None, injected, manifest
    )


def run_chaos(
    scenario: Any,
    policy: str = QUARANTINE,
    seed: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
) -> ChaosRun:
    """Execute one chaos scenario under one fault policy.

    *scenario* is a :class:`ChaosScenario` or the name of a preset in
    :data:`CHAOS_SCENARIOS`.  Under ``strict`` a scenario that injects
    contract violations (or stalls a heartbeat-watched source) raises
    :class:`~repro.errors.ContractViolationError` — that is the point
    of strict; use ``quarantine`` or ``repair`` for runs that must
    complete.
    """
    if isinstance(scenario, str):
        try:
            scenario = CHAOS_SCENARIOS[scenario]
        except KeyError:
            raise ResilienceError(
                f"unknown chaos scenario {scenario!r}; presets: "
                f"{sorted(CHAOS_SCENARIOS)}"
            ) from None
    policy = normalize_policy(policy)
    if seed is None:
        seed = scenario.seed
    if scenario.n_shards > 0:
        return _run_chaos_crash(scenario, policy, seed, cost_model)
    workload = generate_workload(
        n_tuples_per_stream=scenario.tuples_per_stream,
        punct_spacing_a=scenario.punct_spacing,
        punct_spacing_b=scenario.punct_spacing,
        seed=seed,
    )
    schedules, injected = _corrupt_schedules(scenario, workload, seed)

    plan = QueryPlan(cost_model=cost_model)
    fault_profile = None
    if scenario.disk_failure_rate > 0:
        fault_profile = DiskFaultProfile(
            failure_rate=scenario.disk_failure_rate,
            outage_ms=scenario.disk_outage_ms,
            seed=seed + 997,
        )
    disk = SimulatedDisk(plan.cost_model, fault_profile=fault_profile)
    config = PJoinConfig(
        fault_policy=policy,
        memory_threshold=scenario.memory_threshold,
    )
    join = PJoin(
        plan.engine,
        plan.cost_model,
        workload.schemas[0],
        workload.schemas[1],
        workload.join_fields[0],
        workload.join_fields[1],
        config=config,
        disk=disk,
        name="pjoin",
    )
    sink = Sink(plan.engine, plan.cost_model)
    join.connect(sink)
    plan.add_source(
        schedules[0], join, port=0, name="A",
        disorder_slack_ms=scenario.disorder_slack_ms,
    )
    plan.add_source(
        schedules[1], join, port=1, name="B",
        disorder_slack_ms=scenario.disorder_slack_ms,
    )
    watchdog = None
    if scenario.watchdog_timeout_ms is not None:
        watchdog = StallWatchdog(
            plan.engine,
            timeout_ms=scenario.watchdog_timeout_ms,
            on_stall=scenario.watchdog_mode,
        )
        watchdog.watch_plan_sources(plan, workload.schemas)
        watchdog.start()
    plan.run()

    label = f"chaos:{scenario.name}:{policy}"
    manifest = build_manifest(
        label, join, sink, plan.engine, workload=workload,
        duration_ms=plan.engine.now,
    )
    summary: Dict[str, Any] = {
        "scenario": scenario.name,
        "policy": policy,
        "seed": seed,
        "faults_injected_schedule": injected["violations"]
        + injected["duplicates"]
        + injected["stalls"],
        "violations_injected": injected["violations"],
        "duplicates_injected": injected["duplicates"],
        "stalls_injected": injected["stalls"],
        "violations_seen": join.validator.violations,
        "tuples_quarantined": join.validator.quarantined,
        "punctuations_retracted": join.validator.punctuations_retracted,
        "dead_letters": len(join.dead_letters) if join.dead_letters else 0,
        "disk_faults_injected": (
            disk.fault_injector.faults_injected if disk.fault_injector else 0
        ),
        "disk_retries": (
            disk.fault_injector.retries if disk.fault_injector else 0
        ),
        "stalls_detected": watchdog.stalls_detected if watchdog else 0,
        "heartbeats_emitted": watchdog.heartbeats_emitted if watchdog else 0,
        "degraded": int(watchdog.degraded) if watchdog else 0,
        "items_delivered": sum(s.items_sent for s in plan.sources),
        "tuples_reordered": sum(
            s.disorder_buffer.reordered
            for s in plan.sources
            if s.disorder_buffer is not None
        ),
        "late_releases": sum(
            s.disorder_buffer.late_releases
            for s in plan.sources
            if s.disorder_buffer is not None
        ),
        "results_produced": sink.tuple_count,
    }
    manifest["resilience"] = {
        "summary": summary,
        "watchdog": watchdog.counters() if watchdog else {},
        "sources": {s.name: s.counters() for s in plan.sources},
    }
    return ChaosRun(
        scenario, policy, seed, join, sink, plan, watchdog, injected, manifest
    )
