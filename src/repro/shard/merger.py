"""Aligned merge: deterministic re-union of K shard output streams.

Result tuples pass straight through (zero virtual cost, so single-shard
stacks stay byte-identical to the unsharded operator).  Output
*punctuations* are aligned: a logical punctuation that was split across
shards by the router is re-emitted downstream exactly once — when every
shard in its cover has propagated its narrowed piece.  This is a
distributed-min watermark over the shard punctuation frontiers: the
merged promise only holds once the *slowest* covering shard has
released it.

The bookkeeping lives in an :class:`AlignmentLedger` shared with the
:class:`~repro.shard.router.ShardRouter` (in the in-simulator backend)
or replayed offline by the multiprocess backend's merge step: the
router registers one *subscription* per routed input punctuation —
the original join pattern plus the set of ``(shard, narrowed_pattern)``
pieces it still owes — and each shard punctuation arriving at the
merger settles the oldest subscription expecting that piece.  Matching
oldest-first keeps duplicate patterns well-defined: when both streams
punctuate the same constant, two subscriptions are registered and two
merged punctuations are emitted, exactly as the unsharded operator
propagates one per side.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple as PyTuple

from repro.operators.base import Operator
from repro.punctuations.patterns import Pattern, WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class _Subscription:
    """One routed input punctuation awaiting all its shard pieces."""

    __slots__ = ("original", "remaining")

    def __init__(self, original: Pattern, remaining: set) -> None:
        self.original = original
        self.remaining = remaining  # {(shard, narrowed_pattern), ...}


class AlignmentLedger:
    """Maps shard punctuation frontiers back to original promises."""

    def __init__(self) -> None:
        # (shard, narrowed_pattern) -> FIFO of subscriptions owed a piece.
        self._queues: Dict[PyTuple[int, Pattern], Deque[_Subscription]] = {}
        self.subscriptions_open = 0
        self.subscriptions_completed = 0

    def register(
        self, original: Pattern, cover: List[PyTuple[int, Pattern]]
    ) -> Optional[_Subscription]:
        """Expect one narrowed piece from every shard in *cover*.

        Returns the subscription so callers that need to inspect
        settlement progress can hold on to it — the rescale quiesce
        (:mod:`repro.checkpoint.rescale`) re-delivers still-unsettled
        originals across the new shard set.  The router ignores the
        return value.
        """
        if not cover:
            return None
        sub = _Subscription(original, {(s, p) for s, p in cover})
        for key in sub.remaining:
            self._queues.setdefault(key, deque()).append(sub)
        self.subscriptions_open += 1
        return sub

    def settle(
        self, shard: int, pattern: Pattern
    ) -> PyTuple[bool, Optional[Pattern]]:
        """Record one shard piece.

        Returns ``(matched, original)``: *matched* says whether any
        subscription expected this piece, and *original* is the original
        pattern when the piece completed its subscription (else
        ``None``).
        """
        key = (shard, pattern)
        queue = self._queues.get(key)
        if not queue:
            return False, None
        sub = queue.popleft()
        if not queue:
            del self._queues[key]
        sub.remaining.discard(key)
        if sub.remaining:
            return True, None
        self.subscriptions_open -= 1
        self.subscriptions_completed += 1
        return True, sub.original

    def counters(self) -> dict:
        return {
            "subscriptions_open": self.subscriptions_open,
            "subscriptions_completed": self.subscriptions_completed,
        }


class AlignedMerger(Operator):
    """K-input zero-cost union with punctuation alignment.

    Parameters
    ----------
    ledger:
        The :class:`AlignmentLedger` the router registers subscriptions
        in.
    out_schema:
        The logical join's output schema; merged punctuations constrain
        ``out_join_index`` on it (wildcards elsewhere), mirroring the
        unsharded operator's propagation shape.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        n_shards: int,
        ledger: AlignmentLedger,
        out_schema: Schema,
        out_join_index: int,
        name: str = "shard_merger",
    ) -> None:
        super().__init__(engine, cost_model, n_inputs=n_shards, name=name)
        self.ledger = ledger
        self.out_schema = out_schema
        self.out_join_index = out_join_index
        self.tuples_merged = 0
        self.punctuations_aligned = 0
        self.punctuations_merged = 0
        self.punctuations_unaligned = 0

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Tuple):
            self.tuples_merged += 1
            self.emit(item)
            return 0.0
        if isinstance(item, Punctuation):
            self._align(item, port)
            return 0.0
        return 0.0

    def _align(self, punct: Punctuation, shard: int) -> None:
        pattern = punct.patterns[self.out_join_index]
        matched, original = self.ledger.settle(shard, pattern)
        if not matched:
            # A shard released a promise the router never split: hold it
            # (re-emitting a per-shard piece of a broadcast pattern would
            # over-promise about the other shards' keys).
            self.punctuations_unaligned += 1
            return
        self.punctuations_aligned += 1
        if original is None:
            return
        self.punctuations_merged += 1
        patterns: List[Pattern] = [WILDCARD] * self.out_schema.arity
        patterns[self.out_join_index] = original
        self.emit(Punctuation(self.out_schema, patterns, ts=punct.ts))

    def counters(self) -> dict:
        out = super().counters()
        out.update(
            tuples_merged=self.tuples_merged,
            punctuations_aligned=self.punctuations_aligned,
            punctuations_merged=self.punctuations_merged,
            punctuations_unaligned=self.punctuations_unaligned,
        )
        out.update(self.ledger.counters())
        return out
