"""The wall-clock multiprocess backend: one OS process per shard.

Mirrors the PR 3 sweep runner's plan/worker/merge shape, but splits one
*run* instead of many runs:

* **plan** — :func:`plan_shards` routes the workload's schedules offline
  with the same rules the in-simulator router applies (tuples to their
  owning shard, punctuations narrowed per cover) and records the
  alignment subscriptions in arrival order;
* **worker** — each shard process replays its slice through a private
  :class:`~repro.sim.engine.SimulationEngine`; shards share no state,
  so a shard's virtual trace is identical whether it runs in the shared
  engine or alone, which is what makes the two backends agree;
* **merge** — results are re-ordered deterministically by
  ``(virtual time, shard, sequence)`` and shard punctuation frontiers
  are replayed through an :class:`~repro.shard.merger.AlignmentLedger`,
  yielding the same merged output punctuations the in-simulator
  :class:`~repro.shard.merger.AlignedMerger` emits.

Worker processes are forked, so shard payloads transfer by inheritance
(no pickling of tuple schedules); each worker blocks on a pipe until
released, which lets the benchmark harness start processes outside the
timed window and time only the simulation work.  On platforms without
``fork`` the backend degrades to running the shard simulations
sequentially in-process — same outcome, no parallelism.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Any, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.memory.budget import GovernorSpec
from repro.obs.manifest import operator_counters
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.query.plan import QueryPlan
from repro.shard.merger import AlignmentLedger
from repro.shard.operator import aggregate_counters
from repro.shard.routing import narrow_punctuation, shard_cover, shard_of
from repro.tuples.tuple import Tuple
from repro.workloads.generator import GeneratedWorkload

Schedule = List[PyTuple[float, Any]]


class ShardPlan:
    """The offline routing of one workload across K shards."""

    def __init__(
        self,
        workload: GeneratedWorkload,
        n_shards: int,
    ) -> None:
        self.workload = workload
        self.n_shards = n_shards
        self.schedules: List[PyTuple[Schedule, Schedule]] = [
            ([], []) for _ in range(n_shards)
        ]
        # (ts, side, original_join_pattern, cover) in arrival order —
        # replayed into an AlignmentLedger by the merge step.
        self.registrations: List[PyTuple[float, int, Any, Any]] = []
        self._route()

    def _route(self) -> None:
        workload = self.workload
        join_indices = [
            workload.schemas[side].index_of(workload.join_fields[side])
            for side in (0, 1)
        ]
        registrations = []
        for side in (0, 1):
            join_index = join_indices[side]
            join_field = workload.join_fields[side]
            for order, (time, item) in enumerate(workload.schedules[side]):
                if isinstance(item, Tuple):
                    target = shard_of(item.values[join_index], self.n_shards)
                    self.schedules[target][side].append((time, item))
                elif isinstance(item, Punctuation):
                    cover = shard_cover(item.patterns[join_index], self.n_shards)
                    if not cover:
                        continue
                    if is_join_exploitable(item, join_field):
                        registrations.append(
                            (time, side, order, item.patterns[join_index], cover)
                        )
                    for shard, narrowed in cover:
                        self.schedules[shard][side].append(
                            (time, narrow_punctuation(item, join_index, shard, narrowed))
                        )
                else:
                    for shard in range(self.n_shards):
                        self.schedules[shard][side].append((time, item))
        registrations.sort(key=lambda r: (r[0], r[1], r[2]))
        self.registrations = [(t, side, pat, cover)
                              for t, side, _order, pat, cover in registrations]


def run_shard_simulation(
    shard_index: int,
    schedule_a: Schedule,
    schedule_b: Schedule,
    workload: GeneratedWorkload,
    config: Optional[PJoinConfig],
    keep_items: bool,
    name: str = "pjoin",
    governor: Optional[GovernorSpec] = None,
) -> Dict[str, Any]:
    """Run one shard's slice to completion; return its plain-dict outcome.

    *governor* is this shard's own (already split) budget share.
    """
    plan = QueryPlan()
    join = PJoin(
        plan.engine,
        plan.cost_model,
        workload.schemas[0],
        workload.schemas[1],
        workload.join_fields[0],
        workload.join_fields[1],
        config=config,
        name=f"{name}.shard{shard_index}",
        governor=governor,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=keep_items)
    join.connect(sink)
    plan.add_source(schedule_a, join, port=0, name=f"A{shard_index}")
    plan.add_source(schedule_b, join, port=1, name=f"B{shard_index}")
    plan.run()
    out_join_index = join.join_indices[0]
    return {
        "shard": shard_index,
        "results": [(tup.values, tup.ts) for tup in sink.results]
        if keep_items else None,
        "result_count": sink.tuple_count,
        "punctuations": [
            (punct.patterns[out_join_index], punct.ts)
            for punct in sink.punctuations
        ] if keep_items else [],
        "punctuation_count": sink.punctuation_count,
        "counters": operator_counters(join),
        "events": plan.engine.events_executed,
        "virtual_now": plan.engine.now,
        "eos_time": sink.eos_time,
    }


class ShardedRunOutcome:
    """The merged view of one sharded multiprocess run."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_outcomes: Sequence[Dict[str, Any]],
    ) -> None:
        self.n_shards = plan.n_shards
        self.shard_outcomes = list(shard_outcomes)
        self.result_count = sum(o["result_count"] for o in self.shard_outcomes)
        self.events = sum(o["events"] for o in self.shard_outcomes)
        self.virtual_now = max(
            (o["virtual_now"] for o in self.shard_outcomes), default=0.0
        )
        self.counters = aggregate_counters(
            [o["counters"] for o in self.shard_outcomes]
        )
        self.counters["shards"] = self.n_shards
        # Deterministic merged result order: (virtual time, shard, seq).
        self.results: List[PyTuple[tuple, float]] = []
        for outcome in self.shard_outcomes:
            if outcome["results"] is not None:
                self.results.extend(outcome["results"])
        self.results.sort(key=lambda r: r[1])
        # Merged output punctuations via ledger replay.
        ledger = AlignmentLedger()
        for _ts, _side, pattern, cover in plan.registrations:
            ledger.register(pattern, cover)
        arrivals = []
        for outcome in self.shard_outcomes:
            for index, (pattern, ts) in enumerate(outcome["punctuations"]):
                arrivals.append((ts, outcome["shard"], index, pattern))
        arrivals.sort(key=lambda a: (a[0], a[1], a[2]))
        self.punctuations: List[PyTuple[Any, float]] = []
        self.punctuations_unaligned = 0
        for ts, shard, _index, pattern in arrivals:
            matched, original = ledger.settle(shard, pattern)
            if not matched:
                self.punctuations_unaligned += 1
            elif original is not None:
                self.punctuations.append((original, ts))

    def result_multiset(self) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for values, _ts in self.results:
            counts[values] = counts.get(values, 0) + 1
        return counts

    def punctuation_multiset(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = {}
        for pattern, _ts in self.punctuations:
            counts[pattern] = counts.get(pattern, 0) + 1
        return counts


# ---------------------------------------------------------------------------
# Worker-process plumbing (fork + pipe; workers idle until released)
# ---------------------------------------------------------------------------


def _shard_worker_main(conn, shard_index, schedule_a, schedule_b, workload,
                       config, keep_items, governor=None) -> None:
    """Worker loop: run the inherited slice once per ``"go"`` message."""
    try:
        while True:
            message = conn.recv()
            if message != "go":
                break
            outcome = run_shard_simulation(
                shard_index, schedule_a, schedule_b, workload, config,
                keep_items, governor=governor,
            )
            conn.send(outcome)
    finally:
        conn.close()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class ShardWorkerPool:
    """K forked shard workers, each parked on a pipe until released.

    Created outside a timed window (process start-up and payload
    transfer-by-fork are setup, not simulation); :meth:`run` releases
    every worker and gathers the shard outcomes, so a wall clock around
    it times only simulation work plus the small outcome pickles.
    """

    def __init__(
        self,
        plan: ShardPlan,
        config: Optional[PJoinConfig] = None,
        keep_items: bool = False,
        governor: Optional[GovernorSpec] = None,
    ) -> None:
        self.plan = plan
        self.config = config
        self.keep_items = keep_items
        self.governor = governor
        shard_governors = (
            governor.split(plan.n_shards) if governor is not None
            else [None] * plan.n_shards
        )
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for shard in range(plan.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            schedule_a, schedule_b = plan.schedules[shard]
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, shard, schedule_a, schedule_b,
                      plan.workload, config, keep_items,
                      shard_governors[shard]),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def run(self) -> ShardedRunOutcome:
        """Release every worker, gather outcomes, merge deterministically."""
        for conn in self._conns:
            conn.send("go")
        outcomes = [conn.recv() for conn in self._conns]
        return ShardedRunOutcome(self.plan, outcomes)

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send("stop")
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []


# One cached pool per benchmark configuration, closed at exit, so
# ``repeat`` runs reuse warm workers and the spawn cost stays untimed.
_POOL_CACHE: Dict[Any, ShardWorkerPool] = {}


def warm_pool(
    key: Any,
    plan: ShardPlan,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = False,
    governor: Optional[GovernorSpec] = None,
) -> ShardWorkerPool:
    """Get (or fork) the cached worker pool for *key*."""
    pool = _POOL_CACHE.get(key)
    if pool is None:
        pool = ShardWorkerPool(
            plan, config=config, keep_items=keep_items, governor=governor
        )
        _POOL_CACHE[key] = pool
    return pool


@atexit.register
def _close_pools() -> None:  # pragma: no cover - exit hook
    for pool in _POOL_CACHE.values():
        pool.close()
    _POOL_CACHE.clear()


def run_sharded_multiprocess(
    workload: GeneratedWorkload,
    n_shards: int,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = True,
    governor: Optional[GovernorSpec] = None,
) -> ShardedRunOutcome:
    """Plan, fork, run and merge one sharded PJoin over *workload*.

    *governor* is the **global** budget; each shard receives its split
    share, so the per-shard budgets sum to the global one.  Falls back
    to sequential in-process shard simulations where ``fork`` is
    unavailable — identical outcome, no parallelism.
    """
    plan = ShardPlan(workload, n_shards)
    if not fork_available():  # pragma: no cover - non-POSIX fallback
        shard_governors = (
            governor.split(n_shards) if governor is not None
            else [None] * n_shards
        )
        outcomes = [
            run_shard_simulation(
                shard, plan.schedules[shard][0], plan.schedules[shard][1],
                workload, config, keep_items,
                governor=shard_governors[shard],
            )
            for shard in range(n_shards)
        ]
        return ShardedRunOutcome(plan, outcomes)
    pool = ShardWorkerPool(
        plan, config=config, keep_items=keep_items, governor=governor
    )
    try:
        return pool.run()
    finally:
        pool.close()
