"""ShardedJoin: one logical join executed as K shard operators.

The in-simulator backend of the sharding subsystem.  A
:class:`ShardedJoin` wires ``router → K inner joins → aligned merger``
inside one :class:`~repro.sim.engine.SimulationEngine` and presents the
same surface the experiment harness expects from a join operator
(``push``/``connect``, state-size gauges, ``counters()``/``stats()``),
so every figure preset, metrics sampler and manifest builder works
unchanged with ``--shards K``.

Virtual-time semantics: each shard is its own single-server operator,
so K shards process concurrently on the virtual clock — the sharded
stack models a K-core deployment.  Each shard's probe cost is driven by
its *own* state occupancy (≈ 1/K of the logical state), which is
exactly the state-size → probe-cost feedback the paper's Figure 7
saturation builds on, now shrinking with K.  Router and merger charge
zero virtual cost and create no engine events, so with ``K = 1`` the
stack replays the unsharded execution event-for-event (byte-identical
output, same ``events_executed``).

Fault policies apply *per shard*: every inner join runs its own
contract validator, dead-letter store and disorder accounting against
the shard's key subspace, and the per-shard counters flow into the run
manifest under ``<name>.shard<i>``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.core.registry import EventListenerRegistry
from repro.errors import OperatorError
from repro.memory.budget import GovernorSpec
from repro.operators.shj import SymmetricHashJoin
from repro.operators.xjoin import XJoin
from repro.shard.merger import AlignedMerger, AlignmentLedger
from repro.shard.router import ShardRouter
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.tuples.schema import Schema

# Builds one inner join for a shard: (engine, cost_model, name) -> operator.
InnerBuilder = Callable[[SimulationEngine, CostModel, str], Any]

# Builds the router: (shards, join_indices, join_fields, ledger, name) -> router.
RouterFactory = Callable[
    [Sequence[Any], Sequence[int], Sequence[str], AlignmentLedger, str],
    ShardRouter,
]

# Counters that aggregate by max across shards, not by sum.
_MAX_COUNTERS = frozenset({"max_queue_length"})


def aggregate_counters(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard counter snapshots into one logical registry.

    Numeric counters sum across shards (``max_queue_length`` takes the
    max — a logical queue never held the sum of the shard peaks);
    non-numeric values are dropped.
    """
    out: Dict[str, Any] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if key in _MAX_COUNTERS:
                out[key] = max(out.get(key, 0), value)
            else:
                out[key] = out.get(key, 0) + value
    return out


class ShardedJoin:
    """K shard joins behind a router and an aligned merger.

    Parameters
    ----------
    build_inner:
        Builds one shard's inner join; called K times with the shard's
        name (``<name>.shard<i>``).  Use :func:`sharded_pjoin` /
        :func:`sharded_xjoin` / :func:`sharded_shj` for the stock joins.
    router_factory:
        Builds the router in front of the shards; defaults to the stock
        hash :class:`~repro.shard.router.ShardRouter`.  The skew layer
        passes the hot-key-replicating router here.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        n_shards: int,
        build_inner: InnerBuilder,
        name: str = "pjoin",
        router_factory: Optional[RouterFactory] = None,
    ) -> None:
        if n_shards < 1:
            raise OperatorError(f"need at least one shard, got {n_shards}")
        self.engine = engine
        self.cost_model = cost_model
        self.name = name
        self.n_shards = n_shards
        self.n_inputs = 2
        self.schemas = [left_schema, right_schema]
        self.join_fields = [left_field, right_field]
        self.join_indices = [
            left_schema.index_of(left_field),
            right_schema.index_of(right_field),
        ]
        self.out_schema = left_schema.concat(right_schema, name=name + ".out")
        self.shards: List[Any] = [
            build_inner(engine, cost_model, f"{name}.shard{i}")
            for i in range(n_shards)
        ]
        self.ledger = AlignmentLedger()
        make_router = router_factory if router_factory is not None else ShardRouter
        self.router = make_router(
            self.shards,
            self.join_indices,
            self.join_fields,
            self.ledger,
            f"{name}.router",
        )
        self.merger = AlignedMerger(
            engine,
            cost_model,
            n_shards,
            self.ledger,
            self.out_schema,
            self.join_indices[0],
            name=f"{name}.merge",
        )
        for port, shard in enumerate(self.shards):
            shard.connect(self.merger, port=port)

    # ------------------------------------------------------------------
    # Operator surface (what sources, sinks and the harness touch)
    # ------------------------------------------------------------------

    def push(self, item: Any, port: int = 0) -> None:
        self.router.push(item, port)

    def connect(self, downstream: Any, port: int = 0) -> Any:
        return self.merger.connect(downstream, port)

    @property
    def finished(self) -> bool:
        return self.merger.finished

    @property
    def config(self) -> Any:
        """The shards' shared config (shard 0's; all are built alike)."""
        return getattr(self.shards[0], "config", None)

    # ------------------------------------------------------------------
    # Metrics surface (gauges, manifests, reports)
    # ------------------------------------------------------------------

    def state_size(self, side: int) -> int:
        return sum(shard.state_size(side) for shard in self.shards)

    def total_state_size(self) -> int:
        return sum(shard.total_state_size() for shard in self.shards)

    def memory_state_size(self) -> int:
        return sum(shard.memory_state_size() for shard in self.shards)

    def counters(self) -> Dict[str, Any]:
        """The logical join's registry: shard counters aggregated.

        Keyed like the unsharded operator's registry (flow counters sum
        to the unsharded values on hash-partitionable workloads), plus
        the shard count.  Per-shard registries appear separately in the
        manifest via :meth:`manifest_operators`.
        """
        out = aggregate_counters([shard.counters() for shard in self.shards])
        out["shards"] = self.n_shards
        return out

    def stats(self) -> Dict[str, Any]:
        """Aggregated flat snapshot (numeric stats summed across shards)."""
        snapshots = []
        for shard in self.shards:
            stats = getattr(shard, "stats", None)
            snapshots.append(stats() if stats is not None else shard.counters())
        out = aggregate_counters(snapshots)
        out["shards"] = self.n_shards
        return out

    def manifest_operators(self) -> List[Any]:
        """Instrumented sub-operators for the run manifest."""
        return [self.router, *self.shards, self.merger]

    def __repr__(self) -> str:
        return (
            f"ShardedJoin(name={self.name!r}, shards={self.n_shards}, "
            f"state={self.total_state_size()})"
        )


# ---------------------------------------------------------------------------
# Stock inner-join builders
# ---------------------------------------------------------------------------


def _shard_governors(
    governor: Optional[GovernorSpec], n_shards: int
) -> List[Optional[GovernorSpec]]:
    """Per-shard governor specs (budgets summing to the global)."""
    if governor is None:
        return [None] * n_shards
    return list(governor.split(n_shards))


def sharded_pjoin(
    engine: SimulationEngine,
    cost_model: CostModel,
    left_schema: Schema,
    right_schema: Schema,
    left_field: str,
    right_field: str,
    n_shards: int,
    config: Optional[PJoinConfig] = None,
    registry: Optional[EventListenerRegistry] = None,
    name: str = "pjoin",
    governor: Optional[GovernorSpec] = None,
    skew: Optional[Any] = None,
) -> ShardedJoin:
    """A sharded PJoin: each shard runs the full six-component operator.

    A :class:`~repro.skew.manager.SkewSpec` in *skew* attaches the skew
    layer to every shard (each gets its own sketch and adaptive tables
    over its key subspace); ``skew.hot_keys`` additionally swaps the
    stock hash router for the hot-key-replicating
    :class:`~repro.skew.router.HotKeyShardRouter`.
    """
    shard_specs = iter(_shard_governors(governor, n_shards))

    def build(eng: SimulationEngine, costs: CostModel, shard_name: str) -> PJoin:
        return PJoin(
            eng, costs, left_schema, right_schema, left_field, right_field,
            config=config, registry=registry, name=shard_name,
            governor=next(shard_specs), skew=skew,
        )

    router_factory: Optional[RouterFactory] = None
    if skew is not None and skew.hot_keys:
        from repro.skew.router import HotKeyShardRouter

        def make_hot_router(
            shards: Sequence[Any],
            join_indices: Sequence[int],
            join_fields: Sequence[str],
            ledger: AlignmentLedger,
            router_name: str,
        ) -> ShardRouter:
            return HotKeyShardRouter(
                shards, join_indices, join_fields, ledger, skew,
                name=router_name,
            )

        router_factory = make_hot_router

    return ShardedJoin(
        engine, cost_model, left_schema, right_schema, left_field,
        right_field, n_shards, build, name=name,
        router_factory=router_factory,
    )


def sharded_xjoin(
    engine: SimulationEngine,
    cost_model: CostModel,
    left_schema: Schema,
    right_schema: Schema,
    left_field: str,
    right_field: str,
    n_shards: int,
    memory_threshold: Optional[int] = None,
    name: str = "xjoin",
    governor: Optional[GovernorSpec] = None,
) -> ShardedJoin:
    """A sharded XJoin comparator."""
    shard_specs = iter(_shard_governors(governor, n_shards))

    def build(eng: SimulationEngine, costs: CostModel, shard_name: str) -> XJoin:
        return XJoin(
            eng, costs, left_schema, right_schema, left_field, right_field,
            memory_threshold=memory_threshold, name=shard_name,
            governor=next(shard_specs),
        )

    return ShardedJoin(
        engine, cost_model, left_schema, right_schema, left_field,
        right_field, n_shards, build, name=name,
    )


def sharded_shj(
    engine: SimulationEngine,
    cost_model: CostModel,
    left_schema: Schema,
    right_schema: Schema,
    left_field: str,
    right_field: str,
    n_shards: int,
    name: str = "shj",
    governor: Optional[GovernorSpec] = None,
) -> ShardedJoin:
    """A sharded symmetric hash join."""
    shard_specs = iter(_shard_governors(governor, n_shards))

    def build(
        eng: SimulationEngine, costs: CostModel, shard_name: str
    ) -> SymmetricHashJoin:
        return SymmetricHashJoin(
            eng, costs, left_schema, right_schema, left_field, right_field,
            name=shard_name, governor=next(shard_specs),
        )

    return ShardedJoin(
        engine, cost_model, left_schema, right_schema, left_field,
        right_field, n_shards, build, name=name,
    )
