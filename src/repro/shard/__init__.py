"""Sharded execution subsystem: K-way partitioned punctuated joins.

One logical PJoin/XJoin/SHJ runs as K shard operators behind a
hash-partitioning :class:`~repro.shard.router.ShardRouter` and an
:class:`~repro.shard.merger.AlignedMerger` that re-unions results and
re-emits each routed punctuation exactly once, after every covering
shard has propagated it.  Two backends share the routing and alignment
code: the deterministic in-simulator backend
(:class:`~repro.shard.operator.ShardedJoin`) and the wall-clock
multiprocess backend (:mod:`repro.shard.backend`).
"""

from repro.shard.backend import (
    ShardedRunOutcome,
    ShardPlan,
    ShardWorkerPool,
    fork_available,
    run_shard_simulation,
    run_sharded_multiprocess,
    warm_pool,
)
from repro.shard.merger import AlignedMerger, AlignmentLedger
from repro.shard.operator import (
    ShardedJoin,
    aggregate_counters,
    sharded_pjoin,
    sharded_shj,
    sharded_xjoin,
)
from repro.shard.router import ShardRouter
from repro.shard.routing import narrow_punctuation, shard_cover, shard_of

__all__ = [
    "AlignedMerger",
    "AlignmentLedger",
    "ShardedJoin",
    "ShardedRunOutcome",
    "ShardPlan",
    "ShardRouter",
    "ShardWorkerPool",
    "aggregate_counters",
    "fork_available",
    "narrow_punctuation",
    "run_shard_simulation",
    "run_sharded_multiprocess",
    "shard_cover",
    "shard_of",
    "sharded_pjoin",
    "sharded_shj",
    "sharded_xjoin",
    "warm_pool",
]
