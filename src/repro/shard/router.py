"""ShardRouter: hash-partition two input streams across K shard joins.

The router sits where the logical join's two input ports used to be.
It is deliberately *not* an :class:`~repro.operators.base.Operator`:
the single-server base class owns one downstream and serialises items
through a busy/queue cycle, while routing is free (zero virtual cost)
and fans out to K downstreams.  Implementing the small push-protocol
surface directly keeps the router off the virtual clock entirely — it
adds no engine events and charges no time, which is what makes the
K=1 sharded stack byte-identical to the unsharded operator.

Routing rules (see :mod:`repro.shard.routing`):

* tuples go to ``stable_hash(join_value) % K`` — exactly one shard;
* punctuations go to every shard in their pattern's cover, each
  narrowed to that shard's members (constants one shard, enumerations
  split, ranges/wildcards broadcast);
* end-of-stream broadcasts to the matching port of every shard.

For every routed *join-exploitable* punctuation the router registers an
alignment subscription in the shared
:class:`~repro.shard.merger.AlignmentLedger`, so the merger knows how
many narrowed pieces the original promise was split into.  Punctuations
the join cannot exploit (non-wildcard patterns off the join attribute)
are still delivered — shards count them, exactly like the unsharded
operator — but propagate nowhere, so no subscription is registered.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import OperatorError
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.shard.merger import AlignmentLedger
from repro.shard.routing import narrow_punctuation, shard_cover, shard_of
from repro.tuples.item import END_OF_STREAM
from repro.tuples.tuple import Tuple


class ShardRouter:
    """Routes the two logical input ports onto K shard operators."""

    def __init__(
        self,
        shards: Sequence[Any],
        join_indices: Sequence[int],
        join_fields: Sequence[str],
        ledger: AlignmentLedger,
        name: str = "shard_router",
    ) -> None:
        if not shards:
            raise OperatorError("a shard router needs at least one shard")
        self.shards = list(shards)
        self.n_shards = len(self.shards)
        self.n_inputs = 2
        self.name = name
        self.join_indices = list(join_indices)
        self.join_fields = list(join_fields)
        self.ledger = ledger
        self._eos_seen = [False, False]
        # --- counters -----------------------------------------------------
        self.tuples_routed = 0
        self.punctuations_routed = 0
        self.punctuation_copies = 0
        self.punctuations_dropped_empty = 0
        self.per_shard_tuples = [0] * self.n_shards

    # ------------------------------------------------------------------
    # Push protocol (the surface StreamSource and tests rely on)
    # ------------------------------------------------------------------

    def push(self, item: Any, port: int = 0) -> None:
        """Route *item* from logical input *port* synchronously."""
        if not 0 <= port < self.n_inputs:
            raise OperatorError(f"{self.name} has no input port {port}")
        if item is END_OF_STREAM:
            if self._eos_seen[port]:
                raise OperatorError(
                    f"{self.name} saw end-of-stream twice on port {port}"
                )
            self._eos_seen[port] = True
            for shard in self.shards:
                shard.push(END_OF_STREAM, port)
            return
        if isinstance(item, Tuple):
            self.tuples_routed += 1
            target = shard_of(item.values[self.join_indices[port]], self.n_shards)
            self.per_shard_tuples[target] += 1
            self.shards[target].push(item, port)
            return
        if isinstance(item, Punctuation):
            self._route_punctuation(item, port)
            return
        # Anything else (control items from exotic upstreams): broadcast.
        for shard in self.shards:
            shard.push(item, port)

    def _route_punctuation(self, punct: Punctuation, port: int) -> None:
        self.punctuations_routed += 1
        join_index = self.join_indices[port]
        cover = shard_cover(punct.patterns[join_index], self.n_shards)
        if not cover:
            self.punctuations_dropped_empty += 1
            return
        if is_join_exploitable(punct, self.join_fields[port]):
            self.ledger.register(punct.patterns[join_index], cover)
        for shard, narrowed in cover:
            self.punctuation_copies += 1
            self.shards[shard].push(
                narrow_punctuation(punct, join_index, shard, narrowed), port
            )

    @property
    def finished(self) -> bool:
        return all(self._eos_seen)

    def counters(self) -> dict:
        out = {
            "tuples_routed": self.tuples_routed,
            "punctuations_routed": self.punctuations_routed,
            "punctuation_copies": self.punctuation_copies,
            "punctuations_dropped_empty": self.punctuations_dropped_empty,
        }
        for shard, count in enumerate(self.per_shard_tuples):
            out[f"tuples_to_shard{shard}"] = count
        return out

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self.n_shards}, tuples={self.tuples_routed})"


class InFlightLog:
    """Bounded replay log of the items a shard has not yet checkpointed.

    The resilient multiprocess backend keeps one log per shard worker:
    every schedule item routed to the worker stays *in flight* until a
    checkpoint acknowledgement covers it.  When the worker dies, the
    supervisor respawns it from the latest checkpoint and replays
    exactly :meth:`suffix` — the unacknowledged tail.  Acknowledged
    prefixes are trimmed eagerly, so the retained window is bounded by
    the checkpoint interval rather than the stream length.

    Positions are *absolute* indices into the shard's full per-port
    schedule; :attr:`base` reports how far each port has been trimmed,
    letting the supervisor translate a respawned worker's
    schedule-relative checkpoint positions back into absolute ones.
    """

    def __init__(self, schedule_a: Sequence[Any], schedule_b: Sequence[Any]) -> None:
        self._pending: List[List[Any]] = [list(schedule_a), list(schedule_b)]
        self._base = [0, 0]
        self.items_retired = 0
        self.acks = 0

    @property
    def base(self) -> tuple:
        """Absolute schedule positions covered by the latest ack."""
        return (self._base[0], self._base[1])

    @property
    def retained(self) -> int:
        """Number of items currently held for potential replay."""
        return len(self._pending[0]) + len(self._pending[1])

    def ack(self, abs_a: int, abs_b: int) -> None:
        """Trim every item at or before the absolute positions given."""
        for port, target in ((0, abs_a), (1, abs_b)):
            drop = target - self._base[port]
            if drop < 0:
                raise OperatorError(
                    f"in-flight log ack went backwards on port {port}: "
                    f"{target} < {self._base[port]}"
                )
            if drop > len(self._pending[port]):
                raise OperatorError(
                    f"in-flight log ack beyond schedule end on port {port}: "
                    f"{target} > {self._base[port] + len(self._pending[port])}"
                )
            if drop:
                del self._pending[port][:drop]
                self._base[port] = target
                self.items_retired += drop
        self.acks += 1

    def suffix(self) -> tuple:
        """The unacknowledged tails, as fresh lists ``(tail_a, tail_b)``."""
        return (list(self._pending[0]), list(self._pending[1]))

    def counters(self) -> dict:
        return {
            "acks": self.acks,
            "items_retired": self.items_retired,
            "items_retained": self.retained,
        }

    def __repr__(self) -> str:
        return f"InFlightLog(base={self.base}, retained={self.retained})"
