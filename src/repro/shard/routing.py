"""Pattern→shard cover computation: who owns a key, who needs a promise.

Sharding partitions the join-key space by ``stable_hash(key) % K``
(the same process-stable hash the in-operator partitioned tables use),
so every tuple has exactly one owning shard.  Punctuations are routed
by their *join-attribute pattern*:

* a :class:`~repro.punctuations.patterns.Constant` goes to the single
  shard owning its value;
* an :class:`~repro.punctuations.patterns.EnumerationList` is split —
  each shard receives the pattern *narrowed* to the members it owns
  (normalised, so a one-member slice becomes a ``Constant``);
* :class:`~repro.punctuations.patterns.Range` and
  :class:`~repro.punctuations.patterns.Wildcard` patterns broadcast to
  every shard with the original pattern.  The narrowing is implicit:
  shard *s* only ever stores tuples whose key hashes to *s*, so the
  pattern acts on that key subspace.  (Enumerating a range's members
  would require knowing the key domain is discrete; hashing cannot
  narrow a dense interval.)
* :data:`~repro.punctuations.patterns.EMPTY` covers no value and is
  routed nowhere.

Soundness invariant (the property tests pin it): a shard's narrowed
pattern never matches a value the original does not
(``narrowed ⊆ original``), and every value the original matches is
matched by the narrowed pattern of its owning shard — so no shard can
purge a tuple the unsharded operator would keep, and the union of the
per-shard promises is exactly the original promise.

``K == 1`` routes *everything* (even EMPTY and exotic patterns) to
shard 0 unchanged, which is what makes the single-shard stack
byte-identical to the unsharded operator.
"""

from __future__ import annotations

from typing import List, Tuple as PyTuple

from repro.punctuations.patterns import (
    Constant,
    EnumerationList,
    Pattern,
    Range,
    Wildcard,
    make_enumeration,
)
from repro.punctuations.punctuation import Punctuation
from repro.storage.hash_table import stable_hash

# A cover: ``[(shard, narrowed_pattern), ...]`` sorted by shard index.
Cover = List[PyTuple[int, Pattern]]


def shard_of(value: object, n_shards: int) -> int:
    """The shard owning a join value."""
    return stable_hash(value) % n_shards


def shard_cover(pattern: Pattern, n_shards: int) -> Cover:
    """Which shards must see *pattern*, and narrowed to what.

    Returns ``[(shard, narrowed_pattern), ...]`` sorted by shard index;
    an empty list means the pattern matches no value and needs no shard.
    """
    if n_shards == 1:
        return [(0, pattern)]
    if isinstance(pattern, Constant):
        return [(shard_of(pattern.value, n_shards), pattern)]
    if isinstance(pattern, EnumerationList):
        per_shard: dict = {}
        for member in pattern.values:
            per_shard.setdefault(shard_of(member, n_shards), []).append(member)
        return [
            (shard, make_enumeration(members))
            for shard, members in sorted(per_shard.items())
        ]
    if isinstance(pattern, (Range, Wildcard)):
        return [(shard, pattern) for shard in range(n_shards)]
    # EMPTY (and anything else matching no indexable value): no shard
    # needs the promise — it covers nothing and purges nothing.
    if pattern.is_empty:
        return []
    # Defensive default for unknown pattern kinds: broadcast unchanged.
    return [(shard, pattern) for shard in range(n_shards)]


def narrow_punctuation(
    punct: Punctuation, join_index: int, shard: int, narrowed: Pattern
) -> Punctuation:
    """Rebuild *punct* with its join pattern narrowed for one shard."""
    if narrowed is punct.patterns[join_index]:
        return punct
    patterns = list(punct.patterns)
    patterns[join_index] = narrowed
    return Punctuation(punct.schema, patterns, ts=punct.ts)
