"""repro — a reproduction of "Joining Punctuated Streams" (EDBT 2004).

The library implements **PJoin**, the punctuation-exploiting stream
join, together with every substrate it needs: the punctuation algebra,
a discrete-event stream-processing runtime with an explicit cost model,
simulated secondary storage, the XJoin and symmetric-hash-join
baselines, punctuation-aware downstream operators, synthetic workload
generators and the experiment harness that regenerates the paper's
figures.

Quickstart
----------
>>> from repro import (PJoin, PJoinConfig, Sink, QueryPlan,
...                    generate_workload)
>>> workload = generate_workload(n_tuples_per_stream=2000,
...                              punct_spacing_a=10, punct_spacing_b=10)
>>> plan = QueryPlan()
>>> join = PJoin(plan.engine, plan.cost_model,
...              workload.schemas[0], workload.schemas[1], "key", "key",
...              config=PJoinConfig(purge_threshold=1))
>>> sink = Sink(plan.engine, plan.cost_model)
>>> _ = join.connect(sink)
>>> _ = plan.add_source(workload.schedule_a, join, port=0)
>>> _ = plan.add_source(workload.schedule_b, join, port=1)
>>> plan.run()
>>> sink.tuple_count > 0 and join.total_state_size() < 1000
True
"""

from repro.core import (
    AdaptivePurgeController,
    NaryPJoin,
    PJoin,
    PJoinConfig,
    WindowedPJoin,
    table1_registry,
)
from repro.operators import (
    GroupBy,
    Project,
    Select,
    Sink,
    SlidingWindowJoin,
    SymmetricHashJoin,
    Union,
    XJoin,
)
from repro.punctuations import Punctuation, PunctuationStore, parse_pattern
from repro.query import QueryPlan
from repro.sim import CostModel, SimulationEngine
from repro.tuples import Field, Schema, Tuple
from repro.workloads import WorkloadSpec, generate_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "PJoin",
    "PJoinConfig",
    "NaryPJoin",
    "WindowedPJoin",
    "AdaptivePurgeController",
    "table1_registry",
    # operators
    "Sink",
    "Select",
    "Project",
    "Union",
    "GroupBy",
    "SymmetricHashJoin",
    "SlidingWindowJoin",
    "XJoin",
    # data model
    "Schema",
    "Field",
    "Tuple",
    "Punctuation",
    "PunctuationStore",
    "parse_pattern",
    # runtime
    "SimulationEngine",
    "CostModel",
    "QueryPlan",
    # workloads
    "WorkloadSpec",
    "generate_workload",
]
