"""Query-plan assembly helpers."""

from repro.query.plan import QueryPlan

__all__ = ["QueryPlan"]
