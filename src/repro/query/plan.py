"""A small helper for assembling and running continuous query plans.

A :class:`QueryPlan` owns the shared simulation engine and cost model,
keeps track of the stream sources feeding the plan, and runs everything
to completion.  Operator wiring itself stays explicit — operators are
constructed with the plan's engine/cost model and connected with
``connect`` — so plans read like the paper's Figure 1 (c).

Example
-------
>>> from repro.sim import CostModel
>>> from repro.operators import Sink
>>> from repro.core import PJoin
>>> plan = QueryPlan()
>>> join = PJoin(plan.engine, plan.cost_model, sa, sb, "key", "key")
>>> sink = Sink(plan.engine, plan.cost_model)
>>> _ = join.connect(sink)
>>> plan.add_source(schedule_a, join, port=0, name="A")
>>> plan.add_source(schedule_b, join, port=1, name="B")
>>> plan.run()
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple as PyTuple

from repro.operators.base import Operator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.streams.source import StreamSource


class QueryPlan:
    """Owns the engine, cost model and sources of one continuous query."""

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.engine = engine if engine is not None else SimulationEngine()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.sources: List[StreamSource] = []

    def add_source(
        self,
        schedule: Iterable[PyTuple[float, Any]],
        operator: Operator,
        port: int = 0,
        name: str = "",
        disorder_slack_ms: Optional[float] = None,
        batch_size: int = 1,
    ) -> StreamSource:
        """Create a source feeding *operator*'s input *port*.

        ``disorder_slack_ms`` routes the source through a re-sequencing
        disorder buffer (see :mod:`repro.resilience.disorder`);
        ``batch_size`` sets the source's schedule prefetch vector (see
        :class:`~repro.streams.source.StreamSource` — results are
        identical for every value).
        """
        source = StreamSource(
            self.engine,
            schedule,
            name=name or f"source{len(self.sources)}",
            disorder_slack_ms=disorder_slack_ms,
            batch_size=batch_size,
        )
        source.connect(operator, port)
        self.sources.append(source)
        return source

    def nary_join(
        self,
        schemas: Sequence[Any],
        join_fields: Sequence[str],
        config: Optional[Any] = None,
        planner: Optional[Any] = None,
        name: str = "nary-pjoin",
    ) -> Operator:
        """Build an n-ary PJoin on this plan's engine and cost model.

        ``planner`` is a :class:`~repro.planner.spec.PlannerSpec`
        controlling the probe order (static or adaptive); ``None``
        keeps the unplanned stream-order operator.
        """
        from repro.core.nary import NaryPJoin

        return NaryPJoin(
            self.engine,
            self.cost_model,
            schemas,
            join_fields,
            config=config,
            planner=planner,
            name=name,
        )

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Start every source and drain the simulation."""
        for source in self.sources:
            source.start()
        self.engine.run(until=until, max_events=max_events)

    def __repr__(self) -> str:
        return f"QueryPlan(sources={len(self.sources)}, now={self.engine.now:g})"
