"""The incrementally-maintained punctuation index (paper Section 3.5).

The index arranges state data by punctuations so propagation never
re-evaluates a (tuple, punctuation) pair:

* every stored punctuation has a ``pid`` (its store id) and a **count**
  of matching tuples currently residing in the same state (Figure 2 (a));
* every state tuple carries the ``pid`` of the *first-arrived*
  punctuation it matches, or ``None`` (Figure 2 (b));
* an index-build run evaluates only tuples whose ``pid`` is ``None``
  against only punctuations not yet used for indexing — which is
  correct because a valid punctuated stream never delivers a tuple
  matching an *earlier* punctuation, so older punctuations can never
  match newer tuples;
* purging a tuple decrements its punctuation's count; when a count
  reaches zero, Theorem 1 says the punctuation is safe to propagate.

One :class:`PunctuationIndex` exists per input stream; it indexes that
stream's own state against that stream's own punctuations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple as PyTuple

from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore
from repro.storage.partition import StateEntry


class IndexBuildResult:
    """Statistics of one index-build run (feeds the cost model)."""

    __slots__ = ("scanned", "unindexed", "fresh_punctuations", "newly_indexed")

    def __init__(
        self, scanned: int, unindexed: int, fresh_punctuations: int, newly_indexed: int
    ) -> None:
        self.scanned = scanned
        self.unindexed = unindexed
        self.fresh_punctuations = fresh_punctuations
        self.newly_indexed = newly_indexed


class PunctuationIndex:
    """Counts of state-resident matches per punctuation, per side."""

    def __init__(self, store: PunctuationStore) -> None:
        self.store = store
        self._counts: Dict[int, int] = {}
        # pids the index builder has processed (``p.indexed`` in the
        # paper's Figure 3); only these have meaningful counts.
        self._indexed_pids: Set[int] = set()
        self._cursor = 0
        self.build_runs = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(self, entries: Iterable[StateEntry]) -> IndexBuildResult:
        """One run of the paper's Index-Build procedure.

        *entries* is the full state of the same stream (memory + disk +
        purge buffer).  Tuples whose ``pid`` is ``None`` are evaluated
        against punctuations added to the store since the last run; the
        first-arrived match wins, as the paper specifies.
        """
        fresh = self.store.since(self._cursor)
        self._cursor = self.store.next_id
        scanned = 0
        unindexed = 0
        newly_indexed = 0
        if fresh:
            for pid, _punct in fresh:
                self._counts.setdefault(pid, 0)
                self._indexed_pids.add(pid)
            for entry in entries:
                scanned += 1
                if entry.pid is not None:
                    continue
                unindexed += 1
                for pid, punct in fresh:
                    if punct.patterns[self.store.join_index].matches(
                        entry.join_value
                    ):
                        entry.pid = pid
                        self._counts[pid] += 1
                        newly_indexed += 1
                        break
        else:
            for entry in entries:
                scanned += 1
                if entry.pid is None:
                    unindexed += 1
        self.build_runs += 1
        return IndexBuildResult(scanned, unindexed, len(fresh), newly_indexed)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def on_entry_discarded(self, entry: StateEntry) -> None:
        """Deduct the count of the punctuation the purged tuple carried."""
        if entry.pid is None:
            return
        count = self._counts.get(entry.pid)
        if count is not None:
            self._counts[entry.pid] = count - 1

    # ------------------------------------------------------------------
    # Propagation support
    # ------------------------------------------------------------------

    def count_of(self, pid: int) -> int:
        """Current count of the punctuation with the given pid."""
        return self._counts.get(pid, 0)

    def is_indexed(self, pid: int) -> bool:
        return pid in self._indexed_pids

    def propagable(self) -> List[PyTuple[int, Punctuation]]:
        """Live punctuations with an indexed count of zero, arrival order.

        By Theorem 1, a punctuation with no matching tuple left in the
        state can be released: no future result tuple can match it.
        """
        result = []
        for pid, punct in self.store.items():
            if pid in self._indexed_pids and self._counts.get(pid, 0) == 0:
                result.append((pid, punct))
        return result

    def on_punctuation_removed(self, pid: int) -> None:
        """Forget a punctuation once it has been propagated."""
        self._counts.pop(pid, None)
        self._indexed_pids.discard(pid)

    @property
    def pending_unindexed_punctuations(self) -> int:
        """Punctuations added to the store since the last build run."""
        return max(0, self.store.next_id - self._cursor)

    def __repr__(self) -> str:
        return (
            f"PunctuationIndex(indexed={len(self._indexed_pids)}, "
            f"builds={self.build_runs})"
        )
