"""The n-ary PJoin extension (paper Section 6).

Joins *n* punctuated streams on one shared join attribute.  Per the
paper's sketch:

* **memory join**: a new tuple from stream *i* probes the states of all
  other streams; a result is the concatenation of one matching tuple
  from every stream (cross product of the per-stream matches);
* **state purge**: a state tuple is purged once the punctuation sets of
  *all* other streams cover its join value — then no future tuple from
  any other stream can complete a new result with it.  (This is the
  sound generalisation of the binary rule; purging on a single other
  stream's punctuation would be premature when a third stream can still
  deliver partners.)
* **on-the-fly drop**: an arriving tuple already covered by all other
  streams' punctuation sets joins the current states and is dropped;
* **index building and propagation** per input stream are unchanged;
  a propagated punctuation constrains every join column of the output.

This extension keeps all states memory-resident (no relocation / disk
join); the binary operator remains the fully-featured one.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple as PyTuple

from repro.core.config import INDEX_EAGER, PROPAGATE_OFF, PJoinConfig
from repro.core.monitor import Monitor
from repro.core.propagation import run_propagation
from repro.core.state import JoinStateSide
from repro.errors import ConfigError, OperatorError
from repro.memory.budget import GovernorSpec
from repro.operators.base import Operator
from repro.planner.spec import PlannerSpec, validate_order
from repro.punctuations.punctuation import Punctuation
from repro.resilience.policy import STRICT
from repro.resilience.validator import ContractValidator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.storage.hash_table import stable_hash
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class NaryPJoin(Operator):
    """Punctuation-exploiting n-ary hash equi-join on one attribute."""

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        schemas: Sequence[Schema],
        join_fields: Sequence[str],
        config: Optional[PJoinConfig] = None,
        name: str = "nary-pjoin",
        governor: Optional[GovernorSpec] = None,
        planner: Optional[PlannerSpec] = None,
    ) -> None:
        if len(schemas) < 2:
            raise OperatorError("NaryPJoin needs at least two input streams")
        if len(schemas) != len(join_fields):
            raise OperatorError("need exactly one join field per input schema")
        super().__init__(engine, cost_model, n_inputs=len(schemas), name=name)
        self.config = config if config is not None else PJoinConfig()
        if self.config.memory_threshold is not None:
            raise ConfigError(
                "NaryPJoin keeps its states memory-resident; "
                "set memory_threshold=None"
            )
        if self.config.propagation_mode not in (PROPAGATE_OFF, "push_count"):
            raise ConfigError(
                "NaryPJoin supports propagation modes 'off' and "
                f"'push_count', got {self.config.propagation_mode!r}"
            )
        self.schemas = list(schemas)
        self.join_fields = list(join_fields)
        self.join_indices = [
            schema.index_of(field) for schema, field in zip(schemas, join_fields)
        ]
        self.out_schema = self._build_out_schema()
        self.sides = [
            JoinStateSide(
                schema, field, self.config.n_partitions, side_name=f"input{i}"
            )
            for i, (schema, field) in enumerate(zip(schemas, join_fields))
        ]
        self.validator = ContractValidator.for_sides(
            engine, name, self.config.fault_policy, self.sides
        )
        self.dead_letters = self.validator.dead_letters
        self.monitor = Monitor(self.config)
        self.governor = None
        if governor is not None:
            # No relocation disk here; the governor builds a private one.
            self.governor = governor.build(
                cost_model, engine=engine, name=f"{name}.governor"
            )
            for side in range(self.n_inputs):
                self.governor.register_side(
                    side, self.sides[side].table,
                    covered_by=self._covered_by_others(side),
                )
        self._out_join_indices = self._compute_out_join_indices()
        self.results_produced = 0
        self.tuples_dropped_on_fly = 0
        self.tuples_purged = 0
        self.purge_runs = 0
        self.punctuations_propagated = 0
        # Per-side observability (feeds repro.planner.stats and the
        # manifests): arrivals/probes/hits/matches/occupancy are indexed
        # by side; probes count probes *into* that side.
        n = self.n_inputs
        self.side_tuples_in = [0] * n
        self.side_probe_count = [0] * n
        self.side_probe_hits = [0] * n
        self.side_match_count = [0] * n
        self.side_probe_occupancy = [0] * n
        self.side_punct_count = [0] * n
        self.side_first_punct_ms: List[Optional[float]] = [None] * n
        self.side_last_punct_ms = [0.0] * n
        self.last_purge_ms = 0.0
        # Plan state: a global stream priority order.  The containers
        # are mutated in place by set_plan so the fast-path closure's
        # captured references stay live across static rebuilds.
        self.planner_spec = planner
        self.probe_orders: List[PyTuple[int, ...]] = [()] * n
        self._probe_pos: List[dict] = [{} for _ in range(n)]
        self.purge_order: PyTuple[int, ...] = tuple(range(n))
        self._stream_order: PyTuple[int, ...] = tuple(range(n))
        initial = tuple(range(n))
        if planner is not None and planner.initial_order is not None:
            initial = planner.initial_order
        self.set_plan(initial)
        self.reoptimizer = None
        if planner is not None and planner.adaptive:
            from repro.planner.reopt import Reoptimizer

            self.reoptimizer = Reoptimizer(self, planner)
        self._build_fast_path()

    # ------------------------------------------------------------------
    # Plan installation (repro.planner)
    # ------------------------------------------------------------------

    @property
    def stream_order(self) -> PyTuple[int, ...]:
        """The current global stream priority order."""
        return self._stream_order

    def set_plan(self, order: Sequence[int]) -> None:
        """Install a global priority order as probe and purge order.

        An **exact state handoff**: only visitation orders change — the
        side hash tables, punctuation stores and indexes are untouched,
        so swapping plans mid-run can never alter the result multiset
        or the state trajectory (probe and purge outcomes are
        order-independent; only the virtual probe cost shifts).
        """
        order = validate_order(order, self.n_inputs)
        self._stream_order = order
        self.purge_order = order
        for side in range(self.n_inputs):
            probe = tuple(o for o in order if o != side)
            self.probe_orders[side] = probe
            self._probe_pos[side] = {
                stream: pos for pos, stream in enumerate(probe)
            }

    # ------------------------------------------------------------------
    # Fast-path specialization (see repro.operators.fastpath)
    # ------------------------------------------------------------------

    def _build_fast_path(self) -> None:
        """Install a specialized ``handle`` when every hot layer is off.

        Conditions: strict (default) fault policy — the contract check
        collapses to one direct ``covers`` call per tuple, with the full
        validator invoked only on an actual violation so strict raising
        semantics stay byte-identical — no governor attached, and no
        tracer on the engine at build time.
        """
        from repro.operators import fastpath

        if not fastpath.fastpath_enabled():
            return
        cls = type(self)
        if cls.handle is not NaryPJoin.handle or (
            cls._handle_tuple is not NaryPJoin._handle_tuple
        ):
            return  # a subclass extends the hot path: keep it layered
        if self.validator.policy != STRICT:
            return
        if self.governor is not None:
            return
        if self.reoptimizer is not None:
            return  # adaptive planning re-enters the operator mid-run
        if getattr(self.engine, "tracer", None) is not None:
            return
        sides = self.sides
        join_indices = self.join_indices
        n_inputs = self.n_inputs
        cost_model = self.cost_model
        tuple_overhead = cost_model.tuple_overhead
        drop_check = cost_model.drop_check
        insert_cost = cost_model.insert
        on_the_fly_drop = self.config.on_the_fly_drop
        engine = self.engine
        probe_orders = self.probe_orders  # mutated in place by set_plan
        side_tuples_in = self.side_tuples_in
        side_probe_count = self.side_probe_count
        side_probe_hits = self.side_probe_hits
        side_match_count = self.side_match_count
        side_probe_occupancy = self.side_probe_occupancy

        def fast_tuple(tup: Tuple, side: int) -> float:
            mine = sides[side]
            value = tup.values[join_indices[side]]
            cost = tuple_overhead
            if mine.covers(value):
                self.validator.admit(tup, value, side)
                return cost  # pragma: no cover - strict admit raises
            side_tuples_in[side] += 1
            value_hash = stable_hash(value)
            match_lists: List[List[Tuple]] = []
            complete = True
            for other in probe_orders[side]:
                occupancy, matches = sides[other].probe(value, value_hash)
                side_probe_count[other] += 1
                side_probe_occupancy[other] += occupancy
                cost += cost_model.probe_cost(occupancy, len(matches))
                if not matches:
                    complete = False
                    break
                side_probe_hits[other] += 1
                side_match_count[other] += len(matches)
                match_lists.append([entry.tup for entry in matches])
            if complete:
                cost += self._emit_combinations(tup, side, match_lists)
            dropped = False
            if on_the_fly_drop:
                cost += drop_check
                if all(
                    sides[other].covers(value)
                    for other in range(n_inputs)
                    if other != side
                ):
                    dropped = True
                    self.tuples_dropped_on_fly += 1
            if not dropped:
                mine.insert(tup, value, engine.now, value_hash)
                cost += insert_cost
            return cost

        def handle(item: Any, port: int) -> float:
            if isinstance(item, Tuple):
                return fast_tuple(item, port)
            if isinstance(item, Punctuation):
                return self._handle_punctuation(item, port)
            return 0.0

        self.handle = fastpath.mark(handle)  # type: ignore[method-assign]

    def __getstate__(self) -> dict:
        from repro.operators import fastpath

        return fastpath.strip_for_pickle(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_fast_path()

    @property
    def punctuation_violations(self) -> int:
        """Contract violations seen (counter-compatible alias)."""
        return self.validator.violations

    def _covered_by_others(self, side: int):
        """The n-ary purge probe: all *other* streams' punctuations cover.

        Drives the punctuation-aware eviction policy with the same rule
        :meth:`_purge_all` applies, so the policy prefers exactly the
        tuples the next purge run would reclaim.
        """
        stores = [
            self.sides[s].store for s in range(self.n_inputs) if s != side
        ]

        def covered(value: Any) -> bool:
            return all(store.covers_value(value) for store in stores)

        return covered

    def _build_out_schema(self) -> Schema:
        out = self.schemas[0]
        for schema in self.schemas[1:]:
            out = out.concat(schema)
        return Schema(out.fields, name=self.name + ".out")

    def _compute_out_join_indices(self) -> List[int]:
        """Propagation constrains the first stream's join column only.

        One constrained column keeps the punctuation exploitable by a
        downstream group-by (see the binary operator for the rationale);
        all join columns carry equal values in every result anyway.
        """
        return [self.join_indices[0]]

    # ------------------------------------------------------------------
    # Item handling
    # ------------------------------------------------------------------

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item, port)
        if isinstance(item, Tuple):
            return self._handle_tuple(item, port)
        return 0.0

    def _handle_tuple(self, tup: Tuple, side: int) -> float:
        value = tup.values[self.join_indices[side]]
        cost = self.cost_model.tuple_overhead
        if not self.validator.admit(tup, value, side):
            return cost  # quarantined: must not probe or enter the state
        self.side_tuples_in[side] += 1
        value_hash = stable_hash(value)
        governor = self.governor
        # Probe every other state in plan order; a result needs a match
        # from each, so the first empty probe ends the pipeline.
        match_lists: List[List[Tuple]] = []
        complete = True
        for other in self.probe_orders[side]:
            if governor is not None:
                cost += governor.fault_in(other, value, value_hash)
            occupancy, matches = self.sides[other].probe(value, value_hash)
            self.side_probe_count[other] += 1
            self.side_probe_occupancy[other] += occupancy
            cost += self.cost_model.probe_cost(occupancy, len(matches))
            if not matches:
                complete = False
                break
            self.side_probe_hits[other] += 1
            self.side_match_count[other] += len(matches)
            match_lists.append([entry.tup for entry in matches])
        if complete:
            cost += self._emit_combinations(tup, side, match_lists)
        # On-the-fly drop: covered by all other streams' punctuations.
        dropped = False
        if self.config.on_the_fly_drop:
            cost += self.cost_model.drop_check
            if all(
                self.sides[other].covers(value)
                for other in range(self.n_inputs)
                if other != side
            ):
                dropped = True
                self.tuples_dropped_on_fly += 1
        if not dropped:
            self.sides[side].insert(tup, value, self.engine.now, value_hash)
            cost += self.cost_model.insert
            if governor is not None:
                cost += governor.after_insert(side, value, value_hash)
        return cost

    def _emit_combinations(
        self, tup: Tuple, side: int, match_lists: List[List[Tuple]]
    ) -> float:
        """Emit the cross product of per-stream matches with *tup*.

        *match_lists* holds matches for the other streams in this
        side's **probe order**; the result column order is always
        stream order with *tup* slotted into its own position, so the
        output is identical under every plan.
        """
        combos: List[PyTuple[Tuple, ...]] = [()]
        for matches in match_lists:
            combos = [combo + (m,) for combo in combos for m in matches]
        emitted = 0
        pos = self._probe_pos[side]
        for combo in combos:
            values: PyTuple[Any, ...] = ()
            for stream in range(self.n_inputs):
                source = tup if stream == side else combo[pos[stream]]
                values = values + source.values
            self.emit(
                Tuple(self.out_schema, values, ts=self.engine.now, validate=False)
            )
            emitted += 1
        self.results_produced += emitted
        return self.cost_model.emit_result * emitted

    def _handle_punctuation(self, punct: Punctuation, side: int) -> float:
        cost = self.cost_model.punct_overhead
        pid = self.sides[side].add_punctuation(punct)
        if pid is not None:
            now = self.engine.now
            self.side_punct_count[side] += 1
            if self.side_first_punct_ms[side] is None:
                self.side_first_punct_ms[side] = now
            self.side_last_punct_ms[side] = now
            if self.config.index_building == INDEX_EAGER:
                cost += self._index_build()
        for event in self.monitor.on_punctuation(paired=False):
            if event.event_name == "PurgeThresholdReachEvent":
                cost += self._purge_all()
                if self.reoptimizer is not None:
                    # Purge-complete cover boundary: the safe (and
                    # punctuation-aligned) moment to re-plan.
                    cost += self.reoptimizer.on_cover_boundary()
            elif event.event_name == "PropagateCountReachEvent":
                cost += self._index_build()
                cost += self._propagate()
        return cost

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------

    def _purge_all(self) -> float:
        """Purge every state: all-other-streams-covered rule.

        Scans the sides in plan order; the removal set is the same
        under every order (coverage depends only on punctuation
        stores), so the plan shifts purge timing costs, never results.
        """
        scanned = 0
        removed_total = 0
        for side in self.purge_order:
            others = [s for s in range(self.n_inputs) if s != side]
            if any(len(self.sides[s].store) == 0 for s in others):
                scanned += self.sides[side].memory_size
                continue
            scanned += self.sides[side].memory_size

            def covered_by_all(entry) -> bool:
                return all(
                    self.sides[s].covers(entry.join_value) for s in others
                )

            removed = self.sides[side].table.remove_where(covered_by_all)
            for entry in removed:
                self.sides[side].discard_entry(entry)
            removed_total += len(removed)
        self.purge_runs += 1
        self.tuples_purged += removed_total
        self.last_purge_ms = self.engine.now
        return self.cost_model.purge_cost(scanned)

    def _index_build(self) -> float:
        cost = 0.0
        for side in self.sides:
            if side.index.pending_unindexed_punctuations == 0:
                continue
            result = side.index.build(side.iter_all_entries())
            cost += self.cost_model.index_build_cost(
                result.scanned, result.unindexed, result.fresh_punctuations
            )
        return cost

    def _propagate(self) -> float:
        result = run_propagation(
            self.sides, self.out_schema, self._out_join_indices, self.engine.now
        )
        for punct in result.emitted:
            self.emit(punct)
        self.punctuations_propagated += result.propagated
        return self.cost_model.propagation_cost(result.checked)

    def on_finish(self) -> float:
        if self.config.propagation_mode != PROPAGATE_OFF:
            return self._index_build() + self._propagate()
        return 0.0

    # ------------------------------------------------------------------
    # Checkpointing (repro.checkpoint)
    # ------------------------------------------------------------------

    _NARY_COUNTERS = (
        "results_produced",
        "tuples_dropped_on_fly",
        "tuples_purged",
        "purge_runs",
        "punctuations_propagated",
        "last_purge_ms",
    )

    _SIDE_COUNTER_ATTRS = (
        "side_tuples_in",
        "side_probe_count",
        "side_probe_hits",
        "side_match_count",
        "side_probe_occupancy",
        "side_punct_count",
        "side_first_punct_ms",
        "side_last_punct_ms",
    )

    def snapshot_state(self) -> dict:
        """Recoverable state: every side plus the flat counters."""
        from repro.checkpoint import snapshot as snaplib

        return {
            "version": snaplib.SNAPSHOT_VERSION,
            "kind": "nary-pjoin",
            "sides": [snaplib.snapshot_side(side) for side in self.sides],
            "monitor": snaplib.snapshot_attrs(self.monitor, snaplib.MONITOR_FIELDS),
            "validator": snaplib.snapshot_validator(self.validator),
            "counters": snaplib.snapshot_attrs(
                self, self._NARY_COUNTERS + snaplib.BASE_OPERATOR_COUNTERS
            ),
            "side_counters": {
                attr: list(getattr(self, attr))
                for attr in self._SIDE_COUNTER_ATTRS
            },
            "plan": {"stream_order": list(self._stream_order)},
        }

    def restore_state(self, snap: dict) -> None:
        from repro.checkpoint import snapshot as snaplib

        for side, side_snap in zip(self.sides, snap["sides"]):
            snaplib.restore_side_into(side, side_snap)
        snaplib.restore_attrs(self.monitor, snap["monitor"])
        snaplib.restore_validator_into(self.validator, snap["validator"])
        snaplib.restore_attrs(self, snap["counters"])
        for attr, values in snap.get("side_counters", {}).items():
            setattr(self, attr, list(values))
        plan = snap.get("plan")
        if plan is not None:
            self.set_plan(plan["stream_order"])

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def state_size(self, side: int) -> int:
        return self.sides[side].total_size

    def total_state_size(self) -> int:
        return sum(side.total_size for side in self.sides)

    def _punct_cadence_ms(self, side: int) -> float:
        """Mean virtual ms between exploitable punctuations on a side."""
        count = self.side_punct_count[side]
        first = self.side_first_punct_ms[side]
        if count < 2 or first is None:
            return 0.0
        return (self.side_last_punct_ms[side] - first) / (count - 1)

    def counters(self) -> dict:
        """Uniform counter registry (see :mod:`repro.obs.counters`)."""
        out = super().counters()
        out.update(
            results_produced=self.results_produced,
            tuples_dropped_on_fly=self.tuples_dropped_on_fly,
            tuples_purged=self.tuples_purged,
            purge_runs=self.purge_runs,
            punctuations_propagated=self.punctuations_propagated,
            punctuation_violations=self.punctuation_violations,
        )
        for i, side in enumerate(self.sides):
            prefix = f"side.{side.side_name}"
            out[f"{prefix}.state_size"] = side.total_size
            out[f"{prefix}.tuples_in"] = self.side_tuples_in[i]
            out[f"{prefix}.probe_count"] = self.side_probe_count[i]
            out[f"{prefix}.probe_hits"] = self.side_probe_hits[i]
            out[f"{prefix}.match_count"] = self.side_match_count[i]
            out[f"{prefix}.probe_occupancy"] = self.side_probe_occupancy[i]
            out[f"{prefix}.punct_count"] = self.side_punct_count[i]
            out[f"{prefix}.punct_cadence_ms"] = self._punct_cadence_ms(i)
        if self.reoptimizer is not None:
            for key, value in self.reoptimizer.counters().items():
                out[f"planner.{key}"] = value
        # Non-default policies only: default manifests stay unchanged.
        if self.validator.policy != STRICT:
            for key, value in self.validator.counters().items():
                out[f"resilience.{key}"] = value
        if self.governor is not None:
            for key, value in self.governor.counters().items():
                out[f"governor.{key}"] = value
        return out
