"""The state-purge component (paper Section 3.4).

Applies the purge rules (1): a tuple in stream A's state is removed
once the punctuation set of stream B covers it, and vice versa.  The
*strategy* — eager (run on every punctuation) versus lazy (run when the
purge threshold is reached) — is decided by the monitor; this module
implements one purge *run*.

A purge run scans the memory portion of a state (the virtual cost model
charges for that scan, which is exactly the overhead the paper trades
against probing savings).  A covered tuple is discarded outright unless
the opposite stream's same hash bucket has a disk-resident portion that
the tuple has not yet joined with; then it moves to the purge buffer,
to be finally discarded by the disk-join component.

Disk-resident tuples are purged by the disk join itself (reading them
just to throw them away would waste I/O).
"""

from __future__ import annotations

from typing import Any

from repro.core.state import JoinStateSide


class PurgeResult:
    """Statistics of one purge run over one side."""

    __slots__ = ("scanned", "discarded", "buffered")

    def __init__(self, scanned: int = 0, discarded: int = 0, buffered: int = 0) -> None:
        self.scanned = scanned
        self.discarded = discarded
        self.buffered = buffered

    @property
    def removed(self) -> int:
        return self.discarded + self.buffered

    def __iadd__(self, other: "PurgeResult") -> "PurgeResult":
        self.scanned += other.scanned
        self.discarded += other.discarded
        self.buffered += other.buffered
        return self

    def __repr__(self) -> str:
        return (
            f"PurgeResult(scanned={self.scanned}, discarded={self.discarded}, "
            f"buffered={self.buffered})"
        )


def purge_side(
    victim: JoinStateSide,
    opposite: JoinStateSide,
    now: float,
) -> PurgeResult:
    """Purge *victim*'s memory portion using *opposite*'s punctuations.

    Applying the full punctuation set (rather than only punctuations
    newer than the last run) keeps the run correct even when on-the-fly
    dropping is disabled and already-covered tuples were allowed into
    the state (the A4 ablation).
    """
    scanned = victim.memory_size
    if scanned == 0 or len(opposite.store) == 0:
        return PurgeResult(scanned=scanned)
    covers = opposite.store.covers_value
    # The punctuation store does not change during one run, so the
    # coverage verdict is memoized per distinct join value — states
    # hold many tuples per value, and the per-entry pattern-match is
    # the purge scan's hot spot.  (The virtual cost model still charges
    # for the full scan; this only cuts wall time.)
    verdicts: dict = {}

    def is_covered(entry: Any) -> bool:
        value = entry.join_value
        try:
            verdict = verdicts.get(value)
        except TypeError:  # unhashable join value: no memoization
            return covers(value)
        if verdict is None:
            verdict = verdicts[value] = covers(value)
        return verdict

    removed = victim.table.remove_where(is_covered)
    discarded = 0
    buffered = 0
    for entry in removed:
        opposite_partition = opposite.table.partition_for(
            entry.join_value, entry.join_hash
        )
        if opposite_partition.disk_count > 0:
            victim.buffer_entry(entry, now)
            buffered += 1
        else:
            victim.discard_entry(entry)
            discarded += 1
    return PurgeResult(scanned=scanned, discarded=discarded, buffered=buffered)
