"""PJoin's per-stream join state (paper Section 3.1).

Each input stream owns one :class:`JoinStateSide` holding the four
structures the paper describes:

* a **hash table** of arrived-but-unpurged tuples, each bucket with a
  memory portion and a disk portion
  (:class:`~repro.storage.hash_table.PartitionedHashTable`);
* a **purge buffer** of tuples that the purge rules say should go, but
  that may still owe left-over joins to disk-resident tuples of the
  opposite stream — it is emptied by the disk-join component;
* a **punctuation set** of this stream's punctuations that have arrived
  but not yet been propagated (:class:`~repro.punctuations.store.PunctuationStore`);
* the **punctuation index** over this state
  (:class:`~repro.core.index.PunctuationIndex`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple as PyTuple

from repro.core.index import PunctuationIndex
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import PunctuationStore, is_join_exploitable
from repro.storage.hash_table import PartitionedHashTable
from repro.storage.partition import StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple


class JoinStateSide:
    """All state PJoin keeps for one input stream."""

    def __init__(
        self,
        schema: Schema,
        join_field: str,
        n_partitions: int,
        side_name: str = "",
        table_factory: Optional[Callable[[], PartitionedHashTable]] = None,
    ) -> None:
        self.schema = schema
        self.join_field = join_field
        self.side_name = side_name
        # The skew layer passes a factory building its AdaptiveTable;
        # the default is the stock fixed-layout table.
        self.table = (
            table_factory() if table_factory is not None
            else PartitionedHashTable(n_partitions)
        )
        self.purge_buffer: List[StateEntry] = []
        self.store = PunctuationStore(schema, join_field)
        self.index = PunctuationIndex(self.store)
        # Punctuations that constrain non-join attributes cannot drive
        # purging; they are counted, not exploited.
        self.unexploitable_punctuations = 0
        self.duplicate_punctuations = 0
        self.tuples_inserted = 0
        self.tuples_discarded = 0
        self.tuples_buffered = 0

    # ------------------------------------------------------------------
    # Tuples
    # ------------------------------------------------------------------

    def insert(
        self,
        tup: Tuple,
        join_value: Any,
        now: float,
        hash_value: Optional[int] = None,
    ) -> StateEntry:
        """Add an arriving tuple to the hash table's memory portion."""
        self.tuples_inserted += 1
        return self.table.insert(tup, join_value, now, hash_value)

    def probe(
        self, join_value: Any, hash_value: Optional[int] = None
    ) -> PyTuple[int, List[StateEntry]]:
        """Probe the memory portion; see ``PartitionedHashTable.probe``."""
        return self.table.probe(join_value, hash_value)

    # ------------------------------------------------------------------
    # Punctuations
    # ------------------------------------------------------------------

    def add_punctuation(self, punct: Punctuation) -> Optional[int]:
        """Store an arriving punctuation; return its pid.

        Returns ``None`` when the punctuation is not exploitable (it
        constrains non-join attributes) or duplicates a stored one (an
        equal join pattern is already live) — both are tallied.
        """
        if not is_join_exploitable(punct, self.join_field):
            self.unexploitable_punctuations += 1
            return None
        join_pattern = punct.patterns[self.store.join_index]
        if self.store.has_equal_join_pattern(join_pattern):
            self.duplicate_punctuations += 1
            return None
        return self.store.add(punct)

    def covers(self, join_value: Any) -> bool:
        """``setMatch``: do this stream's punctuations cover the value?"""
        return self.store.covers_value(join_value)

    def retract_covering(self, join_value: Any) -> int:
        """Withdraw every stored punctuation covering *join_value*.

        The ``repair`` fault policy calls this when a tuple arrives in
        violation of an earlier punctuation: the promise was false, so
        it is removed from the punctuation set *and* the punctuation
        index.  Entries already tagged with a retracted pid are untagged
        (their ``pid`` reset to ``None``) so a later, equal punctuation
        re-counts them from scratch instead of inheriting stale counts.
        Returns the number of punctuations retracted.
        """
        doomed = self.store.covering_pids(join_value)
        if not doomed:
            return 0
        for pid in doomed:
            self.store.remove(pid)
            self.index.on_punctuation_removed(pid)
        doomed_set = set(doomed)
        for entry in self.iter_all_entries():
            if entry.pid in doomed_set:
                entry.pid = None
        return len(doomed)

    # ------------------------------------------------------------------
    # Purge bookkeeping
    # ------------------------------------------------------------------

    def discard_entry(self, entry: StateEntry) -> None:
        """Drop a purged entry for good, maintaining the index count."""
        self.index.on_entry_discarded(entry)
        self.tuples_discarded += 1

    def buffer_entry(self, entry: StateEntry, now: float) -> None:
        """Move a purged entry to the purge buffer (disk joins pending).

        Stamping ``dts`` closes the entry's memory-residency interval so
        the timestamp duplicate-prevention rules keep working when the
        disk join finally pairs it with disk-resident tuples.
        """
        entry.dts = now
        self.purge_buffer.append(entry)
        self.tuples_buffered += 1

    def clear_purge_buffer(self) -> int:
        """Discard every purge-buffer entry (left-over joins are done)."""
        cleared = len(self.purge_buffer)
        for entry in self.purge_buffer:
            self.discard_entry(entry)
        self.purge_buffer.clear()
        return cleared

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_all_entries(self) -> Iterator[StateEntry]:
        """Every entry this side is responsible for.

        Includes the purge buffer: a punctuation whose matches sit in
        the purge buffer must not be propagated yet, so the index counts
        them until :meth:`clear_purge_buffer` discards them.
        """
        yield from self.table.iter_all()
        yield from self.purge_buffer

    @property
    def memory_size(self) -> int:
        return self.table.memory_count

    @property
    def disk_size(self) -> int:
        return self.table.disk_count

    @property
    def total_size(self) -> int:
        """All tuples held for this stream (memory + disk + purge buffer)."""
        return self.table.total_count + len(self.purge_buffer)

    @property
    def punctuation_count(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return (
            f"JoinStateSide({self.side_name!r}, mem={self.memory_size}, "
            f"disk={self.disk_size}, buffered={len(self.purge_buffer)}, "
            f"punctuations={self.punctuation_count})"
        )
