"""The punctuation-propagation component (paper Section 3.5).

A propagation run walks each input stream's punctuation set and emits
every punctuation that is *propagable* — indexed, with an index count
of zero, meaning no tuple matching it remains anywhere in that side's
state (memory, disk or purge buffer).  By Theorem 1 such a punctuation
can be released: no result tuple matching it will ever be generated
again.  Propagated punctuations are removed from the set immediately,
as the paper's Propagate procedure does (Figure 3, lines 16–21).

The emitted punctuation is expressed over the join's **output schema**:
a punctuation on the join attribute of either input constrains the
output's join column(s) named in ``out_join_indices`` (wildcards
elsewhere).  The join passes a single column — constraining one join
column is sound, because a result carrying the punctuated value needs a
partner from *both* inputs, and it keeps the punctuation exploitable by
a downstream group-by on the join attribute (which requires every
non-group pattern to be a wildcard).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple as PyTuple

from repro.core.state import JoinStateSide
from repro.punctuations.patterns import WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.tuples.schema import Schema


class PropagationResult:
    """Statistics and output of one propagation run."""

    __slots__ = ("checked", "emitted", "latency_total_ms")

    def __init__(self) -> None:
        self.checked = 0
        self.emitted: List[Punctuation] = []
        # Sum over emitted punctuations of (release time - arrival time):
        # the paper's propagation-delay metric (Figure 14), aggregated.
        self.latency_total_ms = 0.0

    @property
    def propagated(self) -> int:
        return len(self.emitted)

    def __repr__(self) -> str:
        return f"PropagationResult(checked={self.checked}, emitted={self.propagated})"


def run_propagation(
    sides: Sequence[JoinStateSide],
    out_schema: Schema,
    out_join_indices: Sequence[int],
    now: float,
) -> PropagationResult:
    """Emit every propagable punctuation of every side.

    Parameters
    ----------
    sides:
        The join's per-stream states (two for the binary join, *n* for
        the n-ary extension).
    out_schema:
        The join's output schema.
    out_join_indices:
        Positions of the join columns inside *out_schema* (one per input
        stream); the propagated pattern is applied to all of them.
    now:
        Virtual time, stamped on the emitted punctuations.
    """
    result = PropagationResult()
    ready: List[PyTuple[float, int, int, Punctuation]] = []
    for side_number, side in enumerate(sides):
        result.checked += len(side.store)
        for pid, punct in side.index.propagable():
            ready.append((punct.ts, side_number, pid, punct))
    # Steady, deterministic output order: by original arrival time.
    ready.sort(key=lambda item: (item[0], item[1], item[2]))
    for arrival_ts, side_number, pid, punct in ready:
        result.latency_total_ms += max(0.0, now - arrival_ts)
        side = sides[side_number]
        join_pattern = punct.patterns[side.store.join_index]
        out_patterns = [WILDCARD] * out_schema.arity
        for index in out_join_indices:
            out_patterns[index] = join_pattern
        result.emitted.append(Punctuation(out_schema, out_patterns, ts=now))
        side.store.remove(pid)
        side.index.on_punctuation_removed(pid)
    return result
