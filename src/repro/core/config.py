"""PJoin configuration.

Gathers every tuning knob the paper exposes — purge threshold, index
building strategy, propagation mode and thresholds, memory threshold,
disk-join activation threshold — in one validated dataclass.  The
paper stresses that these parameters "can also be changed at runtime";
:class:`~repro.core.monitor.Monitor` copies them into mutable fields
for exactly that reason, and :meth:`repro.core.pjoin.PJoin.reconfigure`
applies changes mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError, ResilienceError
from repro.resilience.policy import STRICT, normalize_policy

INDEX_EAGER = "eager"
INDEX_LAZY = "lazy"

PROPAGATE_OFF = "off"
PROPAGATE_PUSH_COUNT = "push_count"
PROPAGATE_PUSH_TIME = "push_time"
PROPAGATE_PUSH_PAIRS = "push_pairs"
PROPAGATE_PULL = "pull"

_INDEX_MODES = (INDEX_EAGER, INDEX_LAZY)
_PROPAGATION_MODES = (
    PROPAGATE_OFF,
    PROPAGATE_PUSH_COUNT,
    PROPAGATE_PUSH_TIME,
    PROPAGATE_PUSH_PAIRS,
    PROPAGATE_PULL,
)


@dataclass(frozen=True)
class PJoinConfig:
    """All PJoin tuning options (paper Sections 3.2–3.6).

    Parameters
    ----------
    purge_threshold:
        Number of new punctuations between two state purges.  ``1`` is
        the paper's *eager* purge; larger values are *lazy* purge
        (``PJoin-n`` in the figures).
    index_building:
        ``"eager"`` builds the punctuation index incrementally on every
        punctuation arrival; ``"lazy"`` batches building until a
        propagation run needs it.
    propagation_mode:
        ``"off"`` — never propagate (the §4.1–§4.3 experiments);
        ``"push_count"`` — propagate after ``propagate_count_threshold``
        new punctuations;
        ``"push_time"`` — propagate every
        ``propagate_time_threshold_ms`` virtual milliseconds;
        ``"push_pairs"`` — propagate after
        ``propagate_pairs_threshold`` pairs of equivalent punctuations
        have been received from both inputs (the §4.4 configuration);
        ``"pull"`` — propagate only on
        :meth:`~repro.core.pjoin.PJoin.request_propagation`.
    propagate_count_threshold:
        Count propagation threshold for ``"push_count"``.
    propagate_time_threshold_ms:
        Time propagation threshold for ``"push_time"``.
    propagate_pairs_threshold:
        Pair count for ``"push_pairs"``.
    memory_threshold:
        Maximum memory-resident state tuples over both inputs before
        state relocation kicks in; ``None`` disables relocation.
    disk_join_idle_ms:
        Activation threshold of the reactive disk join: both inputs
        must be silent this long before disk work is scheduled.
    disk_join_before_propagation:
        Run a full disk join (finishing all left-over joins and clearing
        the purge buffer) before each propagation run, so punctuations
        blocked by disk-resident matches can be released.
    on_the_fly_drop:
        Drop an arriving tuple (after probing) when the opposite
        stream's punctuations already cover its join value, instead of
        inserting it into the state (Section 4.3's asymmetric-rate
        optimisation).
    n_partitions:
        Hash buckets per state.
    fault_policy:
        How to treat a punctuation-contract violation (a tuple arriving
        after a same-stream punctuation covering it) — one of
        :data:`~repro.resilience.policy.FAULT_POLICIES`:
        ``"strict"`` raises
        :class:`~repro.errors.ContractViolationError` (the default);
        ``"quarantine"`` routes the tuple to the operator's dead-letter
        store; ``"repair"`` retracts the offending punctuation and
        admits the tuple; ``"trust"`` skips the check entirely.  The
        legacy ``validate_inputs`` spellings ``"raise"``/``"count"``/
        ``"off"`` are accepted and normalised.
    """

    purge_threshold: int = 1
    index_building: str = INDEX_LAZY
    propagation_mode: str = PROPAGATE_OFF
    propagate_count_threshold: int = 50
    propagate_time_threshold_ms: float = 1000.0
    propagate_pairs_threshold: int = 1
    memory_threshold: Optional[int] = None
    disk_join_idle_ms: float = 5.0
    disk_join_before_propagation: bool = True
    on_the_fly_drop: bool = True
    n_partitions: int = 32
    fault_policy: str = STRICT

    def __post_init__(self) -> None:
        if self.purge_threshold < 1:
            raise ConfigError(
                f"purge_threshold must be >= 1, got {self.purge_threshold}"
            )
        if self.index_building not in _INDEX_MODES:
            raise ConfigError(
                f"index_building must be one of {_INDEX_MODES}, "
                f"got {self.index_building!r}"
            )
        if self.propagation_mode not in _PROPAGATION_MODES:
            raise ConfigError(
                f"propagation_mode must be one of {_PROPAGATION_MODES}, "
                f"got {self.propagation_mode!r}"
            )
        if self.propagate_count_threshold < 1:
            raise ConfigError(
                "propagate_count_threshold must be >= 1, "
                f"got {self.propagate_count_threshold}"
            )
        if self.propagate_time_threshold_ms <= 0:
            raise ConfigError(
                "propagate_time_threshold_ms must be positive, "
                f"got {self.propagate_time_threshold_ms}"
            )
        if self.propagate_pairs_threshold < 1:
            raise ConfigError(
                "propagate_pairs_threshold must be >= 1, "
                f"got {self.propagate_pairs_threshold}"
            )
        if self.memory_threshold is not None and self.memory_threshold < 2:
            raise ConfigError(
                f"memory_threshold must be >= 2 or None, got {self.memory_threshold}"
            )
        if self.disk_join_idle_ms <= 0:
            raise ConfigError(
                f"disk_join_idle_ms must be positive, got {self.disk_join_idle_ms}"
            )
        if self.n_partitions < 1:
            raise ConfigError(f"n_partitions must be >= 1, got {self.n_partitions}")
        try:
            normalized = normalize_policy(self.fault_policy)
        except ResilienceError as exc:
            raise ConfigError(str(exc)) from None
        if normalized != self.fault_policy:
            object.__setattr__(self, "fault_policy", normalized)

    @property
    def eager_purge(self) -> bool:
        """Eager purge is the special case of purge threshold 1."""
        return self.purge_threshold == 1

    def with_overrides(self, **overrides) -> "PJoinConfig":
        """Return a copy with selected options replaced."""
        return replace(self, **overrides)


def eager_config(**overrides) -> PJoinConfig:
    """The paper's ``PJoin-1``: eager purge, everything else default."""
    return PJoinConfig(purge_threshold=1, **overrides)


def lazy_config(purge_threshold: int, **overrides) -> PJoinConfig:
    """The paper's ``PJoin-n``: lazy purge with the given threshold."""
    return PJoinConfig(purge_threshold=purge_threshold, **overrides)
