"""PJoin — the paper's contribution.

A binary hash-based equi-join that exploits punctuations to (1) purge
no-longer-useful tuples from its state and (2) propagate punctuations
to downstream operators.  The operator is assembled from the paper's
six components — memory join, state relocation, disk join, state
purge, punctuation index building and punctuation propagation — wired
together by an event-driven framework (monitor + event-listener
registry, Section 3.6).

Public entry points
-------------------
:class:`~repro.core.pjoin.PJoin`
    The operator itself.
:class:`~repro.core.config.PJoinConfig`
    All tuning knobs: purge threshold (eager = 1 / lazy = n), index
    building strategy, propagation mode, memory threshold.
:func:`~repro.core.registry.table1_registry`
    The example event-listener registry of the paper's Table 1.
:class:`~repro.core.nary.NaryPJoin`
    The n-ary extension sketched in Section 6.
:class:`~repro.core.windowed.WindowedPJoin`
    The sliding-window extension sketched in Section 6.
"""

from repro.core.config import PJoinConfig
from repro.core.events import (
    DiskJoinActivateEvent,
    Event,
    PropagateCountReachEvent,
    PropagateRequestEvent,
    PropagateTimeExpireEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
    StreamEmptyEvent,
)
from repro.core.registry import EventListenerRegistry, table1_registry
from repro.core.pjoin import PJoin
from repro.core.nary import NaryPJoin
from repro.core.windowed import WindowedPJoin
from repro.core.adaptive import AdaptivePurgeController

__all__ = [
    "PJoin",
    "PJoinConfig",
    "Event",
    "StreamEmptyEvent",
    "PurgeThresholdReachEvent",
    "StateFullEvent",
    "DiskJoinActivateEvent",
    "PropagateRequestEvent",
    "PropagateTimeExpireEvent",
    "PropagateCountReachEvent",
    "EventListenerRegistry",
    "table1_registry",
    "NaryPJoin",
    "WindowedPJoin",
    "AdaptivePurgeController",
]
