"""Adaptive purge-threshold control (paper Section 6's future work).

The paper leaves "designing a correlated purge threshold" as an open
optimisation task: the best threshold depends on the punctuation rate
and the probing-cost growth, both of which shift at runtime.  This
controller closes the loop using the knob the paper explicitly provides
("all parameters ... can also be changed at runtime"):

every ``interval_ms`` of virtual time it compares how much time the
join spent *purging* versus *probing* since the last adjustment —

* purging dominating means the threshold is too low (runs fire too
  often for the little state they reclaim): **raise** it;
* probing dominating means the state has grown past the sweet spot:
  **lower** it;
* otherwise leave it alone.

Multiplicative-increase / multiplicative-decrease keeps the controller
stable, and the threshold is clamped to ``[1, max_threshold]``.
"""

from __future__ import annotations

from typing import List, Tuple as PyTuple

from repro.core.pjoin import PJoin
from repro.errors import ConfigError
from repro.obs.trace import get_tracer


class AdaptivePurgeController:
    """Hill-climbs a PJoin's purge threshold at runtime.

    Parameters
    ----------
    join:
        The PJoin to steer.
    interval_ms:
        Virtual time between adjustments.
    high_ratio:
        Raise the threshold when ``purge_time > high_ratio * probe_time``
        over the last interval.
    low_ratio:
        Lower it when ``purge_time < low_ratio * probe_time``.
    factor:
        Multiplicative step for both directions.
    max_threshold:
        Upper clamp.
    """

    def __init__(
        self,
        join: PJoin,
        interval_ms: float = 2_000.0,
        high_ratio: float = 1.5,
        low_ratio: float = 0.25,
        factor: float = 2.0,
        max_threshold: int = 1024,
    ) -> None:
        if interval_ms <= 0:
            raise ConfigError(f"interval_ms must be positive, got {interval_ms}")
        if factor <= 1.0:
            raise ConfigError(f"factor must exceed 1.0, got {factor}")
        if not 0 <= low_ratio < high_ratio:
            raise ConfigError(
                f"need 0 <= low_ratio < high_ratio, got {low_ratio}, {high_ratio}"
            )
        if max_threshold < 1:
            raise ConfigError(f"max_threshold must be >= 1, got {max_threshold}")
        self.join = join
        self.interval_ms = interval_ms
        self.high_ratio = high_ratio
        self.low_ratio = low_ratio
        self.factor = factor
        self.max_threshold = max_threshold
        self._last_purge_time = join.purge_time_total
        self._last_probe_time = join.probe_time_total
        self.adjustments: List[PyTuple[float, int]] = []
        self._started = False

    def start(self) -> None:
        """Arm the periodic adjustment timer.  Call before ``run()``."""
        if self._started:
            raise ConfigError("controller already started")
        self._started = True
        self.join.engine.schedule(self.interval_ms, self._tick)

    def _tick(self) -> None:
        if self.join.finished:
            return
        self._adjust()
        self.join.engine.schedule(self.interval_ms, self._tick)

    def _adjust(self) -> None:
        purge_delta = self.join.purge_time_total - self._last_purge_time
        probe_delta = self.join.probe_time_total - self._last_probe_time
        self._last_purge_time = self.join.purge_time_total
        self._last_probe_time = self.join.probe_time_total
        current = self.join.monitor.purge_threshold
        new = current
        if purge_delta > self.high_ratio * probe_delta:
            new = min(self.max_threshold, max(current + 1, int(current * self.factor)))
        elif purge_delta < self.low_ratio * probe_delta:
            new = max(1, int(current / self.factor))
        if new != current:
            self.join.reconfigure(purge_threshold=new)
            self.adjustments.append((self.join.engine.now, new))
            tracer = get_tracer(self.join.engine)
            if tracer is not None:
                tracer.record(
                    self.join.engine.now, self.join.name, "adaptive_adjust",
                    old=current, new=new,
                    purge_delta=purge_delta, probe_delta=probe_delta,
                )

    @property
    def current_threshold(self) -> int:
        return self.join.monitor.purge_threshold

    def __repr__(self) -> str:
        return (
            f"AdaptivePurgeController(threshold={self.current_threshold}, "
            f"adjustments={len(self.adjustments)})"
        )
