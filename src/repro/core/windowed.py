"""The sliding-window PJoin extension (paper Section 6).

Combines punctuation purging with sliding-window invalidation: a result
pair must have arrival timestamps within ``window_ms`` of each other,
and expired tuples are dropped from the state.  As the paper suggests,
tuple invalidation is performed *in combination with state probing*:
when a bucket is probed, its entries are visited in timestamp order and
expiry stops at the first time-valid tuple.

The interaction the paper hints at ("early punctuation propagation")
falls out naturally: window expiry decrements punctuation index counts
just like purging does, so a punctuation whose last matching tuples
expired becomes propagable before any purge run touches them.

The windowed operator keeps its state memory-resident (no relocation),
which is the regime window joins are designed for — their whole point
is a state bounded by the window.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.pjoin import PJoin
from repro.errors import ConfigError
from repro.storage.partition import StateEntry
from repro.tuples.tuple import Tuple


class WindowedPJoin(PJoin):
    """PJoin with an additional sliding time window on both inputs.

    Parameters
    ----------
    window_ms:
        Window size in virtual milliseconds.  A pair joins only when
        the earlier tuple arrived within ``window_ms`` of the later one.
    """

    def __init__(self, *args, window_ms: float = 1000.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if window_ms <= 0:
            raise ConfigError(f"window_ms must be positive, got {window_ms!r}")
        if self.config.memory_threshold is not None:
            raise ConfigError(
                "WindowedPJoin keeps its state memory-resident; "
                "set memory_threshold=None"
            )
        self.window_ms = window_ms
        self.tuples_expired = 0

    def counters(self) -> dict:
        out = super().counters()
        out["tuples_expired"] = self.tuples_expired
        return out

    def _handle_tuple(self, tup: Tuple, side: int) -> float:
        """Expire the probed bucket, then run the normal PJoin path."""
        other = self.other(side)
        value = self.join_value(tup, side)
        expired = self._expire_bucket(other, value)
        cost = super()._handle_tuple(tup, side)
        return cost + self.cost_model.purge_scan_per_tuple * expired

    def _expire_bucket(self, side: int, join_value: Any) -> int:
        """Drop out-of-window entries from the bucket about to be probed.

        Entries are stored in arrival order within each value chain, so
        scanning each chain stops at the first still-valid entry — the
        timestamp-ordered access pattern Section 6 describes.
        """
        horizon = self.engine.now - self.window_ms
        partition = self.sides[side].table.partition_for(join_value)
        expired: List[StateEntry] = []
        for chain_value in list(partition.memory):
            chain = partition.memory[chain_value]
            cut = 0
            for entry in chain:
                if entry.ats < horizon:
                    cut += 1
                else:
                    break
            if cut:
                expired.extend(chain[:cut])
                remaining = chain[cut:]
                if remaining:
                    partition.memory[chain_value] = remaining
                else:
                    del partition.memory[chain_value]
        if expired:
            partition.memory_count -= len(expired)
            self.sides[side].table.memory_count -= len(expired)
            for entry in expired:
                self.sides[side].discard_entry(entry)
            self.tuples_expired += len(expired)
        return len(expired)
