"""PJoin — the punctuation-exploiting stream join (paper Section 3).

PJoin is a binary hash-based equi-join built from six components that
the event-driven framework schedules:

1. **memory join** — per-tuple probing of the opposite in-memory state;
2. **state relocation** — flush the largest partition to (simulated)
   disk when the memory threshold is reached;
3. **disk join** — finish the left-over joins owed to disk-resident
   portions, clear the purge buffers, and purge disk-resident tuples;
4. **state purge** — apply the purge rules (1) eagerly or lazily;
5. **index build** — maintain the punctuation index incrementally;
6. **punctuation propagation** — release punctuations whose index
   count reached zero (Theorem 1) to the output stream.

The *memory join* runs on the operator's main per-item path; every
other component executes when the :class:`~repro.core.monitor.Monitor`
fires one of the Section 3.6 events and the event-listener registry
routes it here.  All component work is charged to the virtual clock,
so purge/propagation overhead trades off against probe savings exactly
as in the paper's experiments.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.core.config import (
    INDEX_EAGER,
    PROPAGATE_OFF,
    PROPAGATE_PUSH_PAIRS,
    PROPAGATE_PUSH_TIME,
    PJoinConfig,
)
from repro.core.events import Event, PropagateRequestEvent, StreamEmptyEvent
from repro.core.monitor import Monitor
from repro.core.propagation import run_propagation
from repro.core.purge import PurgeResult, purge_side
from repro.core.registry import EventListenerRegistry, default_registry_for
from repro.core.state import JoinStateSide
from repro.errors import OperatorError
from repro.memory.budget import GovernorSpec
from repro.obs.trace import get_tracer
from repro.operators import fastpath
from repro.operators.binary import BinaryHashJoin
from repro.operators.dedupe import (
    already_produced,
    stage1_covered,
    stage2_covered_one_side,
)
from repro.punctuations.punctuation import Punctuation
from repro.resilience.policy import STRICT
from repro.resilience.validator import ContractValidator
from repro.sim.costs import CostModel
from repro.sim.engine import SimulationEngine
from repro.skew.replica import HotKeyReplica
from repro.storage.disk import SimulatedDisk
from repro.storage.hash_table import stable_hash
from repro.storage.partition import HybridPartition, StateEntry
from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple

_NEG_INF = float("-inf")


class _ControlSignal:
    """An internal queue item carrying a framework event.

    Timer ticks and pull-mode requests are serialised through the
    operator's normal input queue, mirroring how the paper's second
    thread synchronises with the memory join on the shared state.
    """

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class PJoin(BinaryHashJoin):
    """The punctuation-exploiting binary hash equi-join.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.PJoinConfig`; defaults to eager
        purge with propagation off.
    registry:
        An :class:`~repro.core.registry.EventListenerRegistry`.  When
        omitted, one matching the config is derived (see
        :func:`~repro.core.registry.default_registry_for`); pass
        :func:`~repro.core.registry.table1_registry` for the paper's
        Table 1 wiring.
    disk:
        Shared :class:`~repro.storage.disk.SimulatedDisk`; a private one
        is created when omitted.
    governor:
        Optional :class:`~repro.memory.budget.GovernorSpec`; when given,
        a :class:`~repro.memory.governor.MemoryGovernor` polices this
        operator's memory-resident state against the spec's budget,
        charging spill/fault I/O through the operator's disk.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        cost_model: CostModel,
        left_schema: Schema,
        right_schema: Schema,
        left_field: str,
        right_field: str,
        config: Optional[PJoinConfig] = None,
        registry: Optional[EventListenerRegistry] = None,
        disk: Optional[SimulatedDisk] = None,
        name: str = "pjoin",
        governor: Optional[GovernorSpec] = None,
        skew: Optional[Any] = None,
    ) -> None:
        self.config = config if config is not None else PJoinConfig()
        super().__init__(
            engine,
            cost_model,
            left_schema,
            right_schema,
            left_field,
            right_field,
            n_partitions=self.config.n_partitions,
            name=name,
        )
        # Skew layer (repro.skew): a SkewSpec attaches a frequency
        # sketch and adaptive (splittable) hash tables.  Unattached
        # joins build the stock tables and take the stock code paths.
        self.skew = None
        table_factory = None
        if skew is not None:
            from repro.skew.manager import SkewManager

            self.skew = SkewManager(skew, self.config.n_partitions)
            table_factory = self.skew.make_table
        self.sides = [
            JoinStateSide(
                left_schema, left_field, self.config.n_partitions,
                side_name="left", table_factory=table_factory,
            ),
            JoinStateSide(
                right_schema, right_field, self.config.n_partitions,
                side_name="right", table_factory=table_factory,
            ),
        ]
        # Keep the inherited helpers pointed at the real tables.
        self.states = [self.sides[0].table, self.sides[1].table]
        # The punctuation-contract validator applies the configured
        # fault policy to every arriving tuple (resilience layer).
        self.validator = ContractValidator.for_sides(
            engine, name, self.config.fault_policy, self.sides
        )
        self.dead_letters = self.validator.dead_letters
        self.monitor = Monitor(self.config)
        self.registry = (
            registry if registry is not None else default_registry_for(self.config)
        )
        self.disk = disk if disk is not None else SimulatedDisk(cost_model)
        self.governor = None
        if governor is not None:
            self.governor = governor.build(
                cost_model, disk=self.disk, engine=engine,
                name=f"{name}.governor",
            )
            # A side's entries are purged by the *opposite* stream's
            # punctuations — that store drives punctuation-aware eviction.
            self.governor.register_side(
                0, self.sides[0].table,
                covered_by=self.sides[1].store.covers_value,
            )
            self.governor.register_side(
                1, self.sides[1].table,
                covered_by=self.sides[0].store.covers_value,
            )
            if self.skew is not None:
                # The skew-aware eviction policy scores victims by the
                # sketch's heat estimates; hand it the live sketch.
                self.governor.sketch = self.skew.sketch
        self._components = {
            "state_purge": self._component_state_purge,
            "state_relocation": self._component_state_relocation,
            "disk_join": self._component_disk_join,
            "index_build": self._component_index_build,
            "propagate": self._component_propagate,
        }
        # Propagated punctuations constrain the left join column of the
        # output schema.  Constraining only one column is sound (a result
        # with that value needs a partner from both inputs) and — unlike
        # constraining both columns — leaves the punctuation exploitable
        # by a downstream group-by on the join attribute, which must see
        # every non-group field as a wildcard.
        self._out_join_indices = (self.join_indices[0],)
        self._last_full_disk_join = _NEG_INF
        self._idle_check_pending = False
        # --- counters -----------------------------------------------------
        self.tuples_dropped_on_fly = 0
        self.replica_inserts = 0
        self.purge_runs = 0
        self.tuples_purged = 0
        self.disk_join_runs = 0
        self.propagation_runs = 0
        self.punctuations_propagated = 0
        self.spills = 0
        self.events_dispatched: Dict[str, int] = {}
        # Virtual time spent probing vs purging — the two sides of the
        # eager/lazy trade-off; read by the adaptive purge controller.
        self.probe_time_total = 0.0
        self.purge_time_total = 0.0
        # Propagation delay: punctuation arrival → release downstream.
        self.propagation_latency_total_ms = 0.0
        if self.config.propagation_mode == PROPAGATE_PUSH_TIME:
            self._arm_propagation_timer()
        self._build_fast_path()

    # ==================================================================
    # Fast-path specialization (see repro.operators.fastpath)
    # ==================================================================

    def _build_fast_path(self) -> None:
        """Install a specialized ``handle`` when every hot layer is off.

        Conditions: strict (default) fault policy, no governor, no
        tracer attached at build time.  The strict contract check stays
        — inlined as one direct ``covers`` probe per tuple, delegating
        to the full validator only on an actual violation — so the fast
        path is byte-identical to the layered one, counters included.
        """
        if not fastpath.fastpath_enabled():
            return
        cls = type(self)
        if cls.handle is not PJoin.handle or (
            cls._handle_tuple is not PJoin._handle_tuple
        ):
            return  # a subclass (e.g. WindowedPJoin) extends the hot path
        if self.validator.policy != STRICT:
            return
        if self.governor is not None:
            return
        if self.skew is not None:
            return  # the skew layer rides the layered hot path
        if getattr(self.engine, "tracer", None) is not None:
            return
        side0, side1 = self.sides
        ji0, ji1 = self.join_indices
        cost_model = self.cost_model
        tuple_overhead = cost_model.tuple_overhead
        drop_check = cost_model.drop_check
        insert_cost = cost_model.insert
        on_the_fly_drop = self.config.on_the_fly_drop
        engine = self.engine
        monitor = self.monitor

        def fast_tuple(tup: Tuple, side: int) -> float:
            if side == 0:
                value = tup.values[ji0]
                mine, other = side0, side1
            else:
                value = tup.values[ji1]
                mine, other = side1, side0
            cost = tuple_overhead
            if mine.covers(value):
                # Strict contract violation: the full validator counts
                # it and raises, exactly as on the layered path.
                self.validator.admit(tup, value, side)
                return cost  # pragma: no cover - strict admit raises
            value_hash = stable_hash(value)
            occupancy, matches = other.probe(value, value_hash)
            self.probes += 1
            self.probe_matches += len(matches)
            self.emit_joins(tup, matches, side)
            probe_cost = cost_model.probe_cost(occupancy, len(matches))
            self.probe_time_total += probe_cost
            cost += probe_cost
            dropped = False
            if on_the_fly_drop:
                cost += drop_check
                if other.covers(value):
                    if other.table.partition_for(value, value_hash).disk_count == 0:
                        dropped = True
                        self.tuples_dropped_on_fly += 1
            if not dropped:
                mine.insert(tup, value, engine.now, value_hash)
                self.insertions += 1
                cost += insert_cost
                event = monitor.on_insert(side0.memory_size + side1.memory_size)
                if event is not None:
                    cost += self.dispatch(event)
            return cost

        def handle(item: Any, port: int) -> float:
            if isinstance(item, Tuple):
                return fast_tuple(item, port)
            if isinstance(item, Punctuation):
                return self._handle_punctuation(item, port)
            if isinstance(item, _ControlSignal):
                return self.dispatch(item.event)
            if isinstance(item, HotKeyReplica):
                return self._handle_replica(item)
            return 0.0

        self.handle = fastpath.mark(handle)  # type: ignore[method-assign]

    def __getstate__(self) -> Dict[str, Any]:
        return fastpath.strip_for_pickle(self.__dict__)

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._build_fast_path()

    # ==================================================================
    # Event dispatch
    # ==================================================================

    def _trace(self, action: str, **details: Any) -> None:
        """Record a component action on the engine's tracer, if any."""
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            tracer.record(self.engine.now, self.name, action, **details)

    def dispatch(self, event: Event) -> float:
        """Run the registry's listeners for *event*; return total cost."""
        name = event.event_name
        self.events_dispatched[name] = self.events_dispatched.get(name, 0) + 1
        # Inline tracer guard: with tracing off (the default) this must
        # not build the details dict a _trace(**kwargs) call would.
        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            tracer.record(self.engine.now, self.name, "event", type=name)
        cost = 0.0
        for listener in self.registry.listeners_for(event):
            component = self._components.get(listener)
            if component is None:  # pragma: no cover - registry validates
                raise OperatorError(f"unknown component {listener!r}")
            cost += component(event)
        return cost

    def _enqueue_control(self, event: Event) -> None:
        """Serialise a framework event through the input queue."""
        if self._finished:
            return
        self._queue.append((_ControlSignal(event), 0))
        if not self._busy:
            self._pump()

    def request_propagation(self, requester: str = "") -> None:
        """Pull-mode API: a downstream operator asks for punctuations."""
        self._enqueue_control(PropagateRequestEvent(requester=requester))

    def reconfigure(self, **overrides: Any) -> None:
        """Change thresholds at runtime (purge/memory/propagation).

        Only threshold-like options are adjustable mid-stream; structural
        options (partition count, schemas) are not.
        """
        allowed = {
            "purge_threshold",
            "memory_threshold",
            "propagate_count_threshold",
            "propagate_time_threshold_ms",
            "propagate_pairs_threshold",
            "disk_join_idle_ms",
        }
        unknown = set(overrides) - allowed
        if unknown:
            raise OperatorError(
                f"cannot reconfigure {sorted(unknown)}; adjustable thresholds "
                f"are {sorted(allowed)}"
            )
        self.config = self.config.with_overrides(**overrides)
        for key, value in overrides.items():
            setattr(self.monitor, key, value)

    def _arm_propagation_timer(self) -> None:
        interval = self.monitor.propagate_time_threshold_ms

        def tick() -> None:
            if self._finished:
                return
            event = self.monitor.on_propagation_timer(self.engine.now)
            if event is not None:
                self._enqueue_control(event)
            self.engine.schedule(self.monitor.propagate_time_threshold_ms, tick)

        self.engine.schedule(interval, tick)

    # ==================================================================
    # Item handling (memory join — the main thread)
    # ==================================================================

    def handle(self, item: Any, port: int) -> float:
        if isinstance(item, _ControlSignal):
            return self.dispatch(item.event)
        if isinstance(item, Punctuation):
            return self._handle_punctuation(item, port)
        if isinstance(item, Tuple):
            return self._handle_tuple(item, port)
        if isinstance(item, HotKeyReplica):
            return self._handle_replica(item)
        return 0.0

    def _handle_replica(self, replica: HotKeyReplica) -> float:
        """Insert-only admission of a hot-key state replica.

        The hot-key shard router replays a hot key's build-side history
        to non-home shards (see :mod:`repro.skew.router`).  Replicas
        never probe (the home shard already produced those pairs),
        never pass the contract validator (they are state copies, not
        stream arrivals) and fire no monitor events; they simply join
        the build side's state and pay one insert.
        """
        tup = replica.tup
        value = self.join_value(tup, 1)
        value_hash = stable_hash(value)
        self.sides[1].insert(tup, value, self.engine.now, value_hash)
        self.insertions += 1
        self.replica_inserts += 1
        return self.cost_model.insert

    def _handle_tuple(self, tup: Tuple, side: int) -> float:
        other = self.other(side)
        value = self.join_value(tup, side)
        cost = self.cost_model.tuple_overhead
        if not self.validator.admit(tup, value, side):
            return cost  # quarantined: the tuple must not probe or insert
        value_hash = stable_hash(value)
        if self.skew is not None:
            # O(1) counter bump riding the hash we just computed; charged
            # zero virtual time (see repro.skew.manager).
            self.skew.observe(value, value_hash)
        governor = self.governor
        if governor is not None:
            # Fault any demoted entries of the target bucket back in
            # before probing, so the probe sees the full warm state.
            cost += governor.fault_in(other, value, value_hash)
        # Memory join: probe the opposite state's memory portion.
        occupancy, matches = self.sides[other].probe(value, value_hash)
        self.probes += 1
        self.probe_matches += len(matches)
        self.emit_joins(tup, matches, side)
        probe_cost = self.cost_model.probe_cost(occupancy, len(matches))
        self.probe_time_total += probe_cost
        cost += probe_cost
        # On-the-fly drop: if the opposite punctuations already cover
        # this value, no future opposite tuple can match it — the tuple
        # need not enter the state at all.  It must still be kept when
        # the opposite bucket has a disk portion it has not joined with.
        dropped = False
        if self.config.on_the_fly_drop:
            cost += self.cost_model.drop_check
            if self.sides[other].covers(value):
                opposite_partition = self.sides[other].table.partition_for(
                    value, value_hash
                )
                if opposite_partition.disk_count == 0:
                    dropped = True
                    self.tuples_dropped_on_fly += 1
        if not dropped:
            self.sides[side].insert(tup, value, self.engine.now, value_hash)
            self.insertions += 1
            cost += self.cost_model.insert
            if governor is not None:
                cost += governor.after_insert(side, value, value_hash)
            event = self.monitor.on_insert(self.memory_state_size())
            if event is not None:
                cost += self.dispatch(event)
        return cost

    def _handle_punctuation(self, punct: Punctuation, side: int) -> float:
        cost = self.cost_model.punct_overhead
        state = self.sides[side]
        pid = state.add_punctuation(punct)
        exploited = pid is not None
        paired = False
        if exploited and self.config.propagation_mode == PROPAGATE_PUSH_PAIRS:
            join_pattern = punct.patterns[state.store.join_index]
            paired = self.sides[self.other(side)].store.has_equal_join_pattern(
                join_pattern
            )
        # Eager index building runs right upon receiving the punctuation
        # and is independent of the propagation strategy (Section 3.5).
        if exploited and self.config.index_building == INDEX_EAGER:
            cost += self._component_index_build(None)
        for event in self.monitor.on_punctuation(paired):
            cost += self.dispatch(event)
        return cost

    # ==================================================================
    # Component: state purge (Section 3.4)
    # ==================================================================

    def _component_state_purge(self, event: Optional[Event]) -> float:
        """One purge run over both states; returns its virtual cost."""
        now = self.engine.now
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.begin(now, self.name, "purge")
        total = PurgeResult()
        for side in (0, 1):
            result = purge_side(self.sides[side], self.sides[self.other(side)], now)
            if tracer is not None:
                tracer.record(
                    now, self.name, "hash_purge",
                    side=self.sides[side].side_name,
                    scanned=result.scanned,
                    discarded=result.discarded,
                    buffered=result.buffered,
                )
            total += result
        self.purge_runs += 1
        self.tuples_purged += total.removed
        cost = self.cost_model.purge_cost(total.scanned)
        if self.skew is not None:
            # Purge boundaries are the skew layer's restructure points:
            # the state just shrank to exactly the entries that still
            # matter, so splits/coalesces move the fewest entries here.
            moved = self.skew.maybe_restructure(now)
            if moved:
                cost += self.cost_model.purge_scan_per_tuple * moved
        self.purge_time_total += cost
        if tracer is not None:
            tracer.end(
                now,
                scanned=total.scanned,
                discarded=total.discarded,
                buffered=total.buffered,
                cost=cost,
            )
        return cost

    # ==================================================================
    # Component: state relocation (Section 3.3)
    # ==================================================================

    def _component_state_relocation(self, event: Optional[Event]) -> float:
        """Flush the largest memory partition(s) until under threshold."""
        threshold = self.monitor.memory_threshold
        if threshold is None:
            return 0.0
        cost = 0.0
        while self.memory_state_size() >= threshold:
            side, victim = self._largest_memory_partition()
            moved = self.sides[side].table.spill_partition(victim, self.engine.now)
            if moved == 0:
                break
            cost += self.disk.write(moved)
            self.spills += 1
            self._trace("relocate", side=side, partition=victim.index, moved=moved)
        return cost

    def _largest_memory_partition(self) -> PyTuple[int, HybridPartition]:
        left = self.sides[0].table.largest_memory_partition()
        right = self.sides[1].table.largest_memory_partition()
        if right.memory_count > left.memory_count:
            return 1, right
        return 0, left

    # ==================================================================
    # Component: disk join (Section 3.2)
    # ==================================================================

    def _has_pending_disk_work(self) -> bool:
        """Is there any left-over join or purge-buffer work to finish?"""
        if self.sides[0].purge_buffer or self.sides[1].purge_buffer:
            return True
        if self.spills == 0:
            # Disk portions only ever appear through state relocation;
            # without a spill the partition scan below cannot find work.
            # on_idle runs after every queue drain, so this early exit
            # is on the hot path.
            return False
        for side in (0, 1):
            other = self.other(side)
            for partition in self.sides[side].table.partitions_with_disk():
                opposite = self.sides[other].table.partitions[partition.index]
                last_probe = (
                    partition.probe_history[-1]
                    if partition.probe_history
                    else _NEG_INF
                )
                if opposite.last_insert_ts > last_probe:
                    return True
                if (
                    opposite.disk_count > 0
                    and max(partition.last_spill_ts, opposite.last_spill_ts)
                    > self._last_full_disk_join
                ):
                    return True
        return False

    def _component_disk_join(self, event: Optional[Event]) -> float:
        """A *full* disk join: finish every left-over join.

        Joins each disk portion with the opposite memory portion, the
        opposite purge buffer and the opposite disk portion (all with
        timestamp duplicate prevention), then discards purge-buffer
        entries (their debts are settled) and purges disk-resident
        tuples covered by the opposite punctuation set.
        """
        sides = self.sides
        now = self.engine.now
        if sides[0].disk_size == 0 and sides[1].disk_size == 0:
            # Nothing on disk: purge-buffer entries owe nothing.
            sides[0].clear_purge_buffer()
            sides[1].clear_purge_buffer()
            return 0.0
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.begin(
                now, self.name, "disk_join",
                disk_left=sides[0].disk_size, disk_right=sides[1].disk_size,
            )
        self.disk_join_runs += 1
        cost = 0.0
        emitted = 0
        buffer_by_partition = [self._buffer_by_partition(0), self._buffer_by_partition(1)]
        # Flat leaf count, not n_partitions: the skew layer's adaptive
        # tables keep both sides' leaf layouts identical (restructures
        # apply symmetrically), so pairing by flat index stays correct.
        n = len(self.sides[0].table.partitions)
        for index in range(n):
            part = [sides[0].table.partitions[index], sides[1].table.partitions[index]]
            if part[0].disk_count == 0 and part[1].disk_count == 0:
                continue
            if tracer is not None:
                tracer.record(
                    now, self.name, "disk_partition",
                    index=index,
                    disk_left=part[0].disk_count,
                    disk_right=part[1].disk_count,
                )
            cost += self.disk.read(part[0].disk_count)
            cost += self.disk.read(part[1].disk_count)
            for side in (0, 1):
                other = self.other(side)
                if part[side].disk_count == 0:
                    continue
                if self.governor is not None:
                    # The disk portion probes the opposite warm memory;
                    # fault demoted entries back first.
                    cost += self.governor.fault_in_partition(other, part[other])
                emitted += self._disk_vs_memory(part[side], part[other], side)
                emitted += self._disk_vs_buffer(
                    part[side], buffer_by_partition[other].get(index, []), side
                )
                cost += self.cost_model.probe_per_candidate * (
                    part[side].disk_count + part[other].memory_count
                )
            if part[0].disk_count and part[1].disk_count:
                emitted += self._disk_vs_disk(part[0], part[1])
                cost += self.cost_model.probe_per_candidate * (
                    part[0].disk_count + part[1].disk_count
                )
            part[0].record_probe(now)
            part[1].record_probe(now)
        cost += self.cost_model.emit_result * emitted
        # Purge disk portions: covered entries have settled all debts.
        disk_purged = 0
        for side in (0, 1):
            covers = sides[self.other(side)].store.covers_value
            for partition in sides[side].table.partitions_with_disk():
                removed = partition.remove_disk_where(
                    lambda entry: covers(entry.join_value)
                )
                for entry in removed:
                    sides[side].discard_entry(entry)
                self.tuples_purged += len(removed)
                disk_purged += len(removed)
                cost += self.cost_model.purge_scan_per_tuple * len(removed)
        if tracer is not None and disk_purged:
            tracer.record(now, self.name, "disk_purge", removed=disk_purged)
        buffers_cleared = sides[0].clear_purge_buffer() + sides[1].clear_purge_buffer()
        self._last_full_disk_join = now
        if tracer is not None:
            tracer.end(
                now, emitted=emitted, buffers_cleared=buffers_cleared, cost=cost
            )
        return cost

    def _buffer_by_partition(self, side: int) -> Dict[int, List[StateEntry]]:
        """Group a side's purge buffer by hash-partition index."""
        table = self.sides[side].table
        grouped: Dict[int, List[StateEntry]] = {}
        for entry in self.sides[side].purge_buffer:
            h = entry.join_hash
            if h is None:
                h = stable_hash(entry.join_value)
            grouped.setdefault(table.partition_index_for(h), []).append(entry)
        return grouped

    def _disk_vs_memory(
        self, disk_part: HybridPartition, mem_part: HybridPartition, disk_side: int
    ) -> int:
        """Join a disk portion with the opposite memory portion."""
        last_probe = (
            disk_part.probe_history[-1] if disk_part.probe_history else _NEG_INF
        )
        emitted = 0
        for disk_entry in disk_part.iter_disk():
            for mem_entry in mem_part.probe_memory(disk_entry.join_value):
                if mem_entry.ats <= last_probe:
                    continue
                if stage1_covered(disk_entry, mem_entry):
                    continue
                self.emit_pair(disk_entry, mem_entry, disk_side)
                emitted += 1
        return emitted

    def _disk_vs_buffer(
        self,
        disk_part: HybridPartition,
        buffer_entries: List[StateEntry],
        disk_side: int,
    ) -> int:
        """Join a disk portion with opposite purge-buffer entries."""
        if not buffer_entries:
            return 0
        by_value: Dict[Any, List[StateEntry]] = {}
        for entry in buffer_entries:
            by_value.setdefault(entry.join_value, []).append(entry)
        emitted = 0
        for disk_entry in disk_part.iter_disk():
            for buffered in by_value.get(disk_entry.join_value, []):
                if stage1_covered(disk_entry, buffered):
                    continue
                if stage2_covered_one_side(
                    disk_entry, buffered, disk_part.probe_history
                ):
                    continue
                self.emit_pair(disk_entry, buffered, disk_side)
                emitted += 1
        return emitted

    def _disk_vs_disk(
        self, part_left: HybridPartition, part_right: HybridPartition
    ) -> int:
        """Join two disk portions (once per pair, across full runs)."""
        by_value: Dict[Any, List[StateEntry]] = {}
        for entry in part_right.iter_disk():
            by_value.setdefault(entry.join_value, []).append(entry)
        emitted = 0
        for entry_left in part_left.iter_disk():
            for entry_right in by_value.get(entry_left.join_value, []):
                if max(entry_left.dts, entry_right.dts) <= self._last_full_disk_join:
                    continue  # produced by an earlier full disk join
                if already_produced(
                    entry_left,
                    entry_right,
                    part_left.probe_history,
                    part_right.probe_history,
                ):
                    continue
                self.emit_pair(entry_left, entry_right, 0)
                emitted += 1
        return emitted

    # ==================================================================
    # Component: punctuation index building (Section 3.5)
    # ==================================================================

    def _component_index_build(self, event: Optional[Event]) -> float:
        """Run Index-Build for every side with fresh punctuations."""
        cost = 0.0
        tracer = get_tracer(self.engine)
        for side in self.sides:
            if side.index.pending_unindexed_punctuations == 0:
                continue
            result = side.index.build(side.iter_all_entries())
            if tracer is not None:
                tracer.record(
                    self.engine.now, self.name, "index_build",
                    side=side.side_name,
                    scanned=result.scanned,
                    unindexed=result.unindexed,
                    fresh=result.fresh_punctuations,
                )
            cost += self.cost_model.index_build_cost(
                result.scanned, result.unindexed, result.fresh_punctuations
            )
        return cost

    # ==================================================================
    # Component: punctuation propagation (Section 3.5)
    # ==================================================================

    def _component_propagate(self, event: Optional[Event]) -> float:
        """Release all propagable punctuations to the output stream."""
        now = self.engine.now
        tracer = get_tracer(self.engine)
        if tracer is not None:
            tracer.begin(now, self.name, "propagate")
        result = run_propagation(
            self.sides, self.out_schema, self._out_join_indices, now
        )
        for punct in result.emitted:
            self.emit(punct)
        self.propagation_runs += 1
        self.punctuations_propagated += result.propagated
        self.propagation_latency_total_ms += result.latency_total_ms
        if tracer is not None:
            tracer.end(
                now,
                checked=result.checked,
                emitted=result.propagated,
                latency_ms=result.latency_total_ms,
            )
        return self.cost_model.propagation_cost(result.checked)

    # ==================================================================
    # Reactive scheduling (stream lulls) and end-of-stream
    # ==================================================================

    def on_idle(self) -> None:
        """Arm the disk-join activation timer when left-over work exists."""
        if self._idle_check_pending or self.finished:
            return
        if not self._has_pending_disk_work():
            return
        self._idle_check_pending = True
        processed_at_arm = self.items_processed
        busy_at_arm = self.busy_time
        idle_since = self.engine.now

        def check() -> None:
            self._idle_check_pending = False
            if self.finished or self._busy or self.queue_length > 0:
                return
            if (
                self.items_processed != processed_at_arm
                or self.busy_time != busy_at_arm
            ):
                self.on_idle()
                return
            cost = self.dispatch(StreamEmptyEvent(idle_since=idle_since))
            self.run_background_task(cost, description="pjoin disk join")

        self.engine.schedule(self.monitor.disk_join_idle_ms, check)

    def on_finish(self) -> float:
        """Complete all left-over joins; final index build + propagation."""
        cost = self._component_disk_join(None)
        if self.config.propagation_mode != PROPAGATE_OFF:
            cost += self._component_index_build(None)
            cost += self._component_propagate(None)
        return cost

    # ==================================================================
    # Checkpointing (repro.checkpoint)
    # ==================================================================

    _PJOIN_COUNTERS = (
        "tuples_dropped_on_fly",
        "purge_runs",
        "tuples_purged",
        "disk_join_runs",
        "propagation_runs",
        "punctuations_propagated",
        "spills",
        "probe_time_total",
        "purge_time_total",
        "propagation_latency_total_ms",
    )

    def snapshot_state(self) -> Dict[str, Any]:
        """Everything needed to resume this join in a fresh process.

        Taken at a quiescent point (typically a punctuation-cover
        boundary with the engine drained); the payload is a plain
        picklable dict — see :mod:`repro.checkpoint.snapshot`.
        """
        from repro.checkpoint import snapshot as snaplib

        return {
            "version": snaplib.SNAPSHOT_VERSION,
            "kind": "pjoin",
            "sides": [snaplib.snapshot_side(side) for side in self.sides],
            "monitor": snaplib.snapshot_attrs(self.monitor, snaplib.MONITOR_FIELDS),
            "validator": snaplib.snapshot_validator(self.validator),
            "last_full_disk_join": self._last_full_disk_join,
            "events_dispatched": dict(self.events_dispatched),
            "counters": snaplib.snapshot_attrs(
                self,
                self._PJOIN_COUNTERS
                + snaplib.BINARY_JOIN_COUNTERS
                + snaplib.BASE_OPERATOR_COUNTERS,
            ),
        }

    def restore_state(self, snap: Dict[str, Any]) -> None:
        """Restore a :meth:`snapshot_state` payload, in place.

        Sides, stores and tables are mutated rather than replaced so
        governor registrations, validator contracts and the ``states``
        alias keep pointing at live objects.
        """
        from repro.checkpoint import snapshot as snaplib

        for side, side_snap in zip(self.sides, snap["sides"]):
            snaplib.restore_side_into(side, side_snap)
        snaplib.restore_attrs(self.monitor, snap["monitor"])
        snaplib.restore_validator_into(self.validator, snap["validator"])
        self._last_full_disk_join = snap["last_full_disk_join"]
        self.events_dispatched = dict(snap["events_dispatched"])
        snaplib.restore_attrs(self, snap["counters"])

    # ==================================================================
    # Metrics
    # ==================================================================

    @property
    def punctuation_violations(self) -> int:
        """Contract violations seen (kept as a counter-compatible alias)."""
        return self.validator.violations

    def state_size(self, side: int) -> int:
        """One side's tuple count (memory + disk + purge buffer)."""
        return self.sides[side].total_size

    def total_state_size(self) -> int:
        """The paper's Figure 5/6/8/10/13 metric."""
        return self.sides[0].total_size + self.sides[1].total_size

    def memory_state_size(self) -> int:
        return self.sides[0].memory_size + self.sides[1].memory_size

    def punctuation_set_sizes(self) -> PyTuple[int, int]:
        return (len(self.sides[0].store), len(self.sides[1].store))

    def stats(self) -> Dict[str, Any]:
        """A flat snapshot of every counter, for reports and debugging."""
        return {
            "tuples_in": self.tuples_in,
            "punctuations_in": self.punctuations_in,
            "results_produced": self.results_produced,
            "state_total": self.total_state_size(),
            "state_left": self.state_size(0),
            "state_right": self.state_size(1),
            "memory_state": self.memory_state_size(),
            "punctuation_sets": self.punctuation_set_sizes(),
            "tuples_purged": self.tuples_purged,
            "tuples_dropped_on_fly": self.tuples_dropped_on_fly,
            "purge_runs": self.purge_runs,
            "disk_join_runs": self.disk_join_runs,
            "spills": self.spills,
            "disk_tuples_written": self.disk.tuples_written,
            "propagation_runs": self.propagation_runs,
            "punctuations_propagated": self.punctuations_propagated,
            "punctuation_violations": self.punctuation_violations,
            "probe_time_total": self.probe_time_total,
            "purge_time_total": self.purge_time_total,
            "propagation_latency_total_ms": self.propagation_latency_total_ms,
            "busy_time": self.busy_time,
            "events_dispatched": dict(self.events_dispatched),
        }

    def counters(self) -> Dict[str, Any]:
        """The uniform counter registry (see :mod:`repro.obs.counters`)."""
        out = super().counters()
        out.update(
            tuples_purged=self.tuples_purged,
            tuples_dropped_on_fly=self.tuples_dropped_on_fly,
            purge_runs=self.purge_runs,
            disk_join_runs=self.disk_join_runs,
            spills=self.spills,
            propagation_runs=self.propagation_runs,
            punctuations_propagated=self.punctuations_propagated,
            propagation_latency_total_ms=self.propagation_latency_total_ms,
            punctuation_violations=self.punctuation_violations,
            probe_time_ms=self.probe_time_total,
            purge_time_ms=self.purge_time_total,
            purge_events_fired=self.monitor.purge_events_fired,
            state_full_events_fired=self.monitor.state_full_events_fired,
            propagation_events_fired=self.monitor.propagation_events_fired,
        )
        for event_name, count in self.events_dispatched.items():
            out[f"events.{event_name}"] = count
        # Resilience counters only appear under a non-default policy, so
        # default (strict) manifests stay byte-identical to the seed.
        if self.validator.policy != STRICT:
            for key, value in self.validator.counters().items():
                out[f"resilience.{key}"] = value
        # Governor counters only appear when one is attached, keeping
        # ungoverned manifests unchanged.
        if self.governor is not None:
            for key, value in self.governor.counters().items():
                out[f"governor.{key}"] = value
        # Skew counters likewise only appear with a skew layer attached;
        # replica_inserts only when the hot-key router produced any.
        if self.skew is not None:
            for key, value in self.skew.counters().items():
                out[f"skew.{key}"] = value
        if self.replica_inserts:
            out["replica_inserts"] = self.replica_inserts
        return out

    def __repr__(self) -> str:
        return (
            f"PJoin(purge_threshold={self.monitor.purge_threshold}, "
            f"state={self.total_state_size()}, "
            f"results={self.results_produced})"
        )
