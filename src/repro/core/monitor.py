"""The monitor (paper Section 3.6, Figure 4).

The monitor keeps track of the runtime parameters that change while the
memory join executes — punctuations since the last purge, in-memory
state size, punctuations since the last propagation, equivalent
punctuation pairs — together with their thresholds.  When a parameter
crosses its threshold the monitor *invokes* the corresponding event;
PJoin dispatches it through the event-listener registry.

All thresholds are plain mutable attributes, initialised from the
:class:`~repro.core.config.PJoinConfig`, because the paper requires
them to be changeable at runtime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import (
    PJoinConfig,
    PROPAGATE_PUSH_COUNT,
    PROPAGATE_PUSH_PAIRS,
    PROPAGATE_PUSH_TIME,
)
from repro.core.events import (
    Event,
    PropagateCountReachEvent,
    PropagateTimeExpireEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
)


class Monitor:
    """Threshold bookkeeping for PJoin's event-driven framework."""

    def __init__(self, config: PJoinConfig) -> None:
        # Thresholds (runtime-mutable copies of the static config).
        self.purge_threshold = config.purge_threshold
        self.memory_threshold: Optional[int] = config.memory_threshold
        self.propagation_mode = config.propagation_mode
        self.propagate_count_threshold = config.propagate_count_threshold
        self.propagate_time_threshold_ms = config.propagate_time_threshold_ms
        self.propagate_pairs_threshold = config.propagate_pairs_threshold
        self.disk_join_idle_ms = config.disk_join_idle_ms
        # Monitored runtime parameters.
        self.punctuations_since_purge = 0
        self.punctuations_since_propagation = 0
        self.pairs_since_propagation = 0
        self.last_propagation_time = 0.0
        # Tallies.
        self.purge_events_fired = 0
        self.state_full_events_fired = 0
        self.propagation_events_fired = 0

    # ------------------------------------------------------------------
    # Hooks called by PJoin
    # ------------------------------------------------------------------

    def on_punctuation(self, paired: bool) -> List[Event]:
        """Record a punctuation arrival; return the events it triggers.

        *paired* is ``True`` when an equivalent punctuation from the
        opposite stream is already stored — the trigger of the paper's
        propagation experiment (§4.4).
        """
        events: List[Event] = []
        self.punctuations_since_purge += 1
        if self.punctuations_since_purge >= self.purge_threshold:
            events.append(
                PurgeThresholdReachEvent(
                    punctuations_pending=self.punctuations_since_purge
                )
            )
            self.punctuations_since_purge = 0
            self.purge_events_fired += 1
        if self.propagation_mode == PROPAGATE_PUSH_COUNT:
            self.punctuations_since_propagation += 1
            if self.punctuations_since_propagation >= self.propagate_count_threshold:
                events.append(
                    PropagateCountReachEvent(
                        punctuations_pending=self.punctuations_since_propagation
                    )
                )
                self.punctuations_since_propagation = 0
                self.propagation_events_fired += 1
        elif self.propagation_mode == PROPAGATE_PUSH_PAIRS and paired:
            self.pairs_since_propagation += 1
            if self.pairs_since_propagation >= self.propagate_pairs_threshold:
                events.append(
                    PropagateCountReachEvent(
                        punctuations_pending=self.pairs_since_propagation,
                        paired=True,
                    )
                )
                self.pairs_since_propagation = 0
                self.propagation_events_fired += 1
        return events

    def on_insert(self, memory_tuples: int) -> Optional[Event]:
        """Check the memory threshold after a state insert."""
        if self.memory_threshold is None:
            return None
        if memory_tuples < self.memory_threshold:
            return None
        self.state_full_events_fired += 1
        return StateFullEvent(
            memory_tuples=memory_tuples, threshold=self.memory_threshold
        )

    def on_propagation_timer(self, now: float) -> Optional[Event]:
        """Fire the timed propagation event (push_time mode)."""
        if self.propagation_mode != PROPAGATE_PUSH_TIME:
            return None
        self.last_propagation_time = now
        self.propagation_events_fired += 1
        return PropagateTimeExpireEvent(
            interval_ms=self.propagate_time_threshold_ms
        )

    def __repr__(self) -> str:
        return (
            f"Monitor(purge@{self.purge_threshold}, "
            f"since_purge={self.punctuations_since_purge}, "
            f"mode={self.propagation_mode})"
        )
