"""The events of PJoin's event-driven framework (paper Section 3.6).

The monitor watches runtime parameters; when one crosses its threshold
the monitor *invokes* the corresponding event, and the listeners
registered for it in the event-listener registry execute in order.
The seven events below are exactly those the paper defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Event:
    """Base class of all framework events."""

    @property
    def event_name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class StreamEmptyEvent(Event):
    """Both input streams have (temporarily) run out of tuples."""

    idle_since: float = 0.0


@dataclass(frozen=True)
class PurgeThresholdReachEvent(Event):
    """The number of new punctuations reached the purge threshold."""

    punctuations_pending: int = 0


@dataclass(frozen=True)
class StateFullEvent(Event):
    """The in-memory join state reached the memory threshold."""

    memory_tuples: int = 0
    threshold: int = 0


@dataclass(frozen=True)
class DiskJoinActivateEvent(Event):
    """The disk-join activation threshold was reached during a lull."""

    idle_ms: float = 0.0


@dataclass(frozen=True)
class PropagateRequestEvent(Event):
    """A downstream operator requested propagation (pull mode)."""

    requester: str = ""


@dataclass(frozen=True)
class PropagateTimeExpireEvent(Event):
    """The time propagation threshold expired (push mode, timed)."""

    interval_ms: float = 0.0


@dataclass(frozen=True)
class PropagateCountReachEvent(Event):
    """The count propagation threshold was reached (push mode, counted).

    Also fired by the paired-punctuation trigger used in the paper's
    propagation experiment (§4.4): ``paired`` is then ``True``.
    """

    punctuations_pending: int = 0
    paired: bool = field(default=False)


ALL_EVENT_TYPES = (
    StreamEmptyEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
    DiskJoinActivateEvent,
    PropagateRequestEvent,
    PropagateTimeExpireEvent,
    PropagateCountReachEvent,
)
