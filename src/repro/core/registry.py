"""The event-listener registry (paper Section 3.6, Table 1).

Each entry names an event type, an optional extra condition, and the
ordered list of *listeners* (component names) that handle the event.
The registry is data, not code: it can be built at query-optimisation
time and updated at runtime, which is how PJoin switches between, say,
eager and lazy index building without touching the operator.

Component names recognised by :class:`~repro.core.pjoin.PJoin`:

``"state_purge"``, ``"state_relocation"``, ``"disk_join"``,
``"index_build"``, ``"propagate"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from repro.core.events import (
    Event,
    PropagateCountReachEvent,
    PropagateRequestEvent,
    PropagateTimeExpireEvent,
    PurgeThresholdReachEvent,
    StateFullEvent,
    StreamEmptyEvent,
)
from repro.errors import ConfigError

COMPONENT_NAMES = (
    "state_purge",
    "state_relocation",
    "disk_join",
    "index_build",
    "propagate",
)

Condition = Callable[[Event], bool]


@dataclass
class RegistryEntry:
    """One row of the registry: event → (condition, ordered listeners)."""

    event_type: Type[Event]
    listeners: List[str]
    condition: Optional[Condition] = None
    description: str = ""

    def __post_init__(self) -> None:
        for listener in self.listeners:
            if listener not in COMPONENT_NAMES:
                raise ConfigError(
                    f"unknown listener {listener!r}; valid components are "
                    f"{COMPONENT_NAMES}"
                )

    def applies_to(self, event: Event) -> bool:
        if not isinstance(event, self.event_type):
            return False
        if self.condition is not None and not self.condition(event):
            return False
        return True


class EventListenerRegistry:
    """Ordered, runtime-updatable mapping from events to listeners."""

    def __init__(self) -> None:
        self._entries: List[RegistryEntry] = []

    def register(
        self,
        event_type: Type[Event],
        listeners: List[str],
        condition: Optional[Condition] = None,
        description: str = "",
    ) -> RegistryEntry:
        """Append an entry; listeners execute in the given order."""
        entry = RegistryEntry(event_type, list(listeners), condition, description)
        self._entries.append(entry)
        return entry

    def unregister(self, entry: RegistryEntry) -> None:
        """Remove an entry previously returned by :meth:`register`."""
        self._entries.remove(entry)

    def replace_listeners(
        self, event_type: Type[Event], listeners: List[str]
    ) -> None:
        """Swap the listener list of every entry for *event_type*.

        This is the runtime-update path: e.g. switching propagation off
        mid-stream by replacing its listeners with an empty list.
        """
        found = False
        for entry in self._entries:
            if entry.event_type is event_type:
                RegistryEntry(event_type, list(listeners))  # validates names
                entry.listeners = list(listeners)
                found = True
        if not found:
            self.register(event_type, listeners)

    def listeners_for(self, event: Event) -> List[str]:
        """All listeners of all entries matching *event*, in order."""
        listeners: List[str] = []
        for entry in self._entries:
            if entry.applies_to(event):
                listeners.extend(entry.listeners)
        return listeners

    def entries(self) -> List[RegistryEntry]:
        """A copy of the entry list (for inspection and reports)."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{e.event_type.__name__}->{e.listeners}" for e in self._entries
        )
        return f"EventListenerRegistry({rows})"


def table1_registry() -> EventListenerRegistry:
    """The example registry of the paper's Table 1.

    Lazy purge (purge when the purge threshold is reached), lazy index
    building coupled with push-mode count propagation (on the count
    propagation threshold, first build the index for all newly-arrived
    punctuations, then propagate), plus state relocation on memory
    overflow and the reactive disk join on stream lulls.
    """
    registry = EventListenerRegistry()
    registry.register(
        PurgeThresholdReachEvent,
        ["state_purge"],
        description="lazy purge: purge state when the purge threshold is reached",
    )
    registry.register(
        StateFullEvent,
        ["state_relocation"],
        description="move part of the state to disk on memory overflow",
    )
    registry.register(
        StreamEmptyEvent,
        ["disk_join"],
        description="finish left-over joins while the inputs are stuck",
    )
    registry.register(
        PropagateCountReachEvent,
        ["index_build", "propagate"],
        description=(
            "lazy index building + push-mode count propagation: build the "
            "punctuation index for all new punctuations, then propagate"
        ),
    )
    return registry


def default_registry_for(config) -> EventListenerRegistry:
    """Build a registry matching a :class:`~repro.core.config.PJoinConfig`.

    Follows the paper's coupling rules: eager index building registers
    the index builder on punctuation arrival (modelled by coupling it to
    the purge-threshold event with threshold semantics handled by the
    monitor), while lazy index building couples it to whichever
    propagation trigger the config selects.
    """
    from repro.core.config import (  # local import to avoid a cycle
        INDEX_EAGER,
        PROPAGATE_OFF,
        PROPAGATE_PULL,
        PROPAGATE_PUSH_COUNT,
        PROPAGATE_PUSH_PAIRS,
        PROPAGATE_PUSH_TIME,
    )

    registry = EventListenerRegistry()
    registry.register(
        PurgeThresholdReachEvent,
        ["state_purge"],
        description="purge state when the purge threshold is reached",
    )
    registry.register(
        StateFullEvent,
        ["state_relocation"],
        description="state relocation on memory overflow",
    )
    registry.register(
        StreamEmptyEvent,
        ["disk_join"],
        description="reactive disk join during stream lulls",
    )
    propagation_listeners = ["propagate"]
    if config.index_building != INDEX_EAGER:
        propagation_listeners = ["index_build", "propagate"]
    if config.disk_join_before_propagation:
        propagation_listeners = ["disk_join"] + propagation_listeners
    mode = config.propagation_mode
    if mode in (PROPAGATE_PUSH_COUNT, PROPAGATE_PUSH_PAIRS):
        registry.register(PropagateCountReachEvent, propagation_listeners)
    elif mode == PROPAGATE_PUSH_TIME:
        registry.register(PropagateTimeExpireEvent, propagation_listeners)
    elif mode == PROPAGATE_PULL:
        registry.register(PropagateRequestEvent, propagation_listeners)
    elif mode != PROPAGATE_OFF:  # pragma: no cover - config validates modes
        raise ConfigError(f"unhandled propagation mode {mode!r}")
    return registry


