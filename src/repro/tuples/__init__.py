"""Tuples, schemas and the stream-item taxonomy.

A data stream in this library is a sequence of *stream items*.  An item
is one of:

* a :class:`~repro.tuples.tuple.Tuple` — a data element conforming to a
  :class:`~repro.tuples.schema.Schema`;
* a :class:`~repro.punctuations.punctuation.Punctuation` — a predicate
  promising that no later tuple in the stream will match it;
* the :data:`~repro.tuples.item.END_OF_STREAM` sentinel.

This package defines the first and last of those plus the schema
machinery; punctuations live in :mod:`repro.punctuations`.
"""

from repro.tuples.schema import Field, Schema
from repro.tuples.tuple import Tuple
from repro.tuples.item import END_OF_STREAM, EndOfStream, is_end_of_stream

__all__ = [
    "Field",
    "Schema",
    "Tuple",
    "EndOfStream",
    "END_OF_STREAM",
    "is_end_of_stream",
]
