"""Stream tuples.

A :class:`Tuple` is an immutable data element carrying its values, its
schema and the virtual time at which it entered the system (``ts``).
Timestamps are assigned by stream sources and preserved by operators;
join operators use them for XJoin-style duplicate prevention and for
sliding-window semantics.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Tuple as PyTuple

from repro.errors import SchemaError
from repro.tuples.schema import Schema


class Tuple:
    """An immutable, timestamped stream tuple.

    Parameters
    ----------
    schema:
        The :class:`~repro.tuples.schema.Schema` this tuple conforms to.
    values:
        Field values, one per schema field, in schema order.
    ts:
        Virtual time (milliseconds) at which the tuple entered the
        stream.  Defaults to ``0.0`` for tuples built outside a
        simulation (e.g. in unit tests).
    validate:
        When ``True`` (the default) values are checked against the
        schema.  Hot paths that construct tuples from already-validated
        values may pass ``False``.
    """

    __slots__ = ("schema", "values", "ts")

    def __init__(
        self,
        schema: Schema,
        values: Sequence[Any],
        ts: float = 0.0,
        validate: bool = True,
    ) -> None:
        values = tuple(values)
        if validate:
            if not isinstance(schema, Schema):
                raise SchemaError(f"expected Schema, got {schema!r}")
            schema.validate_values(values)
        self.schema = schema
        self.values = values
        self.ts = ts

    def value_of(self, field_name: str) -> Any:
        """Return the value of the named field."""
        return self.values[self.schema.index_of(field_name)]

    def __getitem__(self, key: Any) -> Any:
        """Index by position (``int``) or field name (``str``)."""
        if isinstance(key, str):
            return self.value_of(key)
        return self.values[key]

    @classmethod
    def fresh(cls, schema: Schema, values: PyTuple[Any, ...], ts: float) -> "Tuple":
        """Build a tuple from an already-validated value *tuple*.

        The hot-path constructor: joins emit hundreds of thousands of
        result tuples per run, and each one here skips ``__init__``'s
        ``tuple()`` copy and validation branch.  *values* must already
        be a ``tuple`` in schema order.
        """
        tup = cls.__new__(cls)
        tup.schema = schema
        tup.values = values
        tup.ts = ts
        return tup

    def with_ts(self, ts: float) -> "Tuple":
        """Return a copy of this tuple stamped with a new timestamp."""
        tup = Tuple.__new__(Tuple)
        tup.schema = self.schema
        tup.values = self.values
        tup.ts = ts
        return tup

    def as_dict(self) -> dict:
        """Return ``{field_name: value}`` for all fields."""
        return dict(zip(self.schema.field_names, self.values))

    def key(self) -> PyTuple[Any, ...]:
        """A hashable identity for result-multiset comparisons in tests.

        Two tuples with equal values and timestamps have equal keys even
        if they are distinct objects.
        """
        return self.values + (self.ts,)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.values == other.values
            and self.ts == other.ts
            and self.schema == other.schema
        )

    def __hash__(self) -> int:
        return hash((self.values, self.ts))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value!r}"
            for name, value in zip(self.schema.field_names, self.values)
        )
        return f"Tuple({pairs}, ts={self.ts:g})"


def join_tuples(left: Tuple, right: Tuple, out_schema: Schema, ts: float) -> Tuple:
    """Concatenate *left* and *right* into a result tuple of *out_schema*.

    The result timestamp is the (virtual) time the join produced it, not
    either input's arrival time.
    """
    return Tuple.fresh(out_schema, left.values + right.values, ts)
