"""Stream schemas.

A :class:`Schema` is an ordered list of named :class:`Field` objects.
Schemas are immutable and hashable, so operators can share and compare
them cheaply.  Punctuations are defined *against a schema*: a
punctuation carries one pattern per schema field, in field order
(Tucker et al.'s "ordered set of patterns").

Because schemas and fields are immutable they are also **interned**:
structurally equal instances built through :meth:`Schema.of`,
:meth:`Schema.project`, :meth:`Schema.concat` or :func:`intern_schema`
resolve to one shared object per process.  Repeated operator builds
(bench repeats, shard stacks, equivalence reruns) then share one schema
instance instead of allocating a fresh field list each time, and the
schema's hash is computed once and cached.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional, Sequence, Tuple as PyTuple

from repro.errors import SchemaError


class Field:
    """One named attribute of a schema.

    Parameters
    ----------
    name:
        Attribute name.  Must be a non-empty string, unique within the
        schema.
    dtype:
        Optional Python type used for validation (e.g. ``int``).  When
        ``None`` (the default) the field accepts any value.
    """

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: Optional[type] = None) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"field name must be a non-empty string, got {name!r}")
        if dtype is not None and not isinstance(dtype, type):
            raise SchemaError(f"field dtype must be a type or None, got {dtype!r}")
        self.name = name
        self.dtype = dtype

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if *value* does not fit this field.

        ``None`` is accepted for every field (streams may carry nulls);
        ``bool`` is not accepted where ``int`` or ``float`` is declared,
        since that is almost always a bug in workload code.
        """
        if value is None or self.dtype is None:
            return
        if isinstance(value, bool) and self.dtype in (int, float):
            raise SchemaError(
                f"field {self.name!r} expects {self.dtype.__name__}, got bool {value!r}"
            )
        if self.dtype is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable where floats are declared
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"field {self.name!r} expects {self.dtype.__name__}, "
                f"got {type(value).__name__} {value!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Field):
            return NotImplemented
        return self.name == other.name and self.dtype == other.dtype

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))

    def __repr__(self) -> str:
        if self.dtype is None:
            return f"Field({self.name!r})"
        return f"Field({self.name!r}, {self.dtype.__name__})"


class Schema:
    """An immutable, ordered collection of :class:`Field` objects.

    Examples
    --------
    >>> open_schema = Schema.of("item_id", "seller", "open_price")
    >>> open_schema.index_of("seller")
    1
    >>> typed = Schema([Field("item_id", int), Field("price", float)])
    """

    __slots__ = ("fields", "_index", "name", "_hash")

    def __init__(self, fields: Iterable[Field], name: str = "") -> None:
        field_list: PyTuple[Field, ...] = tuple(fields)
        if not field_list:
            raise SchemaError("a schema needs at least one field")
        for field in field_list:
            if not isinstance(field, Field):
                raise SchemaError(f"expected Field, got {field!r}")
        names = [field.name for field in field_list]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate field names in schema: {duplicates}")
        self.fields = field_list
        self._index = {field.name: i for i, field in enumerate(field_list)}
        self.name = name
        self._hash: Optional[int] = None

    @classmethod
    def of(cls, *names: str, name: str = "") -> "Schema":
        """Build an untyped schema from field names only (interned)."""
        return intern_schema(cls([intern_field(n) for n in names], name=name))

    @property
    def arity(self) -> int:
        """Number of fields in the schema."""
        return len(self.fields)

    @property
    def field_names(self) -> PyTuple[str, ...]:
        return tuple(field.name for field in self.fields)

    def index_of(self, field_name: str) -> int:
        """Return the position of *field_name*, raising if absent."""
        try:
            return self._index[field_name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name or '<anonymous>'} has no field {field_name!r}; "
                f"fields are {list(self.field_names)}"
            ) from None

    def has_field(self, field_name: str) -> bool:
        return field_name in self._index

    def validate_values(self, values: Sequence[Any]) -> None:
        """Raise :class:`SchemaError` unless *values* conforms."""
        if len(values) != len(self.fields):
            raise SchemaError(
                f"schema {self.name or '<anonymous>'} has arity {self.arity}, "
                f"got {len(values)} values"
            )
        for field, value in zip(self.fields, values):
            field.validate(value)

    def project(self, field_names: Sequence[str], name: str = "") -> "Schema":
        """Return the schema restricted to *field_names* (interned)."""
        return intern_schema(
            Schema([self.fields[self.index_of(n)] for n in field_names], name=name)
        )

    def concat(self, other: "Schema", name: str = "") -> "Schema":
        """Concatenate two schemas, prefixing clashing names.

        Used to build a join output schema.  If a field name appears in
        both inputs, both copies are renamed ``<schema>.<field>`` (or
        ``left.``/``right.`` when the schemas are anonymous).  The
        result is interned: every operator joining the same schema pair
        under the same name shares one output schema instance.
        """
        left_prefix = (self.name or "left") + "."
        right_prefix = (other.name or "right") + "."
        clashes = set(self.field_names) & set(other.field_names)
        fields = []
        for field in self.fields:
            if field.name in clashes:
                fields.append(intern_field(left_prefix + field.name, field.dtype))
            else:
                fields.append(field)
        for field in other.fields:
            if field.name in clashes:
                fields.append(intern_field(right_prefix + field.name, field.dtype))
            else:
                fields.append(field)
        return intern_schema(Schema(fields, name=name))

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self.fields)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(repr(field) for field in self.fields)
        if self.name:
            return f"Schema(name={self.name!r}, [{inner}])"
        return f"Schema([{inner}])"


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------

#: (name, dtype) -> the one shared Field instance.
_FIELD_CACHE: dict = {}

#: (((field name, dtype), ...), schema name) -> the shared Schema.
_SCHEMA_CACHE: dict = {}


def intern_field(name: str, dtype: Optional[type] = None) -> Field:
    """The process-wide shared :class:`Field` for ``(name, dtype)``."""
    key = (name, dtype)
    field = _FIELD_CACHE.get(key)
    if field is None:
        field = _FIELD_CACHE[key] = Field(name, dtype)
    return field


def intern_schema(schema: Schema) -> Schema:
    """Resolve *schema* to the process-wide shared instance.

    Keyed on field structure *and* schema name (equality ignores the
    name, but two same-shaped schemas with different names are distinct
    objects for error messages and manifests).  Safe because schemas
    are immutable; the first instance seen becomes canonical.
    """
    key = (
        tuple((field.name, field.dtype) for field in schema.fields),
        schema.name,
    )
    cached = _SCHEMA_CACHE.get(key)
    if cached is None:
        _SCHEMA_CACHE[key] = schema
        return schema
    return cached
