"""Stream-item taxonomy helpers.

Streams carry three kinds of items: tuples, punctuations, and a single
trailing :data:`END_OF_STREAM` marker.  Operators dispatch on the item
kind; this module provides the end-of-stream sentinel and cheap
predicates so dispatch code reads clearly.
"""

from __future__ import annotations

from typing import Any


class EndOfStream:
    """Sentinel marking that a stream has no further items.

    A single shared instance, :data:`END_OF_STREAM`, is used throughout
    the library.  It carries the virtual time at which the source ended
    only implicitly (delivery time); the object itself is stateless.
    """

    _instance: "EndOfStream | None" = None

    def __new__(cls) -> "EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "END_OF_STREAM"


END_OF_STREAM = EndOfStream()


def is_end_of_stream(item: Any) -> bool:
    """Return ``True`` if *item* is the end-of-stream marker."""
    return item is END_OF_STREAM
