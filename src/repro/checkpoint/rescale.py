"""Live shard rescaling: quiesce at a cover boundary, migrate, resume.

``repro shard --rescale K1:K2@t`` runs the first part of a workload on
K1 shards, stops at the first *global* punctuation-cover boundary at or
after virtual time ``t``, re-partitions the checkpointed join state
across K2 shards, and finishes the run there.  The cut must be a cover
boundary for the same reason checkpoints sit on one: the quiesce runs
every shard's end-of-segment disk join and propagation, so the
migrated snapshot owes no deferred work and the timestamp-dedupe
metadata can be summarised by a single cut time.

**State migration.**  Every state entry in the K1 final snapshots is
re-bucketed by ``shard_of(join_value, K2)`` — the same hash the router
uses, so migrated entries land exactly where the suffix's tuples will
be routed.  Entries keep their absolute ``ats``/``dts`` residency
intervals (the basis of pair dedupe); cold-tier entries re-enter the
warm memory portion (the new shard's governor re-demotes under its own
re-split budget); disk entries stay disk-resident.  Each migrated
partition starts with ``probe_history = [T*]`` and the operator with
``last_full_disk_join = T*``: the quiesce at the cut really did join
everything, so all pre-cut pairs read as already produced and only
pairs involving post-cut arrivals are emitted in phase 2.

**Punctuation migration.**  Migrated stores start *empty*.  Instead,
every prefix punctuation whose alignment subscription is still
unsettled at the cut (some covering shard never propagated its piece —
its promised purge work is not finished) is re-delivered at ``T*``
through the K2 router: it re-purges whatever migrated state it covers
and eventually propagates from the new shard set, emitting the merged
original exactly once.  Settled subscriptions already emitted their
original in phase 1 and are not replayed — the same
exactly-once-per-promise rule the unsharded store enforces by removing
propagated punctuations.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.checkpoint.recovery import (
    DEFAULT_CHECKPOINT_EVERY,
    _empty_outputs,
    run_checkpointed_shard,
)
from repro.checkpoint.snapshot import restore_entry
from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import RecoveryError
from repro.memory.budget import GovernorSpec
from repro.punctuations.patterns import WILDCARD
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.query.plan import QueryPlan
from repro.shard.backend import ShardedRunOutcome, ShardPlan
from repro.shard.merger import AlignmentLedger
from repro.shard.operator import aggregate_counters
from repro.shard.routing import shard_of
from repro.storage.hash_table import stable_hash
from repro.storage.partition import INFINITY
from repro.workloads.generator import GeneratedWorkload


class RescalePlan:
    """A parsed ``K1:K2@t`` rescale request."""

    __slots__ = ("n_before", "n_after", "at_ts")

    def __init__(self, n_before: int, n_after: int, at_ts: float) -> None:
        if n_before < 1 or n_after < 1:
            raise RecoveryError(
                f"rescale shard counts must be >= 1, got {n_before}:{n_after}"
            )
        if at_ts < 0:
            raise RecoveryError(f"rescale time must be >= 0, got {at_ts}")
        self.n_before = n_before
        self.n_after = n_after
        self.at_ts = at_ts

    @classmethod
    def parse(cls, text: str) -> "RescalePlan":
        """Parse the CLI form ``K1:K2@t`` (e.g. ``2:4@500``)."""
        try:
            counts, at = text.split("@", 1)
            before, after = counts.split(":", 1)
            return cls(int(before), int(after), float(at))
        except (ValueError, RecoveryError) as exc:
            if isinstance(exc, RecoveryError):
                raise
            raise RecoveryError(
                f"malformed rescale spec {text!r}; expected K1:K2@t"
            ) from exc

    def __repr__(self) -> str:
        return f"RescalePlan({self.n_before}:{self.n_after}@{self.at_ts:g})"


def _global_cut(workload: GeneratedWorkload, at_ts: float) -> float:
    """First join-exploitable punctuation time at or after *at_ts*."""
    best: Optional[float] = None
    for side in (0, 1):
        field = workload.join_fields[side]
        for time, item in workload.schedules[side]:
            if not isinstance(item, Punctuation):
                continue
            if not is_join_exploitable(item, field):
                continue
            if time >= at_ts and (best is None or time < best):
                best = time
    if best is None:
        raise RecoveryError(
            f"no punctuation-cover boundary at or after t={at_ts:g}; "
            "a rescale can only quiesce at a cover boundary"
        )
    return best


def _split_schedules(
    workload: GeneratedWorkload, cut_ts: float
) -> PyTuple[PyTuple[list, list], PyTuple[list, list]]:
    """Split both schedules at the cut: prefix ``ts <= T*``, suffix after."""
    prefixes: List[list] = []
    suffixes: List[list] = []
    for side in (0, 1):
        schedule = workload.schedules[side]
        times = [t for t, _item in schedule]
        pos = bisect_right(times, cut_ts)
        prefixes.append(list(schedule[:pos]))
        suffixes.append(list(schedule[pos:]))
    return (prefixes[0], prefixes[1]), (suffixes[0], suffixes[1])


def _migrate_states(
    final_states: List[Dict[str, Any]],
    workload: GeneratedWorkload,
    config: Optional[PJoinConfig],
    n_after: int,
    resume_ts: float,
    name: str,
) -> PyTuple[List[Dict[str, Any]], Dict[str, int]]:
    """Re-bucket K1 final operator snapshots into K2 initial snapshots.

    Builds one quiet operator per new shard, places every migrated
    entry in its hash bucket, stamps the cut-time dedupe metadata and
    snapshots the result — so the migrated state has exactly the shape
    ``PJoin.restore_state`` expects, with fresh (zeroed) counters,
    empty punctuation stores/indexes and empty purge buffers.
    """
    # Gather entries per (new_shard, side, tier), preserving old-shard
    # and bucket order so the migration is deterministic.
    buckets: List[List[Dict[str, List[Any]]]] = [
        [{"memory": [], "disk": []} for _side in (0, 1)]
        for _shard in range(n_after)
    ]
    migrated = {"tuples": 0, "disk_tuples": 0}
    for final in final_states:
        for side_index, side_snap in enumerate(final["sides"]):
            if side_snap["purge_buffer"]:
                raise RecoveryError(
                    "rescale cut is not purge-complete: "
                    f"{side_snap['side_name']} still holds a purge buffer"
                )
            for part_snap in side_snap["table"]["partitions"]:
                for _value, entries in part_snap["memory"]:
                    for snap in entries:
                        target = shard_of(snap[1], n_after)
                        buckets[target][side_index]["memory"].append(snap)
                for snap in part_snap["cold"]:
                    # Cold entries are logically memory-resident; the
                    # new shard's governor re-demotes under its budget.
                    target = shard_of(snap[1], n_after)
                    buckets[target][side_index]["memory"].append(snap)
                for snap in part_snap["disk"]:
                    target = shard_of(snap[1], n_after)
                    buckets[target][side_index]["disk"].append(snap)

    states: List[Dict[str, Any]] = []
    for shard in range(n_after):
        plan = QueryPlan()
        join = PJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            config=config,
            name=f"{name}.shard{shard}",
        )
        any_disk = False
        for side_index in (0, 1):
            side = join.sides[side_index]
            table = side.table
            n = table.n_partitions
            for snap in buckets[shard][side_index]["memory"]:
                entry = restore_entry(snap)
                entry.pid = None  # stores start empty; nothing is indexed
                entry.dts = INFINITY
                h = entry.join_hash
                if h is None:
                    h = stable_hash(entry.join_value)
                table.partitions[h % n].insert(entry)
                table.total_inserted += 1
                migrated["tuples"] += 1
            for snap in buckets[shard][side_index]["disk"]:
                entry = restore_entry(snap)
                entry.pid = None
                h = entry.join_hash
                if h is None:
                    h = stable_hash(entry.join_value)
                part = table.partitions[h % n]
                part.disk.append(entry)
                if entry.dts > part.last_spill_ts:
                    part.last_spill_ts = entry.dts
                table.total_inserted += 1
                migrated["tuples"] += 1
                migrated["disk_tuples"] += 1
                any_disk = True
            table.memory_count = sum(
                part.memory_count for part in table.partitions
            )
            # The quiesce at the cut joined everything.  Its disk join
            # ran on each old shard's *busy tail* — at or after the cut
            # time but no later than that shard's final clock — so the
            # migrated buckets read as fully probed at the latest final
            # clock over all old shards (phase 2 resumes strictly after
            # it), and only post-migration arrivals produce new
            # disk-join pairs.
            for part in table.partitions:
                part.probe_history = [resume_ts]
        join._last_full_disk_join = resume_ts
        # _has_pending_disk_work fast-path gates on spills: hint one so
        # migrated disk portions stay visible to the scan.
        join.spills = 1 if any_disk else 0
        states.append(join.snapshot_state())
    return states, migrated


def _rebuild_punctuation(
    workload: GeneratedWorkload, side: int, pattern: Any, ts: float
) -> Punctuation:
    schema = workload.schemas[side]
    join_index = schema.index_of(workload.join_fields[side])
    patterns = [WILDCARD] * schema.arity
    patterns[join_index] = pattern
    return Punctuation(schema, patterns, ts=ts)


class RescaleOutcome:
    """The merged view of one rescaled run (mirrors ShardedRunOutcome)."""

    def __init__(
        self,
        phase1_results: Optional[List[PyTuple[tuple, float]]],
        phase1_punctuations: List[PyTuple[Any, float]],
        phase1_outcomes: List[Dict[str, Any]],
        phase2: ShardedRunOutcome,
        rescale_counters: Dict[str, Any],
        keep_items: bool,
    ) -> None:
        self.n_shards = phase2.n_shards
        self.shard_outcomes = phase1_outcomes + phase2.shard_outcomes
        self.result_count = (
            sum(o["result_count"] for o in phase1_outcomes) + phase2.result_count
        )
        self.events = sum(o["events"] for o in phase1_outcomes) + phase2.events
        self.virtual_now = max(
            [phase2.virtual_now]
            + [o["virtual_now"] for o in phase1_outcomes]
        )
        if keep_items:
            self.results: Optional[List[PyTuple[tuple, float]]] = sorted(
                (phase1_results or []) + phase2.results, key=lambda r: r[1]
            )
        else:
            self.results = None
        self.punctuations = list(phase1_punctuations) + list(phase2.punctuations)
        self.punctuations_unaligned = phase2.punctuations_unaligned
        self.counters = aggregate_counters(
            [o["counters"] for o in self.shard_outcomes]
        )
        self.counters["shards"] = self.n_shards
        for key, value in rescale_counters.items():
            self.counters[f"rescale.{key}"] = value

    def result_multiset(self) -> Dict[tuple, int]:
        counts: Dict[tuple, int] = {}
        for values, _ts in self.results or []:
            counts[values] = counts.get(values, 0) + 1
        return counts

    def punctuation_multiset(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = {}
        for pattern, _ts in self.punctuations:
            counts[pattern] = counts.get(pattern, 0) + 1
        return counts


def run_sharded_rescale(
    workload: GeneratedWorkload,
    rescale: RescalePlan,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = True,
    governor: Optional[GovernorSpec] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    name: str = "pjoin",
) -> RescaleOutcome:
    """Run *workload* on K1 shards, rescale to K2 at the cut, finish.

    Both phases run the in-process checkpointed shard runner; the
    result and punctuation multisets equal the unsharded operator's
    (``repro shard --rescale ... --check`` asserts exactly that).
    """
    cut_ts = _global_cut(workload, rescale.at_ts)
    prefix, suffix = _split_schedules(workload, cut_ts)
    prefix_workload = GeneratedWorkload(workload.spec, prefix[0], prefix[1])

    # ---- Phase 1: K1 shards over the prefix, quiescing at the cut ----
    k1 = rescale.n_before
    plan1 = ShardPlan(prefix_workload, k1)
    governors1 = (
        governor.split(k1) if governor is not None else [None] * k1
    )
    outcomes1: List[Dict[str, Any]] = []
    for shard in range(k1):
        outcomes1.append(
            run_checkpointed_shard(
                shard,
                plan1.schedules[shard][0],
                plan1.schedules[shard][1],
                prefix_workload,
                config=config,
                keep_items=True,  # punctuations drive the ledger replay
                governor=governors1[shard],
                checkpoint_every=checkpoint_every,
                final_snapshot=True,
                name=name,
            )
        )

    # Replay the prefix's alignment ledger to find which promises were
    # fully merged in phase 1 and which are still owed to the suffix.
    ledger = AlignmentLedger()
    registered = []
    for _ts, side, pattern, cover in plan1.registrations:
        sub = ledger.register(pattern, cover)
        if sub is not None:
            registered.append((side, sub))
    arrivals = []
    for outcome in outcomes1:
        for index, (pattern, ts) in enumerate(outcome["punctuations"]):
            arrivals.append((ts, outcome["shard"], index, pattern))
    arrivals.sort(key=lambda a: (a[0], a[1], a[2]))
    phase1_punctuations: List[PyTuple[Any, float]] = []
    for ts, shard, _index, pattern in arrivals:
        matched, original = ledger.settle(shard, pattern)
        if matched and original is not None:
            phase1_punctuations.append((original, ts))
    unsettled = [(side, sub.original) for side, sub in registered if sub.remaining]

    # ---- Migration: re-bucket state, re-deliver open promises --------
    k2 = rescale.n_after
    final_states = [outcome.pop("final_state") for outcome in outcomes1]
    # The migrated dedupe metadata is stamped at the latest final clock
    # over the old shards; the new shards come up one virtual tick
    # later, so every post-migration arrival is strictly newer than
    # every migrated probe/departure stamp.
    resume_ts = max(outcome["virtual_now"] for outcome in outcomes1)
    states2, migrated = _migrate_states(
        final_states, workload, config, k2, resume_ts, name
    )
    replay_items: List[list] = [[], []]
    for side, pattern in unsettled:
        replay_items[side].append(
            (cut_ts, _rebuild_punctuation(workload, side, pattern, cut_ts))
        )
    suffix_workload = GeneratedWorkload(
        workload.spec,
        replay_items[0] + suffix[0],
        replay_items[1] + suffix[1],
    )

    # ---- Phase 2: K2 shards over the suffix ---------------------------
    plan2 = ShardPlan(suffix_workload, k2)
    governors2 = (
        governor.split(k2) if governor is not None else [None] * k2
    )
    outcomes2: List[Dict[str, Any]] = []
    for shard in range(k2):
        outputs = _empty_outputs(True)
        outputs["virtual_now"] = resume_ts + 1.0
        outcomes2.append(
            run_checkpointed_shard(
                shard,
                plan2.schedules[shard][0],
                plan2.schedules[shard][1],
                suffix_workload,
                config=config,
                keep_items=True,
                governor=governors2[shard],
                checkpoint_every=checkpoint_every,
                initial_state={
                    "operator": states2[shard],
                    "outputs": outputs,
                },
                name=name,
            )
        )
    phase2 = ShardedRunOutcome(plan2, outcomes2)

    rescale_counters = {
        "cut_ts": cut_ts,
        "shards_before": k1,
        "shards_after": k2,
        "migrated_tuples": migrated["tuples"],
        "migrated_disk_tuples": migrated["disk_tuples"],
        "replayed_punctuations": len(unsettled),
    }
    phase1_results = None
    if keep_items:
        phase1_results = []
        for outcome in outcomes1:
            phase1_results.extend(outcome["results"] or [])
    return RescaleOutcome(
        phase1_results,
        phase1_punctuations,
        outcomes1,
        phase2,
        rescale_counters,
        keep_items,
    )
