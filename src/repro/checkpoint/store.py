"""Checkpoint persistence through the simulated disk.

A checkpoint payload (the operator snapshot plus the runner's replay
positions and accumulated outputs) is pickled to measure its nominal
size, then charged to a :class:`~repro.storage.disk.SimulatedDisk` as
``ceil(bytes / bytes_per_tuple)`` tuple writes — checkpoint I/O rides
the same cost model and, when the disk carries a fault profile, the
same seeded fault injector as every other disk operation.  A
checkpoint save can therefore hit a transient outage and pay backoff,
or raise :class:`~repro.errors.RetryExhaustedError` under a capped
retry budget, exactly like a state-relocation flush.

Only the latest checkpoint per shard is retained: punctuation-aligned
cuts strictly supersede each other (each cut's state already reflects
every earlier cover), so older checkpoints can never be preferred.
"""

from __future__ import annotations

import math
import pickle
from typing import Any, Dict, Optional, Tuple as PyTuple

from repro.storage.disk import SimulatedDisk


class Checkpoint:
    """One persisted cut: operator state plus replay positions.

    ``positions`` is ``(consumed_a, consumed_b)`` — how many schedule
    items of each input the checkpoint covers, relative to the schedule
    the runner was given.  ``state`` is the full runner payload (the
    operator snapshot under ``"operator"``, accumulated outputs under
    ``"outputs"``).
    """

    __slots__ = ("shard", "seq", "cut_ts", "positions", "state", "payload_bytes")

    def __init__(
        self,
        shard: int,
        seq: int,
        cut_ts: float,
        positions: PyTuple[int, int],
        state: Dict[str, Any],
        payload_bytes: int,
    ) -> None:
        self.shard = shard
        self.seq = seq
        self.cut_ts = cut_ts
        self.positions = positions
        self.state = state
        self.payload_bytes = payload_bytes

    def __repr__(self) -> str:
        return (
            f"Checkpoint(shard={self.shard}, seq={self.seq}, "
            f"cut_ts={self.cut_ts:g}, positions={self.positions}, "
            f"bytes={self.payload_bytes})"
        )


class CheckpointStore:
    """Latest-checkpoint-per-shard storage, charged through one disk."""

    def __init__(self, disk: SimulatedDisk) -> None:
        self.disk = disk
        self._latest: Dict[int, Checkpoint] = {}
        self.checkpoints_saved = 0
        self.checkpoints_loaded = 0
        self.checkpoint_bytes = 0
        self.checkpoint_tuples = 0
        self.save_time_ms = 0.0
        self.restore_time_ms = 0.0

    def _charge_tuples(self, payload_bytes: int) -> int:
        return max(1, math.ceil(payload_bytes / self.disk.bytes_per_tuple))

    def save(
        self,
        shard: int,
        seq: int,
        cut_ts: float,
        positions: PyTuple[int, int],
        state: Dict[str, Any],
    ) -> PyTuple[Checkpoint, float]:
        """Persist a cut; return ``(checkpoint, virtual write cost)``.

        Raises whatever the disk's fault injector raises — a checkpoint
        that cannot be persisted is a failed checkpoint, and the caller
        keeps running from the previous one.
        """
        payload_bytes = len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))
        tuples = self._charge_tuples(payload_bytes)
        cost = self.disk.write(tuples)
        checkpoint = Checkpoint(shard, seq, cut_ts, positions, state, payload_bytes)
        self._latest[shard] = checkpoint
        self.checkpoints_saved += 1
        self.checkpoint_bytes += payload_bytes
        self.checkpoint_tuples += tuples
        self.save_time_ms += cost
        return checkpoint, cost

    def load(self, shard: int) -> PyTuple[Optional[Checkpoint], float]:
        """Fetch the latest checkpoint for *shard* (charging read I/O)."""
        checkpoint = self._latest.get(shard)
        if checkpoint is None:
            return None, 0.0
        cost = self.disk.read(self._charge_tuples(checkpoint.payload_bytes))
        self.checkpoints_loaded += 1
        self.restore_time_ms += cost
        return checkpoint, cost

    def latest(self, shard: int) -> Optional[Checkpoint]:
        """Peek at the latest checkpoint without charging I/O."""
        return self._latest.get(shard)

    def counters(self) -> Dict[str, Any]:
        """Uniform counter snapshot (see :mod:`repro.obs.counters`)."""
        return {
            "checkpoints_saved": self.checkpoints_saved,
            "checkpoints_loaded": self.checkpoints_loaded,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_tuples": self.checkpoint_tuples,
            "save_time_ms": self.save_time_ms,
            "restore_time_ms": self.restore_time_ms,
        }
