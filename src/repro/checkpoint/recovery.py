"""Cover-aligned segmented execution and crash recovery.

The runner slices a shard's routed schedules at punctuation-cover
boundaries (every ``checkpoint_every``-th join-exploitable punctuation
time) and runs each slice as its own mini simulation: a fresh engine
and operator, the operator restored from the previous segment's
snapshot.  Schedule times are absolute, and
:class:`~repro.streams.source.StreamSource` schedules each item at
``max(item_time, now)``, so the virtual timeline is continuous across
segments — probe histories, residency intervals and the last full
disk-join time all carry absolute times through the snapshot, which is
what keeps the timestamp dedupe rules exact across a resume.

Each segment ends with the mini-run's end-of-stream quiesce (full disk
join, purge buffers cleared, pending propagation released), so the cut
is *purge-complete*: the snapshot owes no deferred work.  By the
result-multiset invariance the sharding layer already relies on,
finishing deferred work earlier than the unsegmented run only shifts
emission times — every pair is still produced exactly once, so the
segmented/recovered run reproduces the unsharded result multiset.

Crash recovery comes in two flavours sharing this runner:

* **in-process** (:func:`run_shard_with_recovery`) — the seeded crash
  raises, the supervisor restores the latest checkpoint and replays
  the suffix in the same process; this is what the
  crash-at-any-event-index property test drives;
* **multiprocess** (:func:`run_sharded_resilient`) — each shard runs
  in a forked worker streaming checkpoints to the parent; a seeded
  ``os._exit`` mid-run closes the pipe, the supervisor detects the
  EOF, respawns the worker with the latest checkpoint and the suffix
  retained in the router's bounded
  :class:`~repro.shard.router.InFlightLog`.
"""

from __future__ import annotations

import os
from bisect import bisect_right
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple as PyTuple

from repro.checkpoint.store import Checkpoint, CheckpointStore
from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import RecoveryError, TransientIOError
from repro.memory.budget import GovernorSpec
from repro.obs.manifest import operator_counters
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.punctuations.store import is_join_exploitable
from repro.query.plan import QueryPlan
from repro.resilience.retry import DiskFaultProfile
from repro.shard.backend import (
    Schedule,
    ShardedRunOutcome,
    ShardPlan,
    fork_available,
)
from repro.shard.router import InFlightLog
from repro.sim.costs import CostModel
from repro.storage.disk import SimulatedDisk
from repro.workloads.generator import GeneratedWorkload

DEFAULT_CHECKPOINT_EVERY = 8
DEFAULT_MAX_RESPAWNS = 2
_CRASH_EXIT_CODE = 23


class CrashSpec:
    """A seeded crash: kill *shard*'s worker before its Nth delivery."""

    __slots__ = ("shard", "after_items")

    def __init__(self, shard: int, after_items: int) -> None:
        if after_items < 1:
            raise RecoveryError(
                f"crash after_items must be >= 1, got {after_items}"
            )
        self.shard = shard
        self.after_items = after_items

    def __repr__(self) -> str:
        return f"CrashSpec(shard={self.shard}, after_items={self.after_items})"


class SimulatedCrash(Exception):
    """Raised by the in-process crash trigger (never escapes the API)."""


class _CrashTrigger:
    """Counts operator deliveries; fires *action* before the Nth one."""

    __slots__ = ("remaining", "action", "fired")

    def __init__(self, after_items: int, action: Callable[[], None]) -> None:
        self.remaining = after_items
        self.action = action
        self.fired = False

    def arm(self, operator: Any) -> None:
        original = operator.push
        trigger = self

        def push(item: Any, port: int = 0) -> None:
            if not trigger.fired:
                trigger.remaining -= 1
                if trigger.remaining <= 0:
                    trigger.fired = True
                    trigger.action()
            original(item, port)

        operator.push = push


def cover_cut_times(
    schedule_a: Schedule,
    schedule_b: Schedule,
    join_fields: PyTuple[str, str],
    every: int = DEFAULT_CHECKPOINT_EVERY,
) -> List[float]:
    """Checkpoint cut times: every Nth join-exploitable cover boundary.

    Times are merged over both sides, ascending and deduplicated; the
    cut lands *after* all items scheduled at that time (a cover's own
    purge has run by the time the segment quiesces).
    """
    return cover_cut_times_n((schedule_a, schedule_b), join_fields, every)


def cover_cut_times_n(
    schedules: Sequence[Schedule],
    join_fields: Sequence[str],
    every: int = DEFAULT_CHECKPOINT_EVERY,
) -> List[float]:
    """:func:`cover_cut_times` over *n* schedules.

    The same punctuation-aligned boundaries the adaptive planner
    re-optimizes at (:mod:`repro.planner.reopt`): every Nth
    join-exploitable punctuation over all streams, merged ascending and
    deduplicated by time.
    """
    times: List[float] = []
    for side, schedule in enumerate(schedules):
        field = join_fields[side]
        for time, item in schedule:
            if isinstance(item, Punctuation) and is_join_exploitable(item, field):
                times.append(time)
    times.sort()
    unique: List[float] = []
    for time in times:
        if not unique or time > unique[-1]:
            unique.append(time)
    if every < 1:
        raise RecoveryError(f"checkpoint_every must be >= 1, got {every}")
    return unique[every - 1 :: every]


def _empty_outputs(keep_items: bool) -> Dict[str, Any]:
    return {
        "results": [] if keep_items else None,
        "result_count": 0,
        "punctuations": [],
        "punctuation_count": 0,
        "events": 0,
        "virtual_now": 0.0,
        "eos_time": None,
    }


def run_checkpointed_shard(
    shard_index: int,
    schedule_a: Schedule,
    schedule_b: Schedule,
    workload: GeneratedWorkload,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = True,
    governor: Optional[GovernorSpec] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    initial_state: Optional[Dict[str, Any]] = None,
    crash_after: Optional[int] = None,
    crash_action: Optional[Callable[[], None]] = None,
    on_checkpoint: Optional[Callable[[int, float, PyTuple[int, int], Dict[str, Any]], None]] = None,
    checkpoint_store: Optional[CheckpointStore] = None,
    checkpoint_fault_profile: Optional[DiskFaultProfile] = None,
    final_snapshot: bool = False,
    name: str = "pjoin",
) -> Dict[str, Any]:
    """Run one shard's slice in cover-aligned segments with checkpoints.

    Returns the same plain-dict outcome shape as
    :func:`repro.shard.backend.run_shard_simulation`, with the
    checkpoint store's counters merged in under ``checkpoint.*`` (and,
    with ``final_snapshot=True``, the quiesced operator snapshot under
    ``"final_state"`` — the rescale migration input).

    *initial_state* is a checkpoint payload (``{"operator": ...,
    "outputs": ...}``) to resume from; *crash_after* arms a seeded
    crash before the Nth schedule-item delivery, firing *crash_action*
    (default: raise :class:`SimulatedCrash`).
    """
    if checkpoint_store is None:
        checkpoint_store = CheckpointStore(
            SimulatedDisk(CostModel(), fault_profile=checkpoint_fault_profile)
        )
    times_a = [t for t, _item in schedule_a]
    times_b = [t for t, _item in schedule_b]
    len_a, len_b = len(schedule_a), len(schedule_b)

    cuts = cover_cut_times(
        schedule_a, schedule_b, tuple(workload.join_fields), checkpoint_every
    )
    segments: List[PyTuple[Optional[float], PyTuple[int, int]]] = []
    prev = (0, 0)
    for cut_ts in cuts:
        end = (bisect_right(times_a, cut_ts), bisect_right(times_b, cut_ts))
        if end == prev or end == (len_a, len_b):
            continue  # degenerate or final-coincident cut: no segment
        segments.append((cut_ts, end))
        prev = end
    segments.append((None, (len_a, len_b)))

    trigger: Optional[_CrashTrigger] = None
    if crash_after is not None:
        action = crash_action
        if action is None:
            def action() -> None:
                raise SimulatedCrash(
                    f"seeded crash on shard {shard_index} "
                    f"after {crash_after} deliveries"
                )
        trigger = _CrashTrigger(crash_after, action)

    if initial_state is not None:
        op_state: Optional[Dict[str, Any]] = initial_state["operator"]
        acc = {
            key: (list(value) if isinstance(value, list) else value)
            for key, value in initial_state["outputs"].items()
        }
    else:
        op_state = None
        acc = _empty_outputs(keep_items)

    checkpoints_failed = 0
    seq = 0
    start = (0, 0)
    join: Optional[PJoin] = None
    # Resume the virtual clock where the previous segment (or the
    # checkpointed run being resumed) left off.  The quiesce at a cut
    # can run past the next segment's first schedule times (the busy
    # tail), and the snapshot carries absolute-time dedupe metadata
    # (probe histories, departure timestamps) stamped during that tail;
    # restarting the clock at the raw schedule times would put those
    # stamps in the *future* of the new segment, breaking the
    # exactly-once pair rules.  StreamSource schedules each item at
    # ``max(item_time, now)``, so seeding ``now`` keeps the timeline
    # monotone across segments.
    resume_now = float(acc["virtual_now"])
    for cut_ts, end in segments:
        if end == start:
            continue  # empty segment: nothing to deliver, cut not needed
        plan = QueryPlan()
        plan.engine.now = resume_now
        join = PJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            config=config,
            name=f"{name}.shard{shard_index}",
            governor=governor,
        )
        if op_state is not None:
            join.restore_state(op_state)
        sink = Sink(plan.engine, plan.cost_model, keep_items=keep_items)
        join.connect(sink)
        if trigger is not None and not trigger.fired:
            trigger.arm(join)
        plan.add_source(
            schedule_a[start[0] : end[0]], join, port=0, name=f"A{shard_index}"
        )
        plan.add_source(
            schedule_b[start[1] : end[1]], join, port=1, name=f"B{shard_index}"
        )
        plan.run()
        # Accumulate this segment's outputs.
        out_join_index = join.join_indices[0]
        if keep_items:
            acc["results"].extend((tup.values, tup.ts) for tup in sink.results)
            acc["punctuations"].extend(
                (punct.patterns[out_join_index], punct.ts)
                for punct in sink.punctuations
            )
        acc["result_count"] += sink.tuple_count
        acc["punctuation_count"] += sink.punctuation_count
        acc["events"] += plan.engine.events_executed
        resume_now = plan.engine.now
        acc["virtual_now"] = max(acc["virtual_now"], resume_now)
        acc["eos_time"] = sink.eos_time
        start = end
        op_state = join.snapshot_state()
        if cut_ts is not None:
            state = {"operator": op_state, "outputs": dict(acc)}
            try:
                _ckpt, _cost = checkpoint_store.save(
                    shard_index, seq, cut_ts, end, state
                )
            except TransientIOError:
                # A checkpoint that cannot be persisted is skipped; the
                # run keeps going from the previous one.
                checkpoints_failed += 1
            else:
                if on_checkpoint is not None:
                    on_checkpoint(seq, cut_ts, end, state)
            seq += 1

    if join is None:
        # Every segment was empty — a shard that received no items, or
        # a resume whose unacknowledged suffix is empty.  Nothing runs,
        # but the outcome still needs an operator counter snapshot (and
        # a final state for rescale), so build a quiet operator and, on
        # resume, restore the carried state into it.
        plan = QueryPlan()
        join = PJoin(
            plan.engine,
            plan.cost_model,
            workload.schemas[0],
            workload.schemas[1],
            workload.join_fields[0],
            workload.join_fields[1],
            config=config,
            name=f"{name}.shard{shard_index}",
            governor=governor,
        )
        if op_state is not None:
            join.restore_state(op_state)
        op_state = join.snapshot_state()
    counters = operator_counters(join)
    for key, value in checkpoint_store.counters().items():
        counters[f"checkpoint.{key}"] = value
    if checkpoints_failed:
        counters["checkpoint.checkpoints_failed"] = checkpoints_failed
    outcome = {
        "shard": shard_index,
        "results": acc["results"] if keep_items else None,
        "result_count": acc["result_count"],
        "punctuations": acc["punctuations"] if keep_items else [],
        "punctuation_count": acc["punctuation_count"],
        "counters": counters,
        "events": acc["events"],
        "virtual_now": acc["virtual_now"],
        "eos_time": acc["eos_time"],
    }
    if final_snapshot:
        outcome["final_state"] = op_state
    return outcome


def run_shard_with_recovery(
    shard_index: int,
    schedule_a: Schedule,
    schedule_b: Schedule,
    workload: GeneratedWorkload,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = True,
    governor: Optional[GovernorSpec] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    crash_after: Optional[int] = None,
    checkpoint_fault_profile: Optional[DiskFaultProfile] = None,
    name: str = "pjoin",
) -> Dict[str, Any]:
    """In-process crash recovery: crash, restore, replay the suffix.

    The seeded crash raises mid-run; the latest checkpoint (or a cold
    start when the crash precedes the first cut) is restored and the
    unacknowledged schedule suffix replayed.  Recovery bookkeeping is
    merged into the outcome's counters under ``recovery.*``.
    """
    store = CheckpointStore(
        SimulatedDisk(CostModel(), fault_profile=checkpoint_fault_profile)
    )
    recovery = {
        "crashes_detected": 0,
        "workers_respawned": 0,
        "events_replayed": 0,
    }
    try:
        outcome = run_checkpointed_shard(
            shard_index, schedule_a, schedule_b, workload,
            config=config, keep_items=keep_items, governor=governor,
            checkpoint_every=checkpoint_every, crash_after=crash_after,
            checkpoint_store=store, name=name,
        )
    except SimulatedCrash:
        recovery["crashes_detected"] = 1
        recovery["workers_respawned"] = 1
        checkpoint, _cost = store.load(shard_index)
        if checkpoint is not None:
            positions = checkpoint.positions
            initial_state: Optional[Dict[str, Any]] = checkpoint.state
        else:
            positions = (0, 0)
            initial_state = None
        suffix_a = schedule_a[positions[0] :]
        suffix_b = schedule_b[positions[1] :]
        recovery["events_replayed"] = len(suffix_a) + len(suffix_b)
        outcome = run_checkpointed_shard(
            shard_index, suffix_a, suffix_b, workload,
            config=config, keep_items=keep_items, governor=governor,
            checkpoint_every=checkpoint_every, initial_state=initial_state,
            checkpoint_store=store, name=name,
        )
    for key, value in recovery.items():
        outcome["counters"][f"recovery.{key}"] = value
    return outcome


# ---------------------------------------------------------------------------
# Supervised multiprocess backend
# ---------------------------------------------------------------------------


def _resilient_worker_main(
    conn: Any,
    shard_index: int,
    schedule_a: Schedule,
    schedule_b: Schedule,
    workload: GeneratedWorkload,
    config: Optional[PJoinConfig],
    keep_items: bool,
    governor: Optional[GovernorSpec],
    checkpoint_every: int,
    initial_state: Optional[Dict[str, Any]],
    crash_after: Optional[int],
) -> None:
    """One supervised shard worker: stream checkpoints, send the outcome.

    A seeded crash calls ``os._exit`` mid-simulation — the pipe closes
    without a farewell, exactly like a real worker death.
    """
    try:
        def on_checkpoint(
            seq: int, cut_ts: float, positions: PyTuple[int, int],
            state: Dict[str, Any],
        ) -> None:
            conn.send(("ckpt", seq, cut_ts, positions, state))

        crash_action = None
        if crash_after is not None:
            def crash_action() -> None:
                os._exit(_CRASH_EXIT_CODE)

        outcome = run_checkpointed_shard(
            shard_index, schedule_a, schedule_b, workload,
            config=config, keep_items=keep_items, governor=governor,
            checkpoint_every=checkpoint_every, initial_state=initial_state,
            crash_after=crash_after, crash_action=crash_action,
            on_checkpoint=on_checkpoint,
        )
        conn.send(("done", outcome))
    finally:
        conn.close()


def run_sharded_resilient(
    workload: GeneratedWorkload,
    n_shards: int,
    config: Optional[PJoinConfig] = None,
    keep_items: bool = True,
    governor: Optional[GovernorSpec] = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    crash: Optional[CrashSpec] = None,
    max_respawns: int = DEFAULT_MAX_RESPAWNS,
) -> ShardedRunOutcome:
    """The supervised multiprocess backend with crash recovery.

    Routes the workload like :func:`run_sharded_multiprocess`, but each
    worker checkpoints at cover boundaries and the parent supervises:
    a worker whose pipe hits EOF is declared dead, respawned with its
    latest checkpoint, and fed the schedule suffix retained in its
    :class:`~repro.shard.router.InFlightLog`.  Where ``fork`` is
    unavailable the shards run in-process with the same checkpoint and
    (simulated) crash semantics — identical outcome, no parallelism.
    """
    import multiprocessing
    from multiprocessing.connection import wait as connection_wait

    plan = ShardPlan(workload, n_shards)
    if crash is not None and not (0 <= crash.shard < n_shards):
        raise RecoveryError(
            f"crash shard {crash.shard} out of range for K={n_shards}"
        )
    shard_governors = (
        governor.split(n_shards) if governor is not None else [None] * n_shards
    )
    recovery = {
        "checkpoints_taken": 0,
        "crashes_detected": 0,
        "workers_respawned": 0,
        "events_replayed": 0,
    }

    if not fork_available():  # pragma: no cover - non-POSIX fallback
        outcomes = []
        for shard in range(n_shards):
            crash_after = (
                crash.after_items if crash is not None and crash.shard == shard
                else None
            )
            outcome = run_shard_with_recovery(
                shard, plan.schedules[shard][0], plan.schedules[shard][1],
                workload, config=config, keep_items=keep_items,
                governor=shard_governors[shard],
                checkpoint_every=checkpoint_every, crash_after=crash_after,
            )
            recovery["checkpoints_taken"] += int(
                outcome["counters"].get("checkpoint.checkpoints_saved", 0)
            )
            recovery["crashes_detected"] += int(
                outcome["counters"].get("recovery.crashes_detected", 0)
            )
            recovery["workers_respawned"] += int(
                outcome["counters"].get("recovery.workers_respawned", 0)
            )
            recovery["events_replayed"] += int(
                outcome["counters"].get("recovery.events_replayed", 0)
            )
            outcomes.append(outcome)
        merged = ShardedRunOutcome(plan, outcomes)
        for key, value in recovery.items():
            merged.counters[f"recovery.{key}"] = value
        return merged

    ctx = multiprocessing.get_context("fork")
    logs = {
        shard: InFlightLog(plan.schedules[shard][0], plan.schedules[shard][1])
        for shard in range(n_shards)
    }
    latest: Dict[int, Dict[str, Any]] = {}
    conns: Dict[int, Any] = {}
    procs: Dict[int, Any] = {}
    respawns = {shard: 0 for shard in range(n_shards)}
    # A worker's checkpoint positions are relative to the schedules it
    # was spawned with; the log base at spawn time translates them back
    # into absolute schedule positions.
    spawn_bases = {shard: (0, 0) for shard in range(n_shards)}

    def spawn(
        shard: int,
        schedule_a: Schedule,
        schedule_b: Schedule,
        initial_state: Optional[Dict[str, Any]],
        crash_after: Optional[int],
    ) -> None:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_resilient_worker_main,
            args=(child_conn, shard, schedule_a, schedule_b, workload,
                  config, keep_items, shard_governors[shard],
                  checkpoint_every, initial_state, crash_after),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        conns[shard] = parent_conn
        procs[shard] = proc

    for shard in range(n_shards):
        crash_after = (
            crash.after_items if crash is not None and crash.shard == shard
            else None
        )
        spawn(
            shard, plan.schedules[shard][0], plan.schedules[shard][1],
            None, crash_after,
        )

    outcomes: Dict[int, Dict[str, Any]] = {}
    try:
        while len(outcomes) < n_shards:
            pending = {
                conns[shard]: shard
                for shard in range(n_shards)
                if shard not in outcomes
            }
            for conn in connection_wait(list(pending)):
                shard = pending[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Dead worker: respawn from the latest checkpoint
                    # with the in-flight log's unacknowledged suffix.
                    conn.close()
                    procs[shard].join()
                    recovery["crashes_detected"] += 1
                    if respawns[shard] >= max_respawns:
                        raise RecoveryError(
                            f"shard {shard} worker died "
                            f"{respawns[shard] + 1} times; giving up"
                        )
                    respawns[shard] += 1
                    recovery["workers_respawned"] += 1
                    suffix_a, suffix_b = logs[shard].suffix()
                    recovery["events_replayed"] += len(suffix_a) + len(suffix_b)
                    checkpoint_state = latest.get(shard)
                    spawn_bases[shard] = logs[shard].base
                    spawn(shard, suffix_a, suffix_b, checkpoint_state, None)
                    continue
                kind = message[0]
                if kind == "ckpt":
                    _kind, _seq, _cut_ts, positions, state = message
                    base_a, base_b = spawn_bases[shard]
                    logs[shard].ack(base_a + positions[0], base_b + positions[1])
                    latest[shard] = state
                    recovery["checkpoints_taken"] += 1
                elif kind == "done":
                    outcomes[shard] = message[1]
    finally:
        for conn in conns.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in procs.values():
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()

    merged = ShardedRunOutcome(plan, [outcomes[s] for s in range(n_shards)])
    for key, value in recovery.items():
        merged.counters[f"recovery.{key}"] = value
    return merged
