"""Punctuation-aligned checkpointing, crash recovery and rescaling.

The paper's purge-complete punctuation boundaries are natural
consistent cuts of join state: once a cover's purge has run, no
structure in the operator refers to anything the cover retired.  This
package exploits that:

* :mod:`repro.checkpoint.snapshot` — exact snapshot/restore of every
  recoverable structure (state sides with cold-tier residency,
  punctuation stores/indexes, disorder-buffer ledgers, operator
  counters);
* :mod:`repro.checkpoint.store` — persistence of checkpoint payloads
  through :class:`~repro.storage.disk.SimulatedDisk`, so checkpoint
  I/O is charged and fault-injectable like any other disk traffic;
* :mod:`repro.checkpoint.recovery` — cover-aligned segmented shard
  execution, seeded crash injection, and the supervised multiprocess
  backend that respawns dead workers from their latest checkpoint;
* :mod:`repro.checkpoint.rescale` — live ``K1 -> K2`` rescaling with
  checkpointed-state migration at the next cover boundary.
"""

from repro.checkpoint.snapshot import (
    SNAPSHOT_VERSION,
    restore_disorder_buffer_into,
    restore_side,
    restore_side_into,
    restore_store_into,
    snapshot_disorder_buffer,
    snapshot_side,
    snapshot_store,
)
from repro.checkpoint.store import Checkpoint, CheckpointStore
from repro.checkpoint.recovery import (
    CrashSpec,
    cover_cut_times,
    cover_cut_times_n,
    run_checkpointed_shard,
    run_sharded_resilient,
)
from repro.checkpoint.rescale import RescalePlan, run_sharded_rescale

__all__ = [
    "SNAPSHOT_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "CrashSpec",
    "RescalePlan",
    "cover_cut_times",
    "cover_cut_times_n",
    "restore_disorder_buffer_into",
    "restore_side",
    "restore_side_into",
    "restore_store_into",
    "run_checkpointed_shard",
    "run_sharded_rescale",
    "run_sharded_resilient",
    "snapshot_disorder_buffer",
    "snapshot_side",
    "snapshot_store",
]
