"""Exact snapshot/restore of every recoverable join structure.

A snapshot is a plain picklable dict (version-tagged) capturing a
structure *exactly* — not just the result-relevant parts.  Restoring a
snapshot and re-snapshotting yields an equal dict, which is what the
round-trip property tests assert.  Exactness matters because the
dedupe machinery (``ats``/``dts`` residency intervals, partition probe
histories, punctuation pids and index counts) is what guarantees a
resumed run emits each result pair exactly once; an approximate
restore would silently duplicate or drop pairs.

Structures covered:

* :class:`~repro.storage.partition.StateEntry` /
  :class:`~repro.storage.partition.HybridPartition` — including the
  governor's **cold tier** (demoted-but-memory-resident entries keep
  their order and their ``dts = inf``);
* :class:`~repro.storage.hash_table.PartitionedHashTable`;
* :class:`~repro.punctuations.store.PunctuationStore` — restored by
  replaying live/tombstoned slots in arrival order, so pids, the
  ``total_added == len(entries)`` invariant, and every derived lookup
  structure come back identical;
* :class:`~repro.core.index.PunctuationIndex` — counts, indexed pids
  and the build cursor;
* :class:`~repro.core.state.JoinStateSide` — table + purge buffer +
  store + index + side counters;
* :class:`~repro.resilience.disorder.DisorderBuffer` — the pending
  heap and released frontier (the "ledger" of in-flight disorder).

Operator-level payloads (PJoin/NaryPJoin/XJoin/SHJ) are built by the
operators' own ``snapshot_state``/``restore_state`` hooks on top of
these primitives.  All ``restore_*_into`` functions mutate in place so
every external reference (governor registrations, validator contracts,
the ``states`` alias) stays valid.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple as PyTuple

from repro.core.index import PunctuationIndex
from repro.core.state import JoinStateSide
from repro.perf.interval import RangeIntervalIndex
from repro.punctuations.store import PunctuationStore
from repro.resilience.disorder import DisorderBuffer
from repro.storage.hash_table import PartitionedHashTable
from repro.storage.partition import HybridPartition, StateEntry
from repro.tuples.schema import Schema

SNAPSHOT_VERSION = 1

EntrySnap = PyTuple[Any, Any, Any, float, float, Any]

_SIDE_COUNTERS = (
    "unexploitable_punctuations",
    "duplicate_punctuations",
    "tuples_inserted",
    "tuples_discarded",
    "tuples_buffered",
)

_DISORDER_COUNTERS = ("items_buffered", "reordered", "late_releases", "max_held")


# ---------------------------------------------------------------------------
# State entries and partitions
# ---------------------------------------------------------------------------


def snapshot_entry(entry: StateEntry) -> EntrySnap:
    return (
        entry.tup,
        entry.join_value,
        entry.join_hash,
        entry.ats,
        entry.dts,
        entry.pid,
    )


def restore_entry(snap: EntrySnap) -> StateEntry:
    tup, join_value, join_hash, ats, dts, pid = snap
    entry = StateEntry(tup, join_value, ats, join_hash)
    entry.dts = dts
    entry.pid = pid
    return entry


def snapshot_partition(part: HybridPartition) -> Dict[str, Any]:
    return {
        # Memory as ordered (value, entries) pairs: dict insertion
        # order is part of the structure (probe results iterate it).
        "memory": [
            (value, [snapshot_entry(e) for e in entries])
            for value, entries in part.memory.items()
        ],
        "cold": [snapshot_entry(e) for e in part.cold],
        "disk": [snapshot_entry(e) for e in part.disk],
        "probe_history": list(part.probe_history),
        "last_insert_ts": part.last_insert_ts,
        "last_spill_ts": part.last_spill_ts,
    }


def restore_partition_into(part: HybridPartition, snap: Dict[str, Any]) -> None:
    part.memory = {}
    part.memory_count = 0
    for value, entries in snap["memory"]:
        restored = [restore_entry(e) for e in entries]
        part.memory[value] = restored
        part.memory_count += len(restored)
    part.cold = [restore_entry(e) for e in snap["cold"]]
    part.disk = [restore_entry(e) for e in snap["disk"]]
    part.probe_history = list(snap["probe_history"])
    part.last_insert_ts = snap["last_insert_ts"]
    part.last_spill_ts = snap["last_spill_ts"]


# ---------------------------------------------------------------------------
# Hash tables
# ---------------------------------------------------------------------------


def snapshot_table(table: PartitionedHashTable) -> Dict[str, Any]:
    return {
        "n_partitions": table.n_partitions,
        "partitions": [snapshot_partition(p) for p in table.partitions],
        "total_inserted": table.total_inserted,
    }


def restore_table_into(table: PartitionedHashTable, snap: Dict[str, Any]) -> None:
    n = snap["n_partitions"]
    table.n_partitions = n
    table.partitions = [HybridPartition(i) for i in range(n)]
    for part, psnap in zip(table.partitions, snap["partitions"]):
        restore_partition_into(part, psnap)
    table.memory_count = sum(p.memory_count for p in table.partitions)
    table.total_inserted = snap["total_inserted"]


# ---------------------------------------------------------------------------
# Punctuation stores and indexes
# ---------------------------------------------------------------------------


def snapshot_store(store: PunctuationStore) -> Dict[str, Any]:
    # Live and tombstoned slots in arrival order; punctuations are
    # immutable and shared by reference.
    return {
        "entries": list(store._entries),
        "check_prefix_consistency": store.check_prefix_consistency,
    }


def restore_store_into(store: PunctuationStore, snap: Dict[str, Any]) -> None:
    """Rebuild a store by replaying its slots in arrival order.

    A live slot goes through :meth:`PunctuationStore.add` (rebuilding
    every derived lookup structure); a tombstone reserves its pid, so
    ids and the ``total_added == len(entries)`` invariant round-trip.
    """
    store._entries = []
    store._constants = {}
    store._ranges = RangeIntervalIndex()
    store._enum_values = {}
    store._enum_patterns = {}
    store._wildcards = []
    store._general = []
    store._live_count = 0
    store.total_added = 0
    # The replayed punctuations already passed the consistency check
    # once; re-checking would re-pay the O(n^2) cost for nothing.
    store.check_prefix_consistency = False
    for punct in snap["entries"]:
        if punct is None:
            store._entries.append(None)
            store.total_added += 1
        else:
            store.add(punct)
    store.check_prefix_consistency = snap["check_prefix_consistency"]


def snapshot_index(index: PunctuationIndex) -> Dict[str, Any]:
    return {
        "counts": dict(index._counts),
        "indexed_pids": sorted(index._indexed_pids),
        "cursor": index._cursor,
        "build_runs": index.build_runs,
    }


def restore_index_into(index: PunctuationIndex, snap: Dict[str, Any]) -> None:
    index._counts = dict(snap["counts"])
    index._indexed_pids = set(snap["indexed_pids"])
    index._cursor = snap["cursor"]
    index.build_runs = snap["build_runs"]


# ---------------------------------------------------------------------------
# Join state sides
# ---------------------------------------------------------------------------


def snapshot_side(side: JoinStateSide) -> Dict[str, Any]:
    return {
        "version": SNAPSHOT_VERSION,
        "side_name": side.side_name,
        "table": snapshot_table(side.table),
        "purge_buffer": [snapshot_entry(e) for e in side.purge_buffer],
        "store": snapshot_store(side.store),
        "index": snapshot_index(side.index),
        "counters": {key: getattr(side, key) for key in _SIDE_COUNTERS},
    }


def restore_side_into(side: JoinStateSide, snap: Dict[str, Any]) -> None:
    restore_table_into(side.table, snap["table"])
    side.purge_buffer = [restore_entry(e) for e in snap["purge_buffer"]]
    restore_store_into(side.store, snap["store"])
    restore_index_into(side.index, snap["index"])
    for key, value in snap["counters"].items():
        setattr(side, key, value)


def restore_side(schema: Schema, join_field: str, snap: Dict[str, Any]) -> JoinStateSide:
    """Build a fresh :class:`JoinStateSide` from a snapshot."""
    side = JoinStateSide(
        schema,
        join_field,
        snap["table"]["n_partitions"],
        side_name=snap["side_name"],
    )
    restore_side_into(side, snap)
    return side


# ---------------------------------------------------------------------------
# Disorder-buffer ledger
# ---------------------------------------------------------------------------


def snapshot_disorder_buffer(buf: DisorderBuffer) -> Dict[str, Any]:
    return {
        "slack_ms": buf.slack_ms,
        "heap": list(buf._heap),
        "seq": buf._seq,
        "max_item_ts": buf._max_item_ts,
        "released_frontier": buf._released_frontier,
        "counters": {key: getattr(buf, key) for key in _DISORDER_COUNTERS},
    }


def restore_disorder_buffer_into(buf: DisorderBuffer, snap: Dict[str, Any]) -> None:
    buf.slack_ms = snap["slack_ms"]
    # The stored list is already heap-ordered; copying preserves it.
    buf._heap = list(snap["heap"])
    buf._seq = snap["seq"]
    buf._max_item_ts = snap["max_item_ts"]
    buf._released_frontier = snap["released_frontier"]
    for key, value in snap["counters"].items():
        setattr(buf, key, value)


# ---------------------------------------------------------------------------
# Validator (tracked stores + counters)
# ---------------------------------------------------------------------------


def snapshot_validator(validator: Any) -> Dict[str, Any]:
    """Counters plus any private tracked punctuation stores.

    ``StateSideContract`` views delegate to the sides' own stores
    (already covered by :func:`snapshot_side`); only the tracked views
    XJoin/SHJ use under non-trust policies carry state of their own.
    """
    tracked: List[Any] = []
    for contract in validator.contracts:
        store = getattr(contract, "store", None)
        tracked.append(snapshot_store(store) if store is not None else None)
    return {
        "violations": validator.violations,
        "quarantined": validator.quarantined,
        "punctuations_retracted": validator.punctuations_retracted,
        "tracked_stores": tracked,
    }


def restore_validator_into(validator: Any, snap: Dict[str, Any]) -> None:
    validator.violations = snap["violations"]
    validator.quarantined = snap["quarantined"]
    validator.punctuations_retracted = snap["punctuations_retracted"]
    for contract, store_snap in zip(validator.contracts, snap["tracked_stores"]):
        store = getattr(contract, "store", None)
        if store is not None and store_snap is not None:
            restore_store_into(store, store_snap)


# ---------------------------------------------------------------------------
# Shared operator-counter helpers (used by the operator hooks)
# ---------------------------------------------------------------------------

BASE_OPERATOR_COUNTERS = (
    "items_processed",
    "tuples_in",
    "punctuations_in",
    "tuples_out",
    "punctuations_out",
    "busy_time",
    "max_queue_length",
)

BINARY_JOIN_COUNTERS = ("results_produced", "probes", "probe_matches", "insertions")

MONITOR_FIELDS = (
    "punctuations_since_purge",
    "punctuations_since_propagation",
    "pairs_since_propagation",
    "last_propagation_time",
    "purge_events_fired",
    "state_full_events_fired",
    "propagation_events_fired",
)


def snapshot_attrs(obj: Any, names: PyTuple[str, ...]) -> Dict[str, Any]:
    return {name: getattr(obj, name) for name in names}


def restore_attrs(obj: Any, snap: Dict[str, Any]) -> None:
    for name, value in snap.items():
        setattr(obj, name, value)
