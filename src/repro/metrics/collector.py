"""The metrics sampler.

Samples registered gauges at fixed virtual-time intervals on the shared
simulation engine.  Sample events are pre-scheduled over a known
horizon (workload end times are known up front), so the collector never
keeps an otherwise-finished simulation alive.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SimulationError
from repro.metrics.series import TimeSeries
from repro.sim.engine import SimulationEngine

Gauge = Callable[[], float]


class MetricsCollector:
    """Periodic sampling of named gauges into :class:`TimeSeries`.

    Parameters
    ----------
    engine:
        The shared simulation engine.
    interval_ms:
        Virtual time between samples.
    """

    def __init__(self, engine: SimulationEngine, interval_ms: float = 100.0) -> None:
        if interval_ms <= 0:
            raise SimulationError(f"interval_ms must be positive, got {interval_ms}")
        self.engine = engine
        self.interval_ms = interval_ms
        self._gauges: Dict[str, Gauge] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._started = False

    def register_gauge(self, name: str, gauge: Gauge) -> None:
        """Track ``gauge()`` under *name*; must precede :meth:`start`."""
        if self._started:
            raise SimulationError("cannot register gauges after start()")
        if name in self._gauges:
            raise SimulationError(f"gauge {name!r} is already registered")
        self._gauges[name] = gauge
        self.series[name] = TimeSeries(name=name)

    def start(self, horizon_ms: float) -> None:
        """Pre-schedule samples from now until *horizon_ms* (absolute)."""
        if self._started:
            raise SimulationError("collector already started")
        self._started = True
        sample = self._sample
        interval = self.interval_ms
        events = []
        time = self.engine.now
        while time <= horizon_ms:
            events.append((time, sample))
            time += interval
        # One heapify instead of thousands of pushes; the engine assigns
        # tie-breaker sequence numbers in list order, so execution order
        # is identical to the schedule_at() loop this replaces.
        self.engine.schedule_many(events)

    def _sample(self) -> None:
        now = self.engine.now
        for name, gauge in self._gauges.items():
            self.series[name].append(now, float(gauge()))

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __repr__(self) -> str:
        return (
            f"MetricsCollector(interval={self.interval_ms:g}ms, "
            f"gauges={sorted(self._gauges)})"
        )
