"""Metrics collection and reporting for experiments.

A :class:`~repro.metrics.collector.MetricsCollector` samples registered
gauges (state sizes, output counters) at fixed virtual-time intervals —
the time series behind every figure in the paper — and
:mod:`~repro.metrics.report` renders them as ASCII tables and charts
for the benchmark harness.
"""

from repro.metrics.series import TimeSeries
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import render_table, render_ascii_chart, format_number
from repro.metrics.analysis import (
    first_crossover,
    growth_ratio,
    is_bounded,
    linear_fit,
    relative_level,
    steadiness,
)

__all__ = [
    "TimeSeries",
    "MetricsCollector",
    "render_table",
    "render_ascii_chart",
    "format_number",
    "linear_fit",
    "growth_ratio",
    "is_bounded",
    "steadiness",
    "first_crossover",
    "relative_level",
]
