"""Time series of sampled measurements."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Optional, Tuple as PyTuple


class TimeSeries:
    """A sequence of ``(virtual_time, value)`` points, time-ordered."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Record one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"series {self.name!r}: time {time} decreases "
                f"(last was {self.times[-1]})"
            )
        self.times.append(time)
        self.values.append(value)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def mean(self) -> float:
        """Arithmetic mean of the sampled values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def time_weighted_mean(self) -> float:
        """Mean weighted by the interval each sample covers.

        The paper's "average size of the state" over an execution; more
        faithful than a plain mean when sampling intervals vary.
        """
        if len(self.values) < 2:
            return self.mean()
        total = 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.mean()
        for i in range(len(self.values) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total / span

    def value_at(self, time: float) -> float:
        """The most recent sample at or before *time* (0.0 before any)."""
        index = bisect_right(self.times, time) - 1
        if index < 0:
            return 0.0
        return self.values[index]

    def window_mean(self, start: float, end: float) -> float:
        """Mean of samples whose times fall in ``[start, end)``."""
        lo = bisect_left(self.times, start)
        hi = bisect_left(self.times, end)
        if hi <= lo:
            return 0.0
        chunk = self.values[lo:hi]
        return sum(chunk) / len(chunk)

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------

    def rate_per_ms(self) -> "TimeSeries":
        """Differences between consecutive samples over elapsed time.

        Turns a cumulative-count series (e.g. result tuples output) into
        an output-*rate* series — the paper's Figure 7/9/11/12 metric.
        """
        rate = TimeSeries(name=f"{self.name}.rate")
        for i in range(1, len(self.values)):
            dt = self.times[i] - self.times[i - 1]
            if dt <= 0:
                continue
            rate.append(self.times[i], (self.values[i] - self.values[i - 1]) / dt)
        return rate

    def downsampled(self, every: int) -> "TimeSeries":
        """Keep every *every*-th point (for compact report tables)."""
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        out = TimeSeries(name=self.name)
        for i in range(0, len(self.values), every):
            out.append(self.times[i], self.values[i])
        return out

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def points(self) -> Iterator[PyTuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __len__(self) -> int:
        return len(self.values)

    def __bool__(self) -> bool:
        return bool(self.values)

    def __repr__(self) -> str:
        if not self.values:
            return f"TimeSeries({self.name!r}, empty)"
        return (
            f"TimeSeries({self.name!r}, n={len(self.values)}, "
            f"mean={self.mean():.2f}, max={self.maximum():.2f})"
        )
