"""Plain-text rendering of experiment results.

The benchmark harness prints its figures as ASCII tables and charts so
``pytest benchmarks/ --benchmark-only`` output reads like the paper's
evaluation section.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.metrics.series import TimeSeries


def format_number(value: float) -> str:
    """Compact human formatting: ints plain, floats to 2–3 significants."""
    if isinstance(value, bool):
        return str(value)
    if float(value).is_integer():
        return f"{int(value):,}"
    if abs(value) >= 100:
        return f"{value:,.1f}"
    if abs(value) >= 1:
        return f"{value:,.2f}"
    return f"{value:.4f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [
                format_number(c) if isinstance(c, (int, float)) else str(c)
                for c in row
            ]
        )
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_ascii_chart(
    series_by_label: Dict[str, TimeSeries],
    n_buckets: int = 12,
    width: int = 40,
    title: str = "",
) -> str:
    """Render several series as rows of horizontal bars over time buckets.

    Each series is averaged inside ``n_buckets`` equal time buckets; the
    bar length is proportional to the bucket mean relative to the global
    maximum, so relative magnitudes (the paper's "who wins") are visible
    at a glance.
    """
    populated = {k: s for k, s in series_by_label.items() if len(s) > 0}
    if not populated:
        return f"{title}\n(no data)"
    t_min = min(s.times[0] for s in populated.values())
    t_max = max(s.times[-1] for s in populated.values())
    span = max(t_max - t_min, 1e-9)
    bucket = span / n_buckets
    bucket_means: Dict[str, List[float]] = {}
    for label, series in populated.items():
        means = []
        for i in range(n_buckets):
            start = t_min + i * bucket
            means.append(series.window_mean(start, start + bucket))
        bucket_means[label] = means
    global_max = max(max(m) for m in bucket_means.values()) or 1.0
    lines = []
    if title:
        lines.append(title)
    for label, means in bucket_means.items():
        lines.append(f"{label}:")
        for i, mean in enumerate(means):
            bar = "#" * max(0, round(mean / global_max * width))
            start = t_min + i * bucket
            lines.append(f"  t={start:9.0f}ms |{bar:<{width}}| {format_number(mean)}")
    return "\n".join(lines)


def series_summary_row(label: str, series: TimeSeries) -> List[object]:
    """A standard summary row: label, mean, max, final value."""
    return [label, series.time_weighted_mean(), series.maximum(), series.last()]
