"""Statistical analysis of experiment series.

Small, dependency-free tools for the questions the paper's figures
ask of a time series: *does it grow, and how fast?* (state curves),
*is it steady?* (output rates), *where do two curves cross?* (PJoin
overtaking XJoin).  The figure shape checks and EXPERIMENTS.md use
these instead of ad-hoc point comparisons.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple as PyTuple

from repro.metrics.series import TimeSeries


def linear_fit(series: TimeSeries) -> PyTuple[float, float]:
    """Least-squares slope and intercept of value over time.

    Returns ``(slope, intercept)`` with slope in value-units per virtual
    millisecond.  A series with fewer than two points (or zero time
    variance) fits a flat line at its mean.
    """
    n = len(series)
    if n < 2:
        return 0.0, series.mean()
    mean_t = sum(series.times) / n
    mean_v = sum(series.values) / n
    var_t = sum((t - mean_t) ** 2 for t in series.times)
    if var_t == 0:
        return 0.0, mean_v
    cov = sum(
        (t - mean_t) * (v - mean_v)
        for t, v in zip(series.times, series.values)
    )
    slope = cov / var_t
    return slope, mean_v - slope * mean_t


def growth_ratio(series: TimeSeries) -> float:
    """How much of the final value is explained by linear growth.

    ``1.0`` means the series climbs steadily to its end (XJoin's state);
    values near ``0`` mean it hovers around a plateau (PJoin's state).
    Computed as fitted rise over the observation span divided by the
    series maximum.
    """
    if len(series) < 2:
        return 0.0
    slope, _ = linear_fit(series)
    span = series.times[-1] - series.times[0]
    peak = series.maximum()
    if peak <= 0:
        return 0.0
    return max(0.0, slope * span / peak)


def is_bounded(series: TimeSeries, tolerance: float = 0.35) -> bool:
    """Does the series stay around a plateau rather than keep growing?

    True when linear growth explains less than *tolerance* of the peak.
    """
    return growth_ratio(series) < tolerance


def steadiness(series: TimeSeries, n_windows: int = 5) -> float:
    """Relative spread of windowed means: 0 = perfectly steady.

    Splits the observation span into *n_windows* equal windows and
    returns ``(max(window_mean) - min(window_mean)) / overall_mean``.
    The first window is skipped (warm-up).
    """
    if len(series) < 2:
        return 0.0
    t0, t1 = series.times[0], series.times[-1]
    if t1 <= t0:
        return 0.0
    width = (t1 - t0) / n_windows
    means = []
    for i in range(1, n_windows):
        start = t0 + i * width
        means.append(series.window_mean(start, start + width))
    overall = sum(means) / len(means) if means else 0.0
    if overall == 0:
        return 0.0
    return (max(means) - min(means)) / overall


def first_crossover(
    a: TimeSeries, b: TimeSeries, after: float = 0.0
) -> Optional[float]:
    """The first time *a*'s value overtakes *b*'s, or ``None``.

    Series are compared by step interpolation on the union of their
    sample times.  Useful for "where does PJoin's cumulative output pass
    XJoin's" questions.
    """
    times = sorted(set(a.times) | set(b.times))
    previous_sign = None
    for t in times:
        if t < after:
            continue
        diff = a.value_at(t) - b.value_at(t)
        sign = math.copysign(1.0, diff) if diff != 0 else 0.0
        if previous_sign is not None and previous_sign < 0 and sign > 0:
            return t
        if sign != 0:
            previous_sign = sign
    return None


def relative_level(a: TimeSeries, b: TimeSeries) -> float:
    """Ratio of time-weighted means, ``a / b`` (``inf`` if b is flat 0)."""
    denominator = b.time_weighted_mean()
    if denominator == 0:
        return math.inf
    return a.time_weighted_mean() / denominator
