"""Figure 10 — asymmetric punctuation inter-arrival, state requirement.

Stream A punctuates every ~10 tuples; stream B varies (10/20/40).
Expected shape: the larger the rate difference, the larger the A state,
while the B state stays insignificant (most B tuples are dropped on the
fly by A punctuations).
"""

from repro.experiments.figures import figure10


def test_figure10_asymmetric_state(figure_bench):
    figure_bench(figure10, chart_series="state_a")
