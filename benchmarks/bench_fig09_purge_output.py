"""Figure 9 — cumulative output for purge thresholds 1/100/400/800.

Expected shape: up to a limit, a higher purge threshold gives a higher
output rate (fewer purge activations); past the optimum the growing
state makes probing so costly that PJoin-400 and PJoin-800 lose again.
"""

from repro.experiments.figures import figure9


def test_figure9_purge_thresholds_output(figure_bench):
    figure_bench(figure9, chart_series="output")
