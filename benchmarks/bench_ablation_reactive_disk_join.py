"""Ablation A7 — reactive disk join during stream lulls."""

from repro.experiments.ablations import ablation_reactive_disk_join


def test_ablation_reactive_disk_join(figure_bench):
    figure_bench(ablation_reactive_disk_join, chart_series="output")
