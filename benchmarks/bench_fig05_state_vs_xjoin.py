"""Figure 5 — PJoin-1 vs XJoin, total join-state size over time.

Punctuation inter-arrival 40 tuples/punctuation on both streams.
Expected shape: PJoin's state is almost insignificant compared to
XJoin's ever-growing state.
"""

from repro.experiments.figures import figure5


def test_figure5_state_vs_xjoin(figure_bench):
    figure_bench(figure5, chart_series="state_total")
