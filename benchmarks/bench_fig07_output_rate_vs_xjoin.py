"""Figure 7 — tuple output rate over time, PJoin vs XJoin (40 t/p).

Expected shape: PJoin maintains an almost steady output rate whereas
XJoin's rate drops as its growing state makes probing ever costlier.
"""

from repro.experiments.figures import figure7


def test_figure7_output_rate_vs_xjoin(figure_bench):
    figure_bench(figure7, chart_series="output")
