"""Shared machinery for the figure benchmarks.

Each benchmark runs one figure preset from
:mod:`repro.experiments.figures` (or an ablation), times it with
pytest-benchmark, prints the rendered report — the same table/series
the paper's figure shows — and saves it under ``benchmarks/reports/``.

Scale can be reduced for quick runs::

    REPRO_BENCH_SCALE=0.2 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "reports"


def bench_scale() -> float:
    """Benchmark scale factor, settable via ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture
def figure_bench(benchmark):
    """Run a figure function under pytest-benchmark and report it."""

    def run(figure_fn, chart_series: str = "state_total", **kwargs):
        kwargs.setdefault("scale", bench_scale())
        result = benchmark.pedantic(
            lambda: figure_fn(**kwargs), rounds=1, iterations=1
        )
        report = result.render(chart_series=chart_series)
        REPORT_DIR.mkdir(exist_ok=True)
        slug = result.figure_id.lower().replace(" ", "_")
        (REPORT_DIR / f"{slug}.txt").write_text(report + "\n")
        from repro.experiments.export import save_figure_json

        save_figure_json(result, REPORT_DIR / f"{slug}.json")
        print()
        print(report)
        failed = [check for check in result.checks if not check.passed]
        assert not failed, f"{result.figure_id} shape checks failed: {failed}"
        return result

    return run
