"""Figure 6 — PJoin state size vs punctuation inter-arrival (10/20/30).

Expected shape: the slower the punctuations, the larger the average
state ("as the punctuation inter-arrival increases, the average size of
the PJoin state becomes larger correspondingly").
"""

from repro.experiments.figures import figure6


def test_figure6_state_vs_punctuation_rate(figure_bench):
    figure_bench(figure6, chart_series="state_total")
