"""Figure 11 — asymmetric punctuation inter-arrival, output rate.

Expected shape: the slower the punctuation arrival, the greater the
tuple output rate — fewer purge activations mean less overhead.
"""

from repro.experiments.figures import figure11


def test_figure11_asymmetric_output(figure_bench):
    figure_bench(figure11, chart_series="output")
