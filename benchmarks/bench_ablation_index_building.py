"""Ablation A1 — eager vs lazy punctuation index building."""

from repro.experiments.ablations import ablation_index_building


def test_ablation_index_building(figure_bench):
    figure_bench(ablation_index_building, chart_series="punct_output")
