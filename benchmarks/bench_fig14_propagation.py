"""Figure 14 — punctuation propagation over time (ideal case).

Aligned constant punctuations every 40 tuples from both streams;
propagation triggered after each pair of equivalent punctuations.
Expected shape: a steady punctuation output rate over the whole run.
"""

from repro.experiments.figures import figure14


def test_figure14_propagation_rate(figure_bench):
    figure_bench(figure14, chart_series="punct_output")
