"""Figure 13 — state requirements for the Figure 12 configuration.

Expected shape: both PJoin variants keep a small bounded state while
XJoin grows; the lazy threshold costs only an insignificant increase.
"""

from repro.experiments.figures import figure13


def test_figure13_asymmetric_state_vs_xjoin(figure_bench):
    figure_bench(figure13, chart_series="state_total")
