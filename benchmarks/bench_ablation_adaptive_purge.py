"""Ablation A6 — adaptive purge-threshold control vs fixed thresholds."""

from repro.experiments.ablations import ablation_adaptive_purge


def test_ablation_adaptive_purge(figure_bench):
    figure_bench(ablation_adaptive_purge, chart_series="output")
