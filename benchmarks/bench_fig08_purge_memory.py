"""Figure 8 — eager vs lazy purge, memory overhead (10 t/p).

Expected shape: eager purge (PJoin-1) minimises the join state; lazy
purge (PJoin-10) needs somewhat more memory but stays bounded.
"""

from repro.experiments.figures import figure8


def test_figure8_eager_vs_lazy_memory(figure_bench):
    figure_bench(figure8, chart_series="state_total")
