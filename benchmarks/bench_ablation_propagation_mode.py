"""Ablation A2 — push(count) vs push(time) vs pull propagation."""

from repro.experiments.ablations import ablation_propagation_mode


def test_ablation_propagation_mode(figure_bench):
    figure_bench(ablation_propagation_mode, chart_series="punct_output")
