"""Ablation A4 — the on-the-fly drop's effect on the B state."""

from repro.experiments.ablations import ablation_on_the_fly_drop


def test_ablation_on_the_fly_drop(figure_bench):
    figure_bench(ablation_on_the_fly_drop, chart_series="state_b")
