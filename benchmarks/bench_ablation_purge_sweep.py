"""Ablation A3 — purge-threshold sweep locating the output optimum."""

from repro.experiments.ablations import ablation_purge_sweep


def test_ablation_purge_sweep(figure_bench):
    figure_bench(ablation_purge_sweep, chart_series="output")
