"""Figure 12 — PJoin vs XJoin output under asymmetric punctuations.

A = 10 t/p, B = 20 t/p.  Expected shape: eager PJoin-1 lags behind
XJoin (cost of frequent purging); lazy purge with a suitable threshold
makes PJoin at least as fast as XJoin.
"""

from repro.experiments.figures import figure12


def test_figure12_asymmetric_output_vs_xjoin(figure_bench):
    figure_bench(figure12, chart_series="output")
