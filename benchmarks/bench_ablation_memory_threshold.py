"""Ablation A5 — disk traffic under a tight memory threshold."""

from repro.experiments.ablations import ablation_memory_threshold


def test_ablation_memory_threshold(figure_bench):
    figure_bench(ablation_memory_threshold, chart_series="state_total")
