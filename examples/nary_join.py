#!/usr/bin/env python3
"""Three-way punctuated join (the paper's Section 6 n-ary extension).

An ad-tech-style scenario joined on a shared ``key`` (a campaign id):
impressions, clicks and conversions all stream in; each stream
punctuates a campaign once it ends.  The n-ary PJoin purges a
campaign's tuples only when *all other* streams have promised to stop
— the sound generalisation of the binary purge rule — and drops
arriving tuples on the fly once every other stream has punctuated
their key.

Run:
    python examples/nary_join.py
"""

import random

from repro import NaryPJoin, PJoinConfig, QueryPlan, Schema, Sink, Tuple
from repro.punctuations.punctuation import Punctuation

SCHEMAS = [
    Schema.of("key", "impression_id", name="Impressions"),
    Schema.of("key", "click_id", name="Clicks"),
    Schema.of("key", "conversion_id", name="Conversions"),
]
EVENTS_PER_CAMPAIGN = (6, 3, 2)  # impressions, clicks, conversions


def generate(n_campaigns=40, seed=3):
    """Three schedules: each campaign is active, then punctuated."""
    rng = random.Random(seed)
    schedules = [[], [], []]
    now = 0.0
    for campaign in range(n_campaigns):
        events = []
        for stream, per_campaign in enumerate(EVENTS_PER_CAMPAIGN):
            for i in range(per_campaign):
                events.append((rng.uniform(0.0, 50.0), stream, i))
        events.sort()
        for offset, stream, i in events:
            t = now + offset
            schedules[stream].append(
                (t, Tuple(SCHEMAS[stream], (campaign, i), ts=t))
            )
        close = now + 55.0
        for stream in range(3):
            schedules[stream].append(
                (close, Punctuation.on_field(SCHEMAS[stream], "key",
                                             campaign, ts=close))
            )
        now += rng.uniform(10.0, 25.0)
    # Campaigns overlap in time, so merge each stream into time order.
    # Validity is preserved: a campaign's events all precede its close.
    for schedule in schedules:
        schedule.sort(key=lambda pair: pair[0])
    return schedules


def main() -> None:
    schedules = generate()
    plan = QueryPlan()
    join = NaryPJoin(
        plan.engine, plan.cost_model, SCHEMAS, ["key", "key", "key"],
        config=PJoinConfig(
            purge_threshold=1,
            propagation_mode="push_count",
            propagate_count_threshold=3,
        ),
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    for port, schedule in enumerate(schedules):
        plan.add_source(schedule, join, port=port, name=SCHEMAS[port].name)
    plan.run()

    n_campaigns = 40
    expected_per_campaign = 1
    for count in EVENTS_PER_CAMPAIGN:
        expected_per_campaign *= count
    print("Three-way punctuated join: Impressions x Clicks x Conversions\n")
    print(f"  campaigns                  : {n_campaigns}")
    print(f"  results                    : {sink.tuple_count:,} "
          f"(= {n_campaigns} x "
          f"{'x'.join(map(str, EVENTS_PER_CAMPAIGN))} "
          f"= {n_campaigns * expected_per_campaign:,})")
    print(f"  final state (all 3 streams): {join.total_state_size()} tuples")
    print(f"  tuples purged              : {join.tuples_purged:,}")
    print(f"  dropped on the fly         : {join.tuples_dropped_on_fly:,}")
    print(f"  punctuations propagated    : {sink.punctuation_count}")
    assert sink.tuple_count == n_campaigns * expected_per_campaign
    print("\nEvery campaign's cross-product was produced exactly once, and")
    print("closed campaigns left the state as soon as all streams promised")
    print("no more events.")


if __name__ == "__main__":
    main()
