#!/usr/bin/env python3
"""The paper's running example: online auction monitoring (Figure 1).

Query (paper §2.1): join every item for sale (``Open``) with its bids
(``Bid``) on ``item_id``, then sum ``bid_increase`` per item that got
at least one bid.

The interesting part is what punctuations buy:

* the auction system embeds a punctuation into ``Bid`` when an item's
  auction closes, letting PJoin purge that item's Open tuple;
* ``item_id`` is unique in ``Open``, so a punctuation is derived after
  every Open tuple, letting PJoin drop late bids on the fly;
* PJoin *propagates* punctuations to the group-by, which can emit an
  item's final total the moment its auction closes rather than holding
  every group until end-of-stream.

Run:
    python examples/auction_monitoring.py
"""

from repro import PJoin, PJoinConfig, QueryPlan, Sink
from repro.operators.groupby import GroupBy, count_agg, sum_agg
from repro.workloads.auction import (
    BID_SCHEMA,
    OPEN_SCHEMA,
    AuctionSpec,
    AuctionWorkloadGenerator,
)


def build_plan(propagation: bool):
    spec = AuctionSpec(n_items=150, auction_duration_ms=100.0, seed=7)
    open_schedule, bid_schedule = AuctionWorkloadGenerator(spec).generate()
    plan = QueryPlan()
    config = PJoinConfig(
        purge_threshold=1,
        index_building="eager",
        propagation_mode="push_count" if propagation else "off",
        propagate_count_threshold=5,
    )
    join = PJoin(
        plan.engine, plan.cost_model, OPEN_SCHEMA, BID_SCHEMA,
        "item_id", "item_id", config=config, name="pjoin",
    )
    groupby = GroupBy(
        plan.engine, plan.cost_model, join.out_schema, "Open.item_id",
        [sum_agg("bid_increase", "total_increase"), count_agg("bids")],
        name="groupby",
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(groupby)
    groupby.connect(sink)
    plan.add_source(open_schedule, join, port=0, name="Open")
    plan.add_source(bid_schedule, join, port=1, name="Bid")
    return plan, join, groupby, sink


def main() -> None:
    print("Auction monitoring: SELECT item_id, SUM(bid_increase)")
    print("                    FROM Open JOIN Bid USING (item_id)")
    print("                    GROUP BY item_id;\n")
    for propagation in (True, False):
        plan, join, groupby, sink = build_plan(propagation)
        plan.run()
        early = sum(1 for t in sink.tuple_arrival_times if t < sink.eos_time)
        label = "with propagation   " if propagation else "without propagation"
        print(f"{label}: {sink.tuple_count} item totals, "
              f"{early} emitted before end-of-stream, "
              f"join state left: {join.total_state_size()} tuples, "
              f"bids dropped on the fly: {join.tuples_dropped_on_fly}")
        if propagation:
            sample = sorted(
                sink.results, key=lambda r: r["total_increase"], reverse=True
            )[:5]
            print("  top items by total bid increase:")
            for row in sample:
                print(
                    f"    item {row['Open.item_id']:>4}: "
                    f"+{row['total_increase']:8.2f} over {row['bids']} bids"
                )
    print("\nPunctuation propagation turns the blocking group-by into an")
    print("incremental one: totals stream out as auctions close.")


if __name__ == "__main__":
    main()
