#!/usr/bin/env python3
"""Tuning the purge threshold: the eager/lazy trade-off (paper §4.2).

Sweeps PJoin's purge threshold over a punctuation-dense workload and
prints the paper's trade-off as a table: eager purge (threshold 1)
minimises memory but pays a purge run per punctuation; lazy purge
amortises the scans but lets the state — and with it the probing cost —
grow.  Somewhere in between lies the throughput optimum.

Run:
    python examples/purge_strategy_tuning.py
"""

from repro import PJoinConfig, generate_workload
from repro.experiments.harness import pjoin_factory, run_join_experiment
from repro.metrics.report import render_table


def main() -> None:
    workload = generate_workload(
        n_tuples_per_stream=6000,
        punct_spacing_a=10,
        punct_spacing_b=10,
        seed=9,
    )
    thresholds = [1, 5, 20, 50, 100, 200, 400, 800]
    rows = []
    best = None
    for threshold in thresholds:
        run = run_join_experiment(
            pjoin_factory(PJoinConfig(purge_threshold=threshold)),
            workload,
            label=f"PJoin-{threshold}",
        )
        rows.append(
            [
                run.label,
                round(run.mean_state(), 1),
                round(run.max_state()),
                run.join.purge_runs,
                round(run.output_rate_second_half(), 2),
                round(run.duration_ms),
            ]
        )
        if best is None or run.duration_ms < best[1]:
            best = (threshold, run.duration_ms)
    print("Purge-threshold sweep "
          "(punctuation inter-arrival: 10 tuples/punctuation)\n")
    print(
        render_table(
            [
                "variant",
                "state mean",
                "state max",
                "purge runs",
                "rate late (t/ms)",
                "finished (ms)",
            ],
            rows,
        )
    )
    print(f"\nFastest finish: purge threshold {best[0]} "
          f"({best[1]:,.0f} virtual ms).")
    print("Eager purge buys minimum memory; a moderate lazy threshold buys")
    print("throughput — exactly the trade-off of the paper's Figures 8/9.")


if __name__ == "__main__":
    main()
