#!/usr/bin/env python3
"""Quickstart: join two punctuated streams with PJoin.

Builds the smallest possible end-to-end pipeline: a synthetic
many-to-many workload (the paper's benchmark parameters at reduced
scale), a PJoin with eager purge, and a sink.  Prints the headline
numbers the paper is about: result count, join-state size with and
without punctuation exploitation, and tuples purged.

Run:
    python examples/quickstart.py
"""

from repro import PJoin, PJoinConfig, QueryPlan, Sink, XJoin, generate_workload


def run_once(make_join, workload):
    """Run one join over the workload; return (join, sink)."""
    plan = QueryPlan()
    join = make_join(plan)
    sink = Sink(plan.engine, plan.cost_model, keep_items=False)
    join.connect(sink)
    plan.add_source(workload.schedule_a, join, port=0, name="A")
    plan.add_source(workload.schedule_b, join, port=1, name="B")
    plan.run()
    return join, sink


def main() -> None:
    # Two streams, Poisson tuple inter-arrival (mean 2 ms), one
    # punctuation per ~20 tuples signalling "this key is finished".
    workload = generate_workload(
        n_tuples_per_stream=3000,
        punct_spacing_a=20,
        punct_spacing_b=20,
        seed=42,
    )
    schema_a, schema_b = workload.schemas

    pjoin, pjoin_sink = run_once(
        lambda plan: PJoin(
            plan.engine, plan.cost_model, schema_a, schema_b, "key", "key",
            # A light lazy purge: every 10th punctuation triggers a run.
            config=PJoinConfig(purge_threshold=10),
        ),
        workload,
    )
    xjoin, xjoin_sink = run_once(
        lambda plan: XJoin(
            plan.engine, plan.cost_model, schema_a, schema_b, "key", "key",
        ),
        workload,
    )

    print("Quickstart: PJoin vs XJoin on a punctuated stream")
    print(f"  input tuples            : {2 * workload.spec.n_tuples_per_stream:,}")
    print(f"  PJoin results           : {pjoin_sink.tuple_count:,}")
    print(f"  XJoin results           : {xjoin_sink.tuple_count:,} (identical)")
    print(f"  PJoin final state       : {pjoin.total_state_size():,} tuples")
    print(f"  XJoin final state       : {xjoin.total_state_size():,} tuples")
    print(f"  PJoin tuples purged     : {pjoin.tuples_purged:,}")
    print(f"  PJoin finished at       : {pjoin_sink.eos_time:,.0f} virtual ms")
    print(f"  XJoin finished at       : {xjoin_sink.eos_time:,.0f} virtual ms")
    assert pjoin_sink.tuple_count == xjoin_sink.tuple_count
    print("\nSame answers, a fraction of the state — that is the paper's point.")


if __name__ == "__main__":
    main()
