#!/usr/bin/env python3
"""Sensor-network monitoring with epoch punctuations.

Sensor readings stream in per collection epoch; monitoring queries ask
for the readings of an epoch.  When an epoch's collection round closes,
the base station punctuates both streams — so the join can retire the
epoch's readings immediately instead of keeping an unbounded history.

Also demonstrates the *windowed* PJoin (paper §6): a sliding window
bounds the state even where punctuations are sparse, and the two
mechanisms compose.

Run:
    python examples/sensor_network.py
"""

from repro import PJoin, PJoinConfig, QueryPlan, Sink, WindowedPJoin
from repro.workloads.sensors import (
    QUERIES_SCHEMA,
    READINGS_SCHEMA,
    SensorSpec,
    SensorWorkloadGenerator,
)


def run(join_cls, **join_kwargs):
    spec = SensorSpec(n_epochs=200, n_sensors=12, queries_per_epoch=3, seed=5)
    readings, queries = SensorWorkloadGenerator(spec).generate()
    plan = QueryPlan()
    join = join_cls(
        plan.engine, plan.cost_model, READINGS_SCHEMA, QUERIES_SCHEMA,
        "epoch", "epoch",
        config=PJoinConfig(purge_threshold=1),
        **join_kwargs,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=False)
    join.connect(sink)
    plan.add_source(readings, join, port=0, name="Readings")
    plan.add_source(queries, join, port=1, name="Queries")
    plan.run()
    return spec, join, sink


def main() -> None:
    print("Sensor network: joining readings with per-epoch queries\n")
    spec, pjoin, sink = run(PJoin)
    expected = spec.n_epochs * spec.n_sensors * spec.queries_per_epoch
    print(f"  epochs x sensors x queries = {spec.n_epochs} x "
          f"{spec.n_sensors} x {spec.queries_per_epoch}")
    print(f"  join results                : {sink.tuple_count:,} "
          f"(expected {expected:,})")
    print(f"  PJoin final state           : {pjoin.total_state_size()} tuples "
          f"(one epoch in flight at a time)")
    print(f"  readings purged by epochs   : {pjoin.tuples_purged:,}")

    _spec, wjoin, wsink = run(WindowedPJoin, window_ms=2 * 50.0)
    print("\n  WindowedPJoin (2-epoch sliding window on top of punctuations):")
    print(f"  join results                : {wsink.tuple_count:,}")
    print(f"  expired by the window       : {wjoin.tuples_expired:,}")
    print(f"  final state                 : {wjoin.total_state_size()} tuples")
    print("\nPunctuations retire finished epochs exactly; the window is a")
    print("belt-and-braces bound for streams whose punctuations may lag.")


if __name__ == "__main__":
    main()
