#!/usr/bin/env python3
"""Deriving punctuations from static constraints (paper §1.1).

Some sources never embed punctuations — but the query system can derive
them from constraints it knows statically.  This example builds a log
pipeline:

* events arrive with a non-decreasing ``epoch`` (ordered arrival) but
  shuffled *within* an epoch — the classic slightly-out-of-order log;
* :class:`OrderedArrivalPunctuator` derives watermark punctuations
  ("every epoch below e is finished") from the order constraint;
* a :class:`PunctuationSort` uses those watermarks to emit the log in
  global epoch order *while streaming* — a blocking sort, unblocked;
* a :class:`DuplicateElimination` downstream uses the same punctuations
  to keep its seen-set tiny instead of remembering every event forever.

Run:
    python examples/derived_punctuations.py
"""

import random

from repro import QueryPlan, Schema, Sink, Tuple
from repro.operators.dupelim import DuplicateElimination, PunctuationSort
from repro.punctuations.derive import OrderedArrivalPunctuator, annotate_schedule
from repro.sim.trace import Tracer

LOG_SCHEMA = Schema.of("epoch", "event_id", name="Log")


def generate_log(n_epochs=300, events_per_epoch=5, duplicate_rate=0.2, seed=13):
    """A log whose epochs advance monotonically, shuffled within epochs,
    with some duplicated deliveries (an at-least-once transport)."""
    rng = random.Random(seed)
    schedule = []
    t = 0.0
    for epoch in range(n_epochs):
        events = []
        for i in range(events_per_epoch):
            events.append((epoch, epoch * 1000 + i))
            if rng.random() < duplicate_rate:
                events.append((epoch, epoch * 1000 + i))  # duplicate
        rng.shuffle(events)
        for epoch_value, event_id in events:
            t += rng.expovariate(0.5)
            schedule.append(
                (t, Tuple(LOG_SCHEMA, (epoch_value, event_id), ts=t))
            )
    return schedule


def main() -> None:
    raw = generate_log()
    n_raw = len(raw)
    punctuator = OrderedArrivalPunctuator(LOG_SCHEMA, "epoch")
    annotated = annotate_schedule(raw, punctuator)

    plan = QueryPlan()
    plan.engine.tracer = Tracer(actions=["purge"])
    sort = PunctuationSort(plan.engine, plan.cost_model, LOG_SCHEMA, "epoch")
    dedup = DuplicateElimination(plan.engine, plan.cost_model, LOG_SCHEMA)
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    sort.connect(dedup)
    dedup.connect(sink)
    plan.add_source(annotated, sort, name="log")
    plan.run()

    epochs = [t["epoch"] for t in sink.results]
    early = sum(1 for t in sink.tuple_arrival_times if t < sink.eos_time)
    print("Derived punctuations: ordered log -> watermarks -> sort -> dedup\n")
    print(f"  raw events (with duplicates)  : {n_raw:,}")
    print(f"  punctuations derived          : {punctuator.punctuations_derived:,}")
    print(f"  distinct events output        : {sink.tuple_count:,}")
    print(f"  duplicates suppressed         : {dedup.duplicates_suppressed:,}")
    print(f"  output globally epoch-ordered : {epochs == sorted(epochs)}")
    print(f"  emitted before end-of-stream  : {early:,} "
          f"({100 * early // max(sink.tuple_count, 1)}%)")
    print(f"  dedup seen-set at the end     : {dedup.state_size} entries "
          f"(purged {dedup.entries_purged:,})")
    assert epochs == sorted(epochs)
    print("\nNo source embedded a single punctuation — the order constraint")
    print("alone unblocked the sort and bounded the dedup state.")


if __name__ == "__main__":
    main()
