#!/usr/bin/env python3
"""Compare two benchmark-report archives (regression tooling).

``pytest benchmarks/ --benchmark-only`` archives each figure's
measurements as JSON under ``benchmarks/reports/``.  This tool diffs
two such directories — e.g. reports saved before and after a change —
and prints, per figure and variant, how the headline metrics moved.

Usage:
    python tools/compare_runs.py OLD_DIR NEW_DIR [--threshold 0.05]
    python tools/compare_runs.py OLD_DIR NEW_DIR --counters
    python tools/compare_runs.py old_manifest.json new_manifest.json
    python tools/compare_runs.py BENCH_old.json BENCH_new.json --bench

With ``--counters`` the diff descends into each run's manifest (format
version 2 reports) and compares the per-operator counter registries —
probes, matches, purged tuples, disk I/O, punctuation flow — instead of
only the headline summary metrics.  Two bare manifest JSON files (as
written by ``repro trace ... --manifest``) can also be compared
directly; their counters are always diffed.

With ``--bench`` the two arguments are wall-clock benchmark reports as
written by ``repro bench`` (``BENCH_<rev>.json``); the diff covers wall
time, events/s, and deterministic-outcome drift, gated by
``--max-slowdown`` instead of ``--threshold``.  When both reports carry
the per-layer overhead matrix (``repro bench --layer-matrix``, format 2)
the table gains a "vs baseline" column showing how each feature layer's
overhead moved; format-1 reports without the matrix compare as before.

Exit status 1 when any metric moved more than the threshold (relative),
so it can serve as a CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

from repro.experiments.export import load_figure_json
from repro.metrics.report import render_table
from repro.obs.manifest import aggregate_shard_counters, diff_counters

METRICS = ("results", "mean_state", "max_state", "duration_ms",
           "punctuations_out")


def load_dir(path: Path) -> Dict[str, dict]:
    figures = {}
    for json_path in sorted(path.glob("*.json")):
        try:
            data = load_figure_json(json_path)
        except ValueError as exc:
            print(f"skipping {json_path}: {exc}", file=sys.stderr)
            continue
        figures[data["figure_id"]] = data
    return figures


def relative_change(old: float, new: float) -> float:
    if old == new:
        return 0.0
    if old == 0:
        return float("inf")
    return (new - old) / abs(old)


def counter_rows(
    scope: str,
    old_manifest: dict,
    new_manifest: dict,
    threshold: float,
) -> List[List[object]]:
    """Render-ready rows for every counter that moved past *threshold*.

    Per-shard counter namespaces (``pjoin.shard0`` …) are folded into
    their logical operator on both sides first, so a sharded manifest
    diffs cleanly against an unsharded one.
    """
    rows: List[List[object]] = []
    for op_name, counter, old_value, new_value, change in diff_counters(
        aggregate_shard_counters(old_manifest),
        aggregate_shard_counters(new_manifest),
        threshold=threshold,
    ):
        rows.append(
            [
                scope,
                f"{op_name}.{counter}",
                round(old_value, 2),
                round(new_value, 2),
                f"{change:+.1%}" if change != float("inf") else "new",
            ]
        )
    return rows


def compare_manifests(old_path: Path, new_path: Path, threshold: float) -> int:
    """Diff the counter registries of two bare manifest JSON files."""
    old_manifest = json.loads(old_path.read_text())
    new_manifest = json.loads(new_path.read_text())
    rows = counter_rows(
        old_manifest.get("label", old_path.stem), old_manifest, new_manifest,
        threshold,
    )
    if rows:
        print(render_table(["run", "counter", "old", "new", "change"], rows))
    else:
        print(f"no counter moved more than {threshold:.0%}")
    return 1 if rows else 0


def compare_counters(old_dir: Path, new_dir: Path, threshold: float) -> int:
    """Diff the per-run manifest counters of two report directories."""
    old_figures = load_dir(old_dir)
    new_figures = load_dir(new_dir)
    shared = sorted(set(old_figures) & set(new_figures))
    rows: List[List[object]] = []
    for figure_id in shared:
        old_runs = {r["label"]: r.get("manifest") or {}
                    for r in old_figures[figure_id]["runs"]}
        new_runs = {r["label"]: r.get("manifest") or {}
                    for r in new_figures[figure_id]["runs"]}
        for label in sorted(set(old_runs) & set(new_runs)):
            rows.extend(counter_rows(
                f"{figure_id}/{label}", old_runs[label], new_runs[label],
                threshold,
            ))
    if rows:
        print(render_table(["run", "counter", "old", "new", "change"], rows))
    else:
        print(f"no counter moved more than {threshold:.0%} across "
              f"{len(shared)} shared figures")
    return 1 if rows else 0


def compare_bench(old_path: Path, new_path: Path, max_slowdown: float) -> int:
    """Diff two ``repro bench`` reports (BENCH_<rev>.json files)."""
    from repro.perf.bench import compare_reports, render_report

    old_report = json.loads(old_path.read_text())
    new_report = json.loads(new_path.read_text())
    comparison = compare_reports(new_report, old_report,
                                 max_slowdown=max_slowdown)
    # render_report prints the current run's table plus the comparison
    # block, which is exactly the diff view we want here.
    print(render_report({**new_report, "comparison": comparison}))
    return 0 if comparison["ok"] else 1


def compare(old_dir: Path, new_dir: Path, threshold: float) -> int:
    old_figures = load_dir(old_dir)
    new_figures = load_dir(new_dir)
    shared = sorted(set(old_figures) & set(new_figures))
    only_old = sorted(set(old_figures) - set(new_figures))
    only_new = sorted(set(new_figures) - set(old_figures))
    if only_old:
        print(f"only in {old_dir}: {only_old}")
    if only_new:
        print(f"only in {new_dir}: {only_new}")
    regressions = 0
    rows: List[List[object]] = []
    for figure_id in shared:
        old_runs = {r["label"]: r["summary"] for r in old_figures[figure_id]["runs"]}
        new_runs = {r["label"]: r["summary"] for r in new_figures[figure_id]["runs"]}
        for label in sorted(set(old_runs) & set(new_runs)):
            for metric in METRICS:
                old_value = old_runs[label].get(metric, 0) or 0
                new_value = new_runs[label].get(metric, 0) or 0
                change = relative_change(float(old_value), float(new_value))
                if abs(change) > threshold:
                    regressions += 1
                    rows.append(
                        [
                            figure_id,
                            label,
                            metric,
                            round(float(old_value), 2),
                            round(float(new_value), 2),
                            f"{change:+.1%}",
                        ]
                    )
    if rows:
        print(render_table(
            ["figure", "variant", "metric", "old", "new", "change"], rows
        ))
    else:
        print(f"no metric moved more than {threshold:.0%} across "
              f"{len(shared)} shared figures")
    return 1 if regressions else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old_dir", type=Path,
                        help="report directory or manifest JSON file")
    parser.add_argument("new_dir", type=Path,
                        help="report directory or manifest JSON file")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change that counts as a regression")
    parser.add_argument("--counters", action="store_true",
                        help="diff per-operator manifest counters instead of "
                             "headline summary metrics")
    parser.add_argument("--bench", action="store_true",
                        help="treat the two arguments as repro bench reports "
                             "(BENCH_<rev>.json) and diff wall-clock metrics")
    parser.add_argument("--max-slowdown", type=float, default=1.25,
                        help="with --bench: wall-time ratio beyond which a "
                             "case fails the gate")
    args = parser.parse_args(argv)
    if args.bench:
        return compare_bench(args.old_dir, args.new_dir, args.max_slowdown)
    if args.old_dir.is_file() or args.new_dir.is_file():
        return compare_manifests(args.old_dir, args.new_dir, args.threshold)
    if args.counters:
        return compare_counters(args.old_dir, args.new_dir, args.threshold)
    return compare(args.old_dir, args.new_dir, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
