#!/usr/bin/env python3
"""Compare two benchmark-report archives (regression tooling).

``pytest benchmarks/ --benchmark-only`` archives each figure's
measurements as JSON under ``benchmarks/reports/``.  This tool diffs
two such directories — e.g. reports saved before and after a change —
and prints, per figure and variant, how the headline metrics moved.

Usage:
    python tools/compare_runs.py OLD_DIR NEW_DIR [--threshold 0.05]

Exit status 1 when any metric moved more than the threshold (relative),
so it can serve as a CI regression gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List

from repro.experiments.export import load_figure_json
from repro.metrics.report import render_table

METRICS = ("results", "mean_state", "max_state", "duration_ms",
           "punctuations_out")


def load_dir(path: Path) -> Dict[str, dict]:
    figures = {}
    for json_path in sorted(path.glob("*.json")):
        try:
            data = load_figure_json(json_path)
        except ValueError as exc:
            print(f"skipping {json_path}: {exc}", file=sys.stderr)
            continue
        figures[data["figure_id"]] = data
    return figures


def relative_change(old: float, new: float) -> float:
    if old == new:
        return 0.0
    if old == 0:
        return float("inf")
    return (new - old) / abs(old)


def compare(old_dir: Path, new_dir: Path, threshold: float) -> int:
    old_figures = load_dir(old_dir)
    new_figures = load_dir(new_dir)
    shared = sorted(set(old_figures) & set(new_figures))
    only_old = sorted(set(old_figures) - set(new_figures))
    only_new = sorted(set(new_figures) - set(old_figures))
    if only_old:
        print(f"only in {old_dir}: {only_old}")
    if only_new:
        print(f"only in {new_dir}: {only_new}")
    regressions = 0
    rows: List[List[object]] = []
    for figure_id in shared:
        old_runs = {r["label"]: r["summary"] for r in old_figures[figure_id]["runs"]}
        new_runs = {r["label"]: r["summary"] for r in new_figures[figure_id]["runs"]}
        for label in sorted(set(old_runs) & set(new_runs)):
            for metric in METRICS:
                old_value = old_runs[label].get(metric, 0) or 0
                new_value = new_runs[label].get(metric, 0) or 0
                change = relative_change(float(old_value), float(new_value))
                if abs(change) > threshold:
                    regressions += 1
                    rows.append(
                        [
                            figure_id,
                            label,
                            metric,
                            round(float(old_value), 2),
                            round(float(new_value), 2),
                            f"{change:+.1%}",
                        ]
                    )
    if rows:
        print(render_table(
            ["figure", "variant", "metric", "old", "new", "change"], rows
        ))
    else:
        print(f"no metric moved more than {threshold:.0%} across "
              f"{len(shared)} shared figures")
    return 1 if regressions else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old_dir", type=Path)
    parser.add_argument("new_dir", type=Path)
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="relative change that counts as a regression")
    args = parser.parse_args(argv)
    return compare(args.old_dir, args.new_dir, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
