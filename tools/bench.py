#!/usr/bin/env python3
"""Wall-clock benchmark harness — standalone entry point.

Thin wrapper around :mod:`repro.perf.bench` for environments where the
``repro`` console script is not installed.  Equivalent invocations:

    python tools/bench.py --quick
    PYTHONPATH=src python -m repro bench --quick

Writes ``BENCH_<rev>.json`` (or ``--out PATH``) and, when a baseline
exists, prints the comparison table and exits 1 on a gate failure.
See ``docs/performance.md`` for the baseline workflow.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
