"""Failure-injection tests: broken promises, lossy and laggy sources."""

from collections import Counter

import pytest

from repro.core.config import PJoinConfig
from repro.core.pjoin import PJoin
from repro.errors import PunctuationError, WorkloadError
from repro.operators.sink import Sink
from repro.punctuations.punctuation import Punctuation
from repro.query.plan import QueryPlan
from repro.sim.costs import CostModel
from repro.workloads.faults import (
    delay_punctuations,
    drop_random_punctuations,
    inject_punctuation_violation,
)
from repro.workloads.generator import generate_workload
from repro.workloads.reference import reference_join_multiset


@pytest.fixture()
def workload():
    return generate_workload(
        n_tuples_per_stream=600, punct_spacing_a=10, punct_spacing_b=10, seed=6
    )


def run_pjoin(schedule_a, schedule_b, workload, config):
    plan = QueryPlan(cost_model=CostModel().scaled(0.01))
    join = PJoin(
        plan.engine, plan.cost_model,
        workload.schemas[0], workload.schemas[1], "key", "key", config=config,
    )
    sink = Sink(plan.engine, plan.cost_model, keep_items=True)
    join.connect(sink)
    plan.add_source(schedule_a, join, port=0)
    plan.add_source(schedule_b, join, port=1)
    plan.run()
    return join, sink


class TestInjectViolation:
    def test_produces_an_actually_invalid_stream(self, workload):
        corrupted, value, position = inject_punctuation_violation(
            workload.schedule_a, workload.schemas[0]
        )
        assert len(corrupted) == len(workload.schedule_a) + 1
        # The reported position names the violating tuple itself.
        _ts, injected = corrupted[position]
        assert not isinstance(injected, Punctuation)
        assert injected.values[0] == value
        # The injected tuple follows a punctuation covering its value.
        seen_punct = False
        for _ts, item in corrupted:
            if isinstance(item, Punctuation) and item.patterns[0].matches(value):
                seen_punct = True
            elif (
                seen_punct
                and not isinstance(item, Punctuation)
                and item.values[0] == value
            ):
                break
        else:
            pytest.fail("no violating tuple found after its punctuation")

    def test_needs_a_constant_punctuation(self, workload):
        clean = [
            (t, i)
            for t, i in workload.schedule_a
            if not isinstance(i, Punctuation)
        ]
        with pytest.raises(WorkloadError):
            inject_punctuation_violation(clean, workload.schemas[0])

    def test_pjoin_strict_policy_detects_it(self, workload):
        corrupted, _value, _position = inject_punctuation_violation(
            workload.schedule_a, workload.schemas[0]
        )
        with pytest.raises(PunctuationError, match="after a punctuation"):
            run_pjoin(
                corrupted, workload.schedule_b, workload,
                PJoinConfig(fault_policy="strict"),
            )

    def test_pjoin_quarantine_policy_quarantines_it(self, workload):
        corrupted, _value, _position = inject_punctuation_violation(
            workload.schedule_a, workload.schemas[0]
        )
        join, sink = run_pjoin(
            corrupted, workload.schedule_b, workload,
            PJoinConfig(fault_policy="quarantine"),
        )
        assert join.punctuation_violations == 1
        # The clean part of the stream still joins exactly.
        expected = reference_join_multiset(
            workload.schedule_a, workload.schedule_b,
            workload.schemas[0], workload.schemas[1],
        )
        assert Counter(dict(sink.result_multiset())) == expected


class TestDropPunctuations:
    def test_fraction_validated(self, workload):
        with pytest.raises(WorkloadError):
            drop_random_punctuations(workload.schedule_a, 1.5)

    def test_dropping_is_safe_but_costs_state(self, workload):
        expected = reference_join_multiset(
            workload.schedule_a, workload.schedule_b,
            workload.schemas[0], workload.schemas[1],
        )
        lossy_a = drop_random_punctuations(workload.schedule_a, 0.8, seed=1)
        lossy_b = drop_random_punctuations(workload.schedule_b, 0.8, seed=2)
        join_lossy, sink_lossy = run_pjoin(
            lossy_a, lossy_b, workload, PJoinConfig(purge_threshold=1)
        )
        join_clean, _sink = run_pjoin(
            workload.schedule_a, workload.schedule_b, workload,
            PJoinConfig(purge_threshold=1),
        )
        assert Counter(dict(sink_lossy.result_multiset())) == expected
        assert join_lossy.total_state_size() > join_clean.total_state_size()

    def test_drop_all(self, workload):
        bare = drop_random_punctuations(workload.schedule_a, 1.0)
        assert all(not isinstance(i, Punctuation) for _t, i in bare)


class TestDelayPunctuations:
    def test_delay_validated(self, workload):
        with pytest.raises(WorkloadError):
            delay_punctuations(workload.schedule_a, -1.0)

    def test_delay_preserves_validity_and_results(self, workload):
        expected = reference_join_multiset(
            workload.schedule_a, workload.schedule_b,
            workload.schemas[0], workload.schemas[1],
        )
        laggy_a = delay_punctuations(workload.schedule_a, 500.0)
        laggy_b = delay_punctuations(workload.schedule_b, 500.0)
        _join, sink = run_pjoin(
            laggy_a, laggy_b, workload, PJoinConfig(purge_threshold=1)
        )
        assert Counter(dict(sink.result_multiset())) == expected

    def test_delayed_schedule_is_sorted(self, workload):
        laggy = delay_punctuations(workload.schedule_a, 123.0)
        times = [t for t, _ in laggy]
        assert times == sorted(times)
