"""Unit tests for the workload specification."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.spec import WorkloadSpec


class TestValidation:
    def test_defaults_are_paper_parameters(self):
        spec = WorkloadSpec()
        assert spec.tuple_interarrival_ms == 2.0
        assert spec.punct_spacings == (40.0, 40.0)

    def test_tuple_count_positive(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(n_tuples_per_stream=0)

    def test_interarrival_positive(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(tuple_interarrival_ms=0)

    def test_spacings_at_least_one(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(punct_spacing_a=0.5)
        with pytest.raises(WorkloadError):
            WorkloadSpec(punct_spacing_b=-1)

    def test_spacing_none_disables_punctuations(self):
        spec = WorkloadSpec(punct_spacing_a=None)
        assert spec.punct_spacings == (None, 40.0)

    def test_active_values_positive(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(active_values=0)

    def test_with_overrides(self):
        spec = WorkloadSpec().with_overrides(seed=99)
        assert spec.seed == 99
        assert WorkloadSpec().seed == 42
