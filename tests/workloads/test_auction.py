"""Unit tests for the auction workload."""

import pytest

from repro.errors import WorkloadError
from repro.punctuations.punctuation import Punctuation
from repro.tuples.tuple import Tuple
from repro.workloads.auction import AuctionSpec, AuctionWorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    spec = AuctionSpec(n_items=50, seed=3)
    return spec, AuctionWorkloadGenerator(spec).generate()


def tuples_of(schedule):
    return [item for _t, item in schedule if isinstance(item, Tuple)]


def punctuations_of(schedule):
    return [item for _t, item in schedule if isinstance(item, Punctuation)]


class TestSpec:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            AuctionSpec(n_items=0)
        with pytest.raises(WorkloadError):
            AuctionSpec(auction_duration_ms=0)


class TestOpenStream:
    def test_one_open_tuple_per_item(self, workload):
        spec, (open_schedule, _bids) = workload
        opens = tuples_of(open_schedule)
        assert len(opens) == spec.n_items
        assert sorted(t["item_id"] for t in opens) == list(range(spec.n_items))

    def test_derived_punctuation_after_each_open(self, workload):
        """item_id is a key of Open, so the query system derives one
        punctuation per tuple (paper §1.1)."""
        spec, (open_schedule, _bids) = workload
        puncts = punctuations_of(open_schedule)
        assert len(puncts) == spec.n_items

    def test_derivation_can_be_disabled(self):
        spec = AuctionSpec(n_items=10, derive_open_punctuations=False, seed=1)
        open_schedule, _ = AuctionWorkloadGenerator(spec).generate()
        assert punctuations_of(open_schedule) == []


class TestBidStream:
    def test_every_item_gets_a_closing_punctuation(self, workload):
        spec, (_opens, bid_schedule) = workload
        closed = {
            p.pattern_for("item_id").value for p in punctuations_of(bid_schedule)
        }
        assert closed == set(range(spec.n_items))

    def test_bids_only_during_auction_period(self, workload):
        spec, (open_schedule, bid_schedule) = workload
        opened_at = {
            t["item_id"]: when
            for when, t in open_schedule
            if isinstance(t, Tuple)
        }
        for when, item in bid_schedule:
            if isinstance(item, Tuple):
                start = opened_at[item["item_id"]]
                assert start <= when <= start + spec.auction_duration_ms

    def test_bid_stream_is_valid(self, workload):
        """No bid arrives after its item's punctuation."""
        _spec, (_opens, bid_schedule) = workload
        closed = set()
        for _when, item in bid_schedule:
            if isinstance(item, Punctuation):
                closed.add(item.pattern_for("item_id").value)
            elif isinstance(item, Tuple):
                assert item["item_id"] not in closed

    def test_schedules_are_time_ordered(self, workload):
        _spec, (open_schedule, bid_schedule) = workload
        for schedule in (open_schedule, bid_schedule):
            times = [t for t, _ in schedule]
            assert times == sorted(times)

    def test_deterministic(self):
        spec = AuctionSpec(n_items=20, seed=9)
        first = AuctionWorkloadGenerator(spec).generate()
        second = AuctionWorkloadGenerator(spec).generate()
        assert [
            (t, i.values) for t, i in first[1] if isinstance(i, Tuple)
        ] == [(t, i.values) for t, i in second[1] if isinstance(i, Tuple)]
