"""Unit tests for the oracle join helpers."""

from collections import Counter

from repro.tuples.schema import Schema
from repro.tuples.tuple import Tuple
from repro.workloads.reference import (
    reference_join_multiset,
    reference_window_join_multiset,
)

SCHEMA_A = Schema.of("key", "a", name="A")
SCHEMA_B = Schema.of("key", "b", name="B")


def sched(schema, *items):
    return [(ts, Tuple(schema, (k, v), ts=ts)) for ts, k, v in items]


def test_full_join_counts_all_pairs():
    a = sched(SCHEMA_A, (0, 1, 10), (1, 1, 11), (2, 2, 12))
    b = sched(SCHEMA_B, (0, 1, 20), (5, 3, 21))
    result = reference_join_multiset(a, b, SCHEMA_A, SCHEMA_B)
    assert result == Counter({(1, 10, 1, 20): 1, (1, 11, 1, 20): 1})


def test_full_join_counts_duplicates():
    a = sched(SCHEMA_A, (0, 1, 10), (1, 1, 10))
    b = sched(SCHEMA_B, (0, 1, 20))
    result = reference_join_multiset(a, b, SCHEMA_A, SCHEMA_B)
    assert result[(1, 10, 1, 20)] == 2


def test_window_join_filters_by_time_distance():
    a = sched(SCHEMA_A, (0, 1, 10))
    b = sched(SCHEMA_B, (5, 1, 20), (30, 1, 21))
    result = reference_window_join_multiset(
        a, b, SCHEMA_A, SCHEMA_B, window_ms=10.0
    )
    assert result == Counter({(1, 10, 1, 20): 1})


def test_window_join_boundary_is_inclusive():
    a = sched(SCHEMA_A, (0, 1, 10))
    b = sched(SCHEMA_B, (10, 1, 20))
    result = reference_window_join_multiset(
        a, b, SCHEMA_A, SCHEMA_B, window_ms=10.0
    )
    assert len(result) == 1


def test_punctuations_in_schedule_are_ignored():
    from repro.punctuations.punctuation import Punctuation

    a = sched(SCHEMA_A, (0, 1, 10))
    a.append((1.0, Punctuation.on_field(SCHEMA_A, "key", 1, ts=1.0)))
    b = sched(SCHEMA_B, (2, 1, 20))
    result = reference_join_multiset(a, b, SCHEMA_A, SCHEMA_B)
    assert sum(result.values()) == 1
